//! Fault tolerance end to end: a campaign runs under a deterministic
//! fault injector, the session "dies" with runs stranded mid-flight
//! (plus a torn save on disk), and a second session resumes from the
//! persisted database alone — finishing every run while keeping the
//! provenance log coherent: one record per run, the terminal status
//! written exactly once per completed launch, and `Done` work never
//! silently redone.

use simart::artifact::{Artifact, ArtifactId, ArtifactKind, ContentSource};
use simart::db::Database;
use simart::run::{FsRun, RunStatus};
use simart::tasks::{FaultInjector, PoolScheduler, RetryPolicy};
use simart::{ExecOutcome, Experiment, LaunchOptions};
use std::sync::Arc;
use std::time::Duration;

const TERMINAL_EVENTS: [&str; 3] = ["status:done", "status:failed", "status:timed-out"];

fn register_components(experiment: &Experiment) -> [ArtifactId; 5] {
    let repo = experiment
        .register_artifact(
            Artifact::builder("sim-repo", ArtifactKind::GitRepo)
                .documentation("src")
                .content(ContentSource::git("https://example.org/sim", "rev1")),
        )
        .unwrap();
    let binary = experiment
        .register_artifact(
            Artifact::builder("sim", ArtifactKind::Binary)
                .documentation("bin")
                .content(ContentSource::bytes(b"elf".to_vec()))
                .input(repo.id()),
        )
        .unwrap();
    let script = experiment
        .register_artifact(
            Artifact::builder("script", ArtifactKind::RunScript)
                .documentation("cfg")
                .content(ContentSource::bytes(b"py".to_vec())),
        )
        .unwrap();
    let kernel = experiment
        .register_artifact(
            Artifact::builder("vmlinux", ArtifactKind::Kernel)
                .documentation("kernel")
                .content(ContentSource::bytes(b"krn".to_vec())),
        )
        .unwrap();
    let disk = experiment
        .register_artifact(
            Artifact::builder("disk", ArtifactKind::DiskImage)
                .documentation("img")
                .content(ContentSource::bytes(b"img".to_vec())),
        )
        .unwrap();
    [binary.id(), repo.id(), script.id(), kernel.id(), disk.id()]
}

fn make_run(experiment: &Experiment, ids: [ArtifactId; 5], app: &str) -> FsRun {
    let [binary, repo, script, kernel, disk] = ids;
    experiment
        .create_fs_run(|b| {
            b.simulator(binary, "sim")
                .simulator_repo(repo)
                .run_script(script, "run.py")
                .kernel(kernel, "vmlinux")
                .disk_image(disk, "disk.img")
                .param(app)
        })
        .unwrap()
}

fn succeed(_run: &FsRun) -> Result<ExecOutcome, String> {
    Ok(ExecOutcome {
        outcome: "success".into(),
        sim_ticks: 1,
        payload: vec![],
        success: true,
        events: vec![],
    })
}

#[test]
fn faulted_campaign_resumes_to_completion() {
    let dir = std::env::temp_dir().join(format!("simart-ft-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let apps = ["a", "b", "c", "d", "e", "f"];
    let pool = PoolScheduler::new(3);

    // Session 1: the campaign runs under a fault injector aggressive
    // enough to defeat some runs even with a retry budget; one further
    // run is stranded mid-flight when the session "dies".
    let (all_ids, done_in_first) = {
        let experiment = Experiment::new("ft");
        let ids = register_components(&experiment);
        let runs: Vec<FsRun> = apps
            .iter()
            .map(|app| make_run(&experiment, ids, app))
            .collect();
        let mut all_ids: Vec<_> = runs.iter().map(|r| r.id()).collect();
        let injector = Arc::new(FaultInjector::new(42).errors(0.6));
        let options = LaunchOptions::default()
            .retry_policy(RetryPolicy::immediate(2))
            .fault(Arc::clone(&injector));
        let summary = experiment.launch_with(runs, &pool, succeed, &options);
        assert_eq!(summary.total(), apps.len());
        assert_eq!(summary.done + summary.failed, apps.len());
        assert!(
            injector.injected_errors() > 0,
            "the injector actually fired"
        );

        // A seventh run was recorded and mid-flight when the session
        // crashed: its status is stranded at Running forever.
        let stranded = make_run(&experiment, ids, "stranded");
        all_ids.push(stranded.id());
        experiment.runs().record(&stranded).unwrap();
        experiment
            .runs()
            .set_status(stranded.id(), RunStatus::Running)
            .unwrap();

        experiment.database().save(&dir).unwrap();
        (all_ids, summary.done)
    };

    // The crash also tore a later save: a partial collection file is
    // left behind. Recovery must ignore it.
    std::fs::write(dir.join("runs.jsonl.tmp"), "{\"_id\":\"torn").unwrap();

    // Session 2: a fresh process loads the database, re-registers the
    // identical artifact set (content hashes make identity stable), and
    // resumes the same sweep with the faults gone.
    let db = Database::load(&dir).unwrap();
    let experiment = Experiment::with_database("ft", db).unwrap();
    let ids = register_components(&experiment);
    let runs: Vec<FsRun> = apps
        .iter()
        .chain(std::iter::once(&"stranded"))
        .map(|app| make_run(&experiment, ids, app))
        .collect();
    let summary = experiment.launch_with(runs, &pool, succeed, &LaunchOptions::resuming());

    // Done work is skipped, everything else (failed + stranded) is
    // re-queued under its original record and completes.
    assert_eq!(summary.skipped_done, done_in_first);
    assert_eq!(summary.requeued, all_ids.len() - done_in_first);
    assert_eq!(summary.done, summary.requeued);
    assert_eq!(summary.failed + summary.timed_out, 0);

    // One record per experiment — resuming never duplicates documents.
    assert_eq!(experiment.runs().len(), all_ids.len());

    for &id in &all_ids {
        let run = experiment.runs().load(id).unwrap();
        assert_eq!(run.status(), RunStatus::Done, "every run ends terminal");
        let events = experiment.runs().events(id);
        // `Done` is a sink: written exactly once, and nothing follows it.
        let done_events = events.iter().filter(|e| *e == "status:done").count();
        assert_eq!(
            done_events, 1,
            "terminal success written exactly once: {events:?}"
        );
        assert_eq!(events.last().map(String::as_str), Some("status:done"));
        // Each completed launch seals at most one terminal status: a run
        // sees either one (done straight away) or two (failed in the
        // first session, done on resume) — never more.
        let terminal = events
            .iter()
            .filter(|e| TERMINAL_EVENTS.contains(&e.as_str()))
            .count();
        assert!(
            (1..=2).contains(&terminal),
            "one terminal status per completed launch: {events:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_and_retry_schedules_are_reproducible() {
    let histories = |seed: u64| {
        let experiment = Experiment::new("det");
        let ids = register_components(&experiment);
        let runs: Vec<FsRun> = ["x", "y", "z"]
            .iter()
            .map(|app| make_run(&experiment, ids, app))
            .collect();
        let run_ids: Vec<_> = runs.iter().map(|r| r.id()).collect();
        let pool = PoolScheduler::new(2);
        let options = LaunchOptions::default()
            .retry_policy(
                RetryPolicy::fixed(Duration::from_millis(1))
                    .max_attempts(3)
                    .seed(seed),
            )
            .fault(Arc::new(FaultInjector::new(seed).errors(0.5)));
        experiment.launch_with(runs, &pool, succeed, &options);
        run_ids
            .into_iter()
            .map(|id| {
                experiment
                    .runs()
                    .attempt_history(id)
                    .unwrap()
                    .into_iter()
                    .map(|a| (a.index, a.disposition, a.delay_ms))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    // Same seed, new database, new schedulers: bit-identical attempt
    // histories, including backoff delays.
    assert_eq!(histories(7), histories(7));
    assert_eq!(histories(1234), histories(1234));
}
