//! End-to-end shape assertions for the paper's three use-cases: the
//! qualitative findings of the evaluation section, checked against the
//! full reproduction pipeline (see DESIGN.md §3 for the target list).

use simart::sim::compat::o3_counts;
use simart::sim::cpu::CpuKind;
use simart::sim::os::OsImage;
use simart::sim::system::Fidelity;
use simart_bench::{usecase1, usecase2, usecase3};

#[test]
fn use_case_1_cross_stack_findings() {
    let data = usecase1::run(Fidelity::Smoke);
    assert_eq!(data.rows.len(), 60);

    // Finding 1: applications typically take longer on Ubuntu 18.04.
    let fig6 = data.figure6();
    let positive = fig6.iter().filter(|(_, _, d)| *d > 0.0).count();
    assert!(
        positive * 10 >= fig6.len() * 9,
        "{positive}/{} positive",
        fig6.len()
    );

    // Finding 2: the gap narrows as core count rises (suite-wide).
    let avg_diff = |cores: u32| {
        let diffs: Vec<f64> = fig6
            .iter()
            .filter(|(_, c, _)| *c == cores)
            .map(|(_, _, d)| *d)
            .collect();
        diffs.iter().sum::<f64>() / diffs.len() as f64
    };
    assert!(avg_diff(1) > avg_diff(2));
    assert!(avg_diff(2) > avg_diff(8));

    // Finding 3: 20.04 executes more instructions at higher utilization.
    for row in data.rows.iter().filter(|r| r.os == OsImage::Ubuntu2004) {
        let bionic = data.get(&row.app, OsImage::Ubuntu1804, row.cores).unwrap();
        assert!(row.instructions > bionic.instructions, "{}", row.app);
        assert!(row.utilization > bionic.utilization, "{}", row.app);
    }
}

#[test]
fn use_case_2_boot_matrix_findings() {
    let data = usecase2::run(Fidelity::Smoke);
    assert_eq!(data.rows.len(), 480);

    // kvm works in all cases; Atomic only with Classic memory; Timing
    // fails only >1 core on the (incoherent) Classic system.
    assert_eq!(data.success_rate(CpuKind::Kvm), 1.0);
    assert_eq!(
        data.outcome_counts(CpuKind::AtomicSimple)["unsupported"],
        80
    );
    assert_eq!(
        data.outcome_counts(CpuKind::TimingSimple)["unsupported"],
        30
    );

    // O3: ~40% success with the paper's exact failure breakdown.
    let o3 = data.outcome_counts(CpuKind::O3);
    assert_eq!(o3["kernel-panic"], o3_counts::PANICS, "27 kernel panics");
    assert_eq!(o3["sim-crash"], o3_counts::CRASHES, "11 segfaults");
    assert_eq!(
        o3["deadlock"],
        o3_counts::DEADLOCKS,
        "4 MI_example deadlocks"
    );
    let rate = data.success_rate(CpuKind::O3);
    assert!((0.35..=0.45).contains(&rate), "O3 success rate {rate}");
}

#[test]
fn use_case_3_register_allocation_findings() {
    let data = usecase3::run(1);
    assert_eq!(data.rows.len(), 29);

    // Headline: the simple allocator wins on average (paper: ~8%).
    let geomean = data.geomean_dynamic_speedup();
    assert!((0.80..1.00).contains(&geomean), "geomean {geomean:.3}");

    // FAMutex is the worst case for the dynamic allocator.
    let famutex = data.get("FAMutex").unwrap().dynamic_speedup();
    assert!(famutex < 0.65, "FAMutex {famutex:.3}");

    // Pool layers suffer; transpose/stream/PENNANT benefit.
    assert!(data.get("fwd_pool").unwrap().dynamic_speedup() < 0.95);
    assert!(data.get("MatrixTranspose").unwrap().dynamic_speedup() > 1.05);
    assert!(data.get("PENNANT").unwrap().dynamic_speedup() > 1.05);

    // Small kernels show little or no difference.
    for app in ["2dshfl", "shfl", "unroll"] {
        let s = data.get(app).unwrap().dynamic_speedup();
        assert!((0.98..1.02).contains(&s), "{app} {s:.3}");
    }
}
