//! Cross-crate determinism: the property the whole reproducibility
//! story rests on. Identical configurations must produce bit-identical
//! simulation results, whatever the substrate.

use simart::gpu::alloc::AllocPolicy;
use simart::gpu::{workloads, Gpu};
use simart::sim::cpu::CpuKind;
use simart::sim::mem::MemKind;
use simart::sim::os::OsImage;
use simart::sim::system::{Fidelity, SystemConfig};
use simart::sim::workload::{parsec_profile, InputSize};

fn fs_config(cores: u32) -> SystemConfig {
    SystemConfig::builder()
        .cpu(CpuKind::TimingSimple)
        .cores(cores)
        .memory(MemKind::classic_coherent())
        .os(OsImage::Ubuntu1804)
        .fidelity(Fidelity::Smoke)
        .build()
        .expect("valid")
}

#[test]
fn full_system_runs_are_bit_identical() {
    let profile = parsec_profile("streamcluster").unwrap();
    for cores in [1, 4] {
        let a = fs_config(cores)
            .run_workload(&profile, InputSize::SimSmall)
            .unwrap();
        let b = fs_config(cores)
            .run_workload(&profile, InputSize::SimSmall)
            .unwrap();
        assert_eq!(a.sim_ticks, b.sim_ticks);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.stats.dump(), b.stats.dump(), "every statistic matches");
    }
}

#[test]
fn boots_are_bit_identical_across_memory_systems() {
    for mem in [
        MemKind::classic_coherent(),
        MemKind::RubyMi,
        MemKind::RubyMesiTwoLevel,
    ] {
        let build = || {
            SystemConfig::builder()
                .cpu(CpuKind::O3)
                .cores(1)
                .memory(mem)
                .fidelity(Fidelity::Smoke)
                .build()
                .expect("valid")
        };
        let a = build().boot_only().unwrap();
        let b = build().boot_only().unwrap();
        assert_eq!(a.outcome, b.outcome, "{mem}");
        assert_eq!(a.sim_ticks, b.sim_ticks, "{mem}");
    }
}

#[test]
fn gpu_runs_are_bit_identical() {
    let gpu = Gpu::table3().scaled_down(4);
    for app in ["FAMutex", "MatrixTranspose", "LFTreeBarrUniq"] {
        let kernel = workloads::by_name(app).unwrap();
        for policy in [AllocPolicy::Simple, AllocPolicy::Dynamic] {
            let a = gpu.run(&kernel, policy);
            let b = gpu.run(&kernel, policy);
            assert_eq!(a, b, "{app}/{policy}");
        }
    }
}

#[test]
fn different_configurations_diverge() {
    // Determinism must not collapse into insensitivity: the knobs the
    // paper studies genuinely change results.
    let profile = parsec_profile("ferret").unwrap();
    let one = fs_config(1)
        .run_workload(&profile, InputSize::SimSmall)
        .unwrap();
    let eight = fs_config(8)
        .run_workload(&profile, InputSize::SimSmall)
        .unwrap();
    assert_ne!(one.sim_ticks, eight.sim_ticks);

    let bionic = fs_config(2)
        .run_workload(&profile, InputSize::SimSmall)
        .unwrap();
    let focal = SystemConfig::builder()
        .cpu(CpuKind::TimingSimple)
        .cores(2)
        .memory(MemKind::classic_coherent())
        .os(OsImage::Ubuntu2004)
        .fidelity(Fidelity::Smoke)
        .build()
        .unwrap()
        .run_workload(&profile, InputSize::SimSmall)
        .unwrap();
    assert_ne!(bionic.sim_ticks, focal.sim_ticks);
}
