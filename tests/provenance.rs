//! The reproducibility story, end to end: an experiment recorded in
//! the database can be reconstructed **from the database alone** and
//! re-executed to identical results.

use simart::db::{Database, Filter, Value};
use simart::resources::{disks, kernels::KernelResource, suite};
use simart::sim::kernel::KernelVersion;
use simart::sim::os::OsImage;
use simart::sim::system::Fidelity;
use simart::sim::workload::{parsec_profile, InputSize};
use simart::tasks::PoolScheduler;
use simart::{ExecOutcome, Experiment};
use simart_bench::usecase1;

fn execute(params: &[String]) -> (u64, String) {
    let app = &params[0];
    let os = match params[1].as_str() {
        "ubuntu-18.04" => OsImage::Ubuntu1804,
        _ => OsImage::Ubuntu2004,
    };
    let cores: u32 = params[2].parse().expect("core count");
    let profile = parsec_profile(app).expect("known app");
    let config = usecase1::system_config(os, cores, Fidelity::Smoke);
    let output = config
        .run_workload(&profile, InputSize::SimSmall)
        .expect("runs");
    (output.sim_ticks, output.stats.dump())
}

#[test]
fn experiments_reproduce_from_database_records_alone() {
    let dir = std::env::temp_dir().join(format!("simart-prov-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: run a small experiment and persist the database.
    let original_results: Vec<(String, u64)> = {
        let experiment = Experiment::new("provenance");
        let (simulator, repo, script, kernel, disk) = experiment
            .with_registry(|registry| {
                let [repo, binary, script] =
                    suite::register_simulator(registry, "20.1.0.4", "X86")?;
                let kernel = suite::register_kernel(
                    registry,
                    &KernelResource::standard(KernelVersion::V5_4),
                )?;
                let disk = suite::register_disk_image(
                    registry,
                    &disks::parsec_image(OsImage::Ubuntu2004),
                )?;
                Ok((binary.id(), repo.id(), script.id(), kernel.id(), disk.id()))
            })
            .unwrap();

        let runs: Vec<_> = ["blackscholes", "dedup"]
            .iter()
            .map(|app| {
                experiment
                    .create_fs_run(|b| {
                        b.simulator(simulator, "sim")
                            .simulator_repo(repo)
                            .run_script(script, "run.py")
                            .kernel(kernel, "vmlinux")
                            .disk_image(disk, "disk.img")
                            .param(*app)
                            .param("ubuntu-20.04")
                            .param("2")
                    })
                    .unwrap()
            })
            .collect();
        let pool = PoolScheduler::new(2);
        let summary = experiment.launch(runs, &pool, |run| {
            let (ticks, dump) = execute(run.params());
            Ok(ExecOutcome {
                outcome: "success".into(),
                sim_ticks: ticks,
                payload: dump.into_bytes(),
                success: true,
                events: vec![],
            })
        });
        assert_eq!(summary.done, 2);
        experiment.database().save(&dir).unwrap();

        experiment
            .query_runs(&Filter::eq("status", "done"))
            .iter()
            .map(|doc| {
                (
                    doc.at("params.0")
                        .and_then(Value::as_str)
                        .unwrap()
                        .to_owned(),
                    doc.at("results.simTicks").and_then(Value::as_int).unwrap() as u64,
                )
            })
            .collect()
    };

    // Phase 2: a different "researcher" loads only the database and
    // re-executes the experiments described by the run records.
    let restored = Database::load(&dir).unwrap();
    let run_docs = restored
        .collection("runs")
        .find(&Filter::eq("status", "done"));
    assert_eq!(run_docs.len(), 2);
    for doc in run_docs {
        let params: Vec<String> = doc
            .at("params")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|p| p.as_str().unwrap().to_owned())
            .collect();
        let (ticks, _) = execute(&params);
        let recorded = doc.at("results.simTicks").and_then(Value::as_int).unwrap() as u64;
        assert_eq!(
            ticks, recorded,
            "re-executing {params:?} from the database reproduces the recorded result"
        );
        // Artifact provenance is also intact: every input is resolvable.
        let inputs = doc.at("inputs").and_then(Value::as_array).unwrap();
        for input in inputs {
            let id = input.as_str().unwrap();
            assert!(
                restored.collection("artifacts").get(id).is_some(),
                "input artifact {id} archived with the run"
            );
        }
    }
    let _ = original_results;
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn artifact_documentation_survives_the_database() {
    let experiment = Experiment::new("docs");
    experiment
        .with_registry(|registry| {
            suite::register_kernel(registry, &KernelResource::standard(KernelVersion::V4_19))
                .map(|_| ())
        })
        .unwrap();
    let docs = experiment.database().collection("artifacts").all();
    assert_eq!(docs.len(), 1);
    let documentation = docs[0].at("documentation").and_then(Value::as_str).unwrap();
    assert!(
        documentation.contains("4.19.83"),
        "reproduction docs stored: {documentation}"
    );
    let command = docs[0].at("command").and_then(Value::as_str).unwrap();
    assert!(
        command.contains("git checkout"),
        "creation command stored: {command}"
    );
}
