//! Table III conformance: the GPU machine the use-case 3 harness
//! simulates is exactly the paper's.

use simart::gpu::config::GpuConfig;
use simart::gpu::{workloads, Gpu};

#[test]
fn table_iii_parameters() {
    let config = GpuConfig::table3();
    assert_eq!(config.cus, 4, "Number of CUs");
    assert_eq!(config.simds_per_cu, 4, "SIMD16s per CU");
    assert_eq!(config.simd_width, 16, "SIMD16 lanes");
    assert_eq!(config.clock_mhz, 1000, "GPU frequency 1 GHz");
    assert_eq!(
        config.max_wavefronts_per_simd, 10,
        "max wavefronts per SIMD16"
    );
    assert_eq!(config.max_wavefronts_per_cu(), 40, "40 per CU");
    assert_eq!(config.vregs_per_cu, 8 * 1024, "8K vector registers per CU");
    assert_eq!(config.sregs_per_cu, 8 * 1024, "8K scalar registers per CU");
    assert_eq!(config.lds_bytes_per_cu, 64 * 1024, "64 KB LDS per CU");
    assert_eq!(
        config.l1i_bytes,
        32 * 1024,
        "32 KB L1I shared between every 4 CUs"
    );
    assert_eq!(config.l1d_bytes_per_cu, 16 * 1024, "16 KB L1D per CU");
    assert_eq!(config.l2_bytes, 256 * 1024, "256 KB unified L2");
}

#[test]
fn default_gpu_is_the_table_iii_machine() {
    assert_eq!(*Gpu::table3().config(), GpuConfig::default());
}

#[test]
fn table_iv_inputs_are_preserved() {
    // Spot-check the Table IV input-size labels the harness prints.
    assert_eq!(workloads::input_of("2dshfl"), "4x4");
    assert_eq!(workloads::input_of("dynamic_shared"), "16x16");
    assert_eq!(workloads::input_of("inline_asm"), "1024x1024");
    assert_eq!(workloads::input_of("bwd_bypass"), "NCHW = 100, 1000, 1, 1");
    assert_eq!(
        workloads::input_of("bwd_composed_model"),
        "NCHW = 32, 32, 3, 1"
    );
    assert_eq!(workloads::input_of("fwd_pool"), "NCHW = 100, 3, 256, 256");
    assert_eq!(workloads::input_of("LULESH"), "1 iteration");
    assert_eq!(workloads::input_of("PENNANT"), "noh");
    assert!(workloads::input_of("FAMutex").contains("8 WGs/CU"));
}
