//! Cross-crate framework integration: artifacts + runs + schedulers +
//! database interacting the way a real experiment does.

use simart::artifact::{Artifact, ArtifactKind, ContentSource};
use simart::db::Filter;
use simart::run::RunStatus;
use simart::tasks::{BrokerScheduler, PoolScheduler, Scheduler, SerialScheduler};
use simart::{ExecOutcome, Experiment};
use std::time::Duration;

fn experiment_with_components(name: &str) -> (Experiment, [simart::artifact::ArtifactId; 5]) {
    let experiment = Experiment::new(name);
    let repo = experiment
        .register_artifact(
            Artifact::builder("sim-repo", ArtifactKind::GitRepo)
                .documentation("src")
                .content(ContentSource::git("https://x", "rev1")),
        )
        .unwrap();
    let binary = experiment
        .register_artifact(
            Artifact::builder("sim", ArtifactKind::Binary)
                .documentation("bin")
                .content(ContentSource::bytes(b"elf".to_vec()))
                .input(repo.id()),
        )
        .unwrap();
    let script = experiment
        .register_artifact(
            Artifact::builder("script", ArtifactKind::RunScript)
                .documentation("cfg")
                .content(ContentSource::bytes(b"py".to_vec())),
        )
        .unwrap();
    let kernel = experiment
        .register_artifact(
            Artifact::builder("vmlinux", ArtifactKind::Kernel)
                .documentation("kernel")
                .content(ContentSource::bytes(b"krn".to_vec())),
        )
        .unwrap();
    let disk = experiment
        .register_artifact(
            Artifact::builder("disk", ArtifactKind::DiskImage)
                .documentation("img")
                .content(ContentSource::bytes(b"img".to_vec())),
        )
        .unwrap();
    (
        experiment,
        [binary.id(), repo.id(), script.id(), kernel.id(), disk.id()],
    )
}

fn make_runs(
    experiment: &Experiment,
    ids: [simart::artifact::ArtifactId; 5],
    tags: &[&str],
    timeout_s: u64,
) -> Vec<simart::run::FsRun> {
    let [binary, repo, script, kernel, disk] = ids;
    tags.iter()
        .map(|tag| {
            experiment
                .create_fs_run(|b| {
                    b.simulator(binary, "sim")
                        .simulator_repo(repo)
                        .run_script(script, "run.py")
                        .kernel(kernel, "vmlinux")
                        .disk_image(disk, "disk.img")
                        .param(*tag)
                        .timeout_seconds(timeout_s)
                })
                .unwrap()
        })
        .collect()
}

#[test]
fn every_scheduler_drives_the_same_experiment() {
    let schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("serial", Box::new(SerialScheduler::new())),
        ("pool", Box::new(PoolScheduler::new(4))),
        ("broker", Box::new(BrokerScheduler::new(4))),
    ];
    for (name, scheduler) in schedulers {
        let (experiment, ids) = experiment_with_components(name);
        let runs = make_runs(&experiment, ids, &["a", "b", "c", "d"], 3600);
        let summary = experiment.launch(runs, scheduler.as_ref(), |run| {
            Ok(ExecOutcome {
                outcome: "success".into(),
                sim_ticks: run.params()[0].len() as u64 * 100,
                payload: b"stats".to_vec(),
                success: true,
                events: vec![],
            })
        });
        assert_eq!(summary.done, 4, "{name}");
        assert_eq!(
            experiment.query_runs(&Filter::eq("status", "done")).len(),
            4,
            "{name}: all runs archived"
        );
    }
}

#[test]
fn timeouts_mark_runs_timed_out() {
    let (experiment, ids) = experiment_with_components("timeouts");
    // Timeout of zero seconds: the watchdog fires before the work ends.
    let runs = make_runs(&experiment, ids, &["slow"], 0);
    let id = runs[0].id();
    let pool = PoolScheduler::new(1);
    let summary = experiment.launch(runs, &pool, |_| {
        std::thread::sleep(Duration::from_millis(300));
        Ok(ExecOutcome {
            outcome: "success".into(),
            sim_ticks: 1,
            payload: vec![],
            success: true,
            events: vec![],
        })
    });
    assert_eq!(summary.timed_out, 1);
    // The run record reflects the kill (it may still be `running` in
    // the database because the worker was terminated — the framework
    // reports the timeout through the launch summary, and the record
    // is not `done`).
    let stored = experiment.runs().load(id).unwrap();
    assert_ne!(stored.status(), RunStatus::Done);
}

#[test]
fn provenance_closure_spans_registry_and_runs() {
    let (experiment, ids) = experiment_with_components("closure");
    let runs = make_runs(&experiment, ids, &["x"], 3600);
    let pool = PoolScheduler::new(1);
    experiment.launch(runs, &pool, |_| {
        Ok(ExecOutcome {
            outcome: "success".into(),
            sim_ticks: 7,
            payload: vec![],
            success: true,
            events: vec![],
        })
    });
    // The kernel artifact knows which runs used it...
    let kernel = ids[3];
    let dependents = experiment.runs_using(kernel).unwrap();
    assert_eq!(dependents.len(), 1);
    // ...and the run's results are recoverable.
    assert!(experiment.runs().load_results(dependents[0].id()).is_some());
}

#[test]
fn concurrent_launches_share_one_database_safely() {
    let (experiment, ids) = experiment_with_components("concurrent");
    let tags: Vec<String> = (0..32).map(|i| format!("run-{i}")).collect();
    let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
    let runs = make_runs(&experiment, ids, &tag_refs, 3600);
    let pool = PoolScheduler::new(8);
    let summary = experiment.launch(runs, &pool, |run| {
        Ok(ExecOutcome {
            outcome: "success".into(),
            sim_ticks: run.params()[0].len() as u64,
            payload: run.params()[0].clone().into_bytes(),
            success: true,
            events: vec![],
        })
    });
    assert_eq!(summary.done, 32);
    assert_eq!(
        experiment
            .runs()
            .find_by_status(RunStatus::Done)
            .unwrap()
            .len(),
        32
    );
}
