//! Validation of the sampling methodology: the detailed-sample-and-
//! extrapolate approach (SMARTS-style) must converge — higher fidelity
//! should refine, not contradict, lower fidelity.

use simart::sim::os::OsImage;
use simart::sim::system::{Fidelity, SystemConfig};
use simart::sim::workload::{parsec_profile, InputSize};

fn exec_seconds(app: &str, fidelity: Fidelity) -> f64 {
    let profile = parsec_profile(app).expect("known app");
    SystemConfig::builder()
        .cores(2)
        .os(OsImage::Ubuntu1804)
        .fidelity(fidelity)
        .build()
        .expect("valid")
        .run_workload(&profile, InputSize::SimSmall)
        .expect("runs")
        .sim_seconds()
}

#[test]
fn fidelity_levels_agree_within_tolerance() {
    for app in ["blackscholes", "dedup", "streamcluster"] {
        let smoke = exec_seconds(app, Fidelity::Smoke);
        let standard = exec_seconds(app, Fidelity::Standard);
        let detailed = exec_seconds(app, Fidelity::Detailed);
        // Sampled CPI estimates converge: Standard and Detailed agree
        // tightly; Smoke is a coarser estimate but still in range.
        let fine_ratio = standard / detailed;
        assert!(
            (0.9..1.1).contains(&fine_ratio),
            "{app}: standard {standard:.4}s vs detailed {detailed:.4}s (ratio {fine_ratio:.3})"
        );
        let coarse_ratio = smoke / detailed;
        assert!(
            (0.75..1.25).contains(&coarse_ratio),
            "{app}: smoke {smoke:.4}s vs detailed {detailed:.4}s (ratio {coarse_ratio:.3})"
        );
    }
}

#[test]
fn conclusions_are_fidelity_stable() {
    // The paper-level findings must not depend on sample size: the
    // 18.04-vs-20.04 ordering holds at every fidelity.
    for fidelity in [Fidelity::Smoke, Fidelity::Standard] {
        let profile = parsec_profile("ferret").unwrap();
        let run = |os: OsImage| {
            SystemConfig::builder()
                .cores(2)
                .os(os)
                .fidelity(fidelity)
                .build()
                .unwrap()
                .run_workload(&profile, InputSize::SimSmall)
                .unwrap()
                .sim_ticks
        };
        assert!(
            run(OsImage::Ubuntu1804) > run(OsImage::Ubuntu2004),
            "ordering holds at {fidelity:?}"
        );
    }
}
