//! Property-based tests for the resource substrates.

use proptest::prelude::*;
use simart_fullsim::os::OsImage;
use simart_resources::{PackerTemplate, Provisioner};

fn provisioner_strategy() -> impl Strategy<Value = Provisioner> {
    prop_oneof![
        ("[a-z]{1,8}", "[a-z ./-]{0,24}")
            .prop_map(|(name, script)| Provisioner::Shell { name, script }),
        ("[a-z/]{1,16}", "[a-z/]{1,16}").prop_map(|(source, destination)| {
            Provisioner::FileCopy {
                source,
                destination,
            }
        }),
        (
            "[a-z]{1,8}",
            proptest::collection::vec("[a-z]{1,8}".prop_map(String::from), 0..4)
        )
            .prop_map(|(suite, apps)| Provisioner::InstallBenchmark { suite, apps }),
    ]
}

proptest! {
    /// Identical templates always build identical images; any change to
    /// the provisioner list changes the fingerprint.
    #[test]
    fn packer_builds_are_deterministic_and_content_sensitive(
        provisioners in proptest::collection::vec(provisioner_strategy(), 0..8),
        os in prop_oneof![Just(OsImage::Ubuntu1804), Just(OsImage::Ubuntu2004)],
    ) {
        let build = |provs: &[Provisioner]| {
            let mut template = PackerTemplate::new("prop-image", os);
            for p in provs {
                template = template.provisioner(p.clone());
            }
            template.build()
        };
        let a = build(&provisioners);
        let b = build(&provisioners);
        prop_assert_eq!(&a, &b, "identical templates build identical images");

        // Appending any provisioner changes the fingerprint.
        let mut extended = provisioners.clone();
        extended.push(Provisioner::Shell { name: "extra".into(), script: "true".into() });
        let c = build(&extended);
        prop_assert_ne!(a.fingerprint, c.fingerprint);
    }

    /// Installed-app queries agree with the provisioner list.
    #[test]
    fn installed_apps_match_provisioners(
        apps in proptest::collection::vec("[a-z]{1,8}".prop_map(String::from), 1..6),
    ) {
        let template = PackerTemplate::new("apps", OsImage::Ubuntu1804)
            .provisioner(Provisioner::InstallBenchmark { suite: "suite".into(), apps: apps.clone() });
        let image = template.build();
        for app in &apps {
            prop_assert!(image.has_app("suite", app));
        }
        prop_assert!(!image.has_app("suite", "definitely-not-installed"));
        prop_assert!(!image.has_app("other", &apps[0]));
    }
}
