//! The Table I resource catalog.

use crate::ResourceKind;

/// One catalog entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Resource name as listed in Table I.
    pub name: &'static str,
    /// Category.
    pub kind: ResourceKind,
    /// Table I description (abridged).
    pub description: &'static str,
    /// Whether pre-built binaries/images may be distributed (SPEC
    /// licensing forbids it — only build scripts ship).
    pub prebuilt_distributable: bool,
    /// Simulator build variant the resource targets.
    pub variant: &'static str,
}

/// The resource catalog.
#[derive(Debug, Clone)]
pub struct Catalog {
    resources: Vec<Resource>,
}

impl Catalog {
    /// The standard catalog: the 17 resources of the paper's Table I.
    pub fn standard() -> Catalog {
        let r = |name, kind, description, prebuilt_distributable, variant| Resource {
            name,
            kind,
            description,
            prebuilt_distributable,
            variant,
        };
        Catalog {
            resources: vec![
                r(
                    "boot-exit",
                    ResourceKind::BenchmarkTest,
                    "Scripts and binaries booting and exiting a Linux kernel with an Ubuntu 18.04 \
                     server user-land in full system mode; serves as the FS-mode test suite",
                    true,
                    "X86",
                ),
                r(
                    "gapbs",
                    ResourceKind::Benchmark,
                    "GAP Benchmark Suite with a Linux kernel and Ubuntu 18.04 server user-land",
                    true,
                    "X86",
                ),
                r(
                    "hack-back",
                    ResourceKind::Benchmark,
                    "Creates a checkpoint after boot, then executes a host-provided script",
                    true,
                    "X86",
                ),
                r(
                    "linux-kernel",
                    ResourceKind::Kernel,
                    "Kernel configurations and documentation for compiling Linux kernels",
                    true,
                    "any",
                ),
                r(
                    "npb",
                    ResourceKind::Benchmark,
                    "NAS Parallel Benchmarks in full system mode",
                    true,
                    "X86",
                ),
                r(
                    "parsec",
                    ResourceKind::Benchmark,
                    "Princeton Application Repository for Shared-Memory Computers benchmark suite \
                     in full system mode",
                    true,
                    "X86",
                ),
                r(
                    "riscv-fs",
                    ResourceKind::Test,
                    "Berkeley boot loader with Linux kernel payload and disk image for RISC-V \
                     full system simulation",
                    true,
                    "RISCV",
                ),
                r(
                    "spec-2006",
                    ResourceKind::Benchmark,
                    "SPEC CPU 2006 in full system mode; licensing forbids pre-made disk images",
                    false,
                    "X86",
                ),
                r(
                    "spec-2017",
                    ResourceKind::Benchmark,
                    "SPEC CPU 2017 in full system mode; licensing forbids pre-made disk images",
                    false,
                    "X86",
                ),
                r(
                    "GCN-docker",
                    ResourceKind::Environment,
                    "Docker image with ROCm 1.6 and GCC 5.4 to build and run GPU applications on \
                     simulated AMD GCN3 GPUs",
                    true,
                    "GCN3_X86",
                ),
                r(
                    "HeteroSync",
                    ResourceKind::Benchmark,
                    "Fine-grained synchronization microbenchmarks for tightly-coupled GPUs",
                    true,
                    "GCN3_X86",
                ),
                r(
                    "DNNMark",
                    ResourceKind::Benchmark,
                    "Primitive deep neural network layer benchmarks",
                    true,
                    "GCN3_X86",
                ),
                r(
                    "halo-finder",
                    ResourceKind::Application,
                    "GPU-accelerated HACC halo finder (DOE cosmology application)",
                    true,
                    "GCN3_X86",
                ),
                r(
                    "Pennant",
                    ResourceKind::Application,
                    "Unstructured-mesh mini-app for advanced architecture research",
                    true,
                    "GCN3_X86",
                ),
                r(
                    "LULESH",
                    ResourceKind::Application,
                    "DOE hydrodynamics proxy application",
                    true,
                    "GCN3_X86",
                ),
                r(
                    "hip-samples",
                    ResourceKind::Application,
                    "HIP sample applications showcasing GPU programming concepts",
                    true,
                    "GCN3_X86",
                ),
                r(
                    "gem5-tests",
                    ResourceKind::Test,
                    "asmtest (RISC-V), insttest (SPARC), riscv-tests, simple (m5ops/ARM \
                     semi-hosting), square (AMD GPU)",
                    true,
                    "any",
                ),
            ],
        }
    }

    /// Looks up a resource by name (case-sensitive, as listed).
    pub fn find(&self, name: &str) -> Option<&Resource> {
        self.resources.iter().find(|r| r.name == name)
    }

    /// All resources of a category.
    pub fn by_kind(&self, kind: ResourceKind) -> Vec<&Resource> {
        self.resources.iter().filter(|r| r.kind == kind).collect()
    }

    /// All resources targeting a simulator variant.
    pub fn by_variant(&self, variant: &str) -> Vec<&Resource> {
        self.resources
            .iter()
            .filter(|r| r.variant == variant)
            .collect()
    }

    /// Iterates over all resources in Table I order.
    pub fn iter(&self) -> impl Iterator<Item = &Resource> {
        self.resources.iter()
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_has_seventeen_entries() {
        assert_eq!(Catalog::standard().len(), 17);
    }

    #[test]
    fn spec_suites_ship_scripts_only() {
        let catalog = Catalog::standard();
        for name in ["spec-2006", "spec-2017"] {
            let spec = catalog.find(name).unwrap();
            assert!(!spec.prebuilt_distributable, "{name} must not ship images");
        }
        assert!(catalog.find("parsec").unwrap().prebuilt_distributable);
    }

    #[test]
    fn gpu_resources_target_gcn3() {
        let catalog = Catalog::standard();
        let gcn = catalog.by_variant("GCN3_X86");
        assert_eq!(gcn.len(), 7, "docker env + HeteroSync + DNNMark + 4 apps");
        assert!(gcn.iter().any(|r| r.name == "GCN-docker"));
    }

    #[test]
    fn kinds_partition_sensibly() {
        let catalog = Catalog::standard();
        assert_eq!(catalog.by_kind(ResourceKind::Kernel).len(), 1);
        assert_eq!(catalog.by_kind(ResourceKind::Environment).len(), 1);
        assert_eq!(catalog.by_kind(ResourceKind::BenchmarkTest).len(), 1);
        assert!(catalog.by_kind(ResourceKind::Benchmark).len() >= 6);
        // Every entry is reachable through some kind query.
        let total: usize = [
            ResourceKind::Benchmark,
            ResourceKind::BenchmarkTest,
            ResourceKind::Test,
            ResourceKind::Kernel,
            ResourceKind::Application,
            ResourceKind::Environment,
        ]
        .iter()
        .map(|k| catalog.by_kind(*k).len())
        .sum();
        assert_eq!(total, catalog.len());
    }

    #[test]
    fn lookup_by_name() {
        let catalog = Catalog::standard();
        assert!(catalog.find("boot-exit").is_some());
        assert!(catalog.find("nonexistent").is_none());
        assert_eq!(catalog.iter().next().unwrap().name, "boot-exit");
    }
}
