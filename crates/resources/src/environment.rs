//! The GPU build-environment resource (the GCN docker image).
//!
//! The paper devotes a section to how hard it is to install the exact
//! ROCm 1.6 stack the GCN3 GPU model needs, and ships a docker image
//! that pins it. This module models that environment and the
//! compatibility checks it performs: GPU workloads declare the stack
//! they need, and the environment validates it before a run.

use simart_gpu::workloads;
use std::fmt;

/// A pinned GPU software stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RocmStack {
    /// ROCm release.
    pub rocm_version: &'static str,
    /// Host compiler.
    pub gcc_version: &'static str,
    /// Libraries installed (HIP and friends).
    pub libraries: Vec<&'static str>,
}

impl RocmStack {
    /// The stack the GCN-docker resource pins: ROCm 1.6 with GCC 5.4.
    pub fn gcn_docker() -> RocmStack {
        RocmStack {
            rocm_version: "1.6",
            gcc_version: "5.4",
            libraries: vec!["HIP", "MIOpen", "rocBLAS", "ROCm-Device-Libs"],
        }
    }

    /// Whether this stack can build and run the named Table IV
    /// workload.
    ///
    /// All Table IV applications run on ROCm 1.6 with the matching
    /// HIP/MIOpen/rocBLAS libraries; DNNMark additionally needs MIOpen
    /// and rocBLAS.
    pub fn supports(&self, workload: &str) -> bool {
        if workloads::by_name(workload).is_none() {
            return false;
        }
        if self.rocm_version != "1.6" {
            return false;
        }
        match workloads::suite_of(workload) {
            Some(workloads::Suite::DnnMark) => {
                self.libraries.contains(&"MIOpen") && self.libraries.contains(&"rocBLAS")
            }
            Some(_) => self.libraries.contains(&"HIP"),
            None => false,
        }
    }

    /// Validates the whole Table IV set, returning unsupported names.
    pub fn unsupported_workloads(&self) -> Vec<&'static str> {
        workloads::ALL
            .iter()
            .copied()
            .filter(|w| !self.supports(w))
            .collect()
    }
}

impl fmt::Display for RocmStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ROCm {} / GCC {}", self.rocm_version, self.gcc_version)
    }
}

/// The dockerfile the resource ships, as reproducible documentation
/// (users may run it directly, avoid docker overheads by following it,
/// or use it as a starting point for modified libraries).
pub fn gcn_dockerfile() -> String {
    let stack = RocmStack::gcn_docker();
    let mut out = String::from("FROM ubuntu:16.04\n");
    out.push_str(&format!(
        "RUN apt-get update && apt-get install -y gcc-{}\n",
        stack.gcc_version
    ));
    out.push_str(&format!(
        "RUN install-rocm.sh --version {}\n",
        stack.rocm_version
    ));
    for lib in &stack.libraries {
        out.push_str(&format!("RUN install-rocm-lib.sh {lib}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn docker_stack_supports_every_table_iv_workload() {
        let stack = RocmStack::gcn_docker();
        assert!(stack.unsupported_workloads().is_empty());
        assert!(stack.supports("FAMutex"));
        assert!(stack.supports("fwd_pool"));
        assert!(stack.supports("PENNANT"));
        assert!(!stack.supports("not-a-workload"));
    }

    #[test]
    fn wrong_rocm_version_breaks_everything() {
        let mut stack = RocmStack::gcn_docker();
        stack.rocm_version = "4.0";
        assert_eq!(stack.unsupported_workloads().len(), workloads::ALL.len());
    }

    #[test]
    fn dnnmark_needs_miopen() {
        let mut stack = RocmStack::gcn_docker();
        stack.libraries.retain(|l| *l != "MIOpen");
        assert!(!stack.supports("fwd_softmax"));
        assert!(stack.supports("MatrixTranspose"), "HIP samples unaffected");
    }

    #[test]
    fn dockerfile_documents_the_pinned_stack() {
        let dockerfile = gcn_dockerfile();
        assert!(dockerfile.contains("gcc-5.4"));
        assert!(dockerfile.contains("--version 1.6"));
        assert!(dockerfile.contains("MIOpen"));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(RocmStack::gcn_docker().to_string(), "ROCm 1.6 / GCC 5.4");
    }
}
