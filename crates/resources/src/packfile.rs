//! The Packer-style disk-image builder.
//!
//! gem5-resources builds its disk images with HashiCorp Packer: a
//! template names a base OS, a preseed configuration, and a list of
//! provisioners (scripts to run, files to copy, benchmarks to
//! install). We reproduce that pipeline deterministically: the same
//! template always builds a byte-identical [`DiskImageSpec`], whose
//! fingerprint doubles as the disk-image artifact's content.

use simart_fullsim::os::OsImage;
use simart_fullsim::rng::fnv1a;
use std::fmt;

/// A provisioning step in a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provisioner {
    /// Run a shell script inside the image.
    Shell {
        /// Script name (for documentation).
        name: String,
        /// Script body.
        script: String,
    },
    /// Copy a file into the image.
    FileCopy {
        /// Source path on the build host.
        source: String,
        /// Destination inside the image.
        destination: String,
    },
    /// Install a benchmark suite (compiles it with the image's
    /// tool-chain).
    InstallBenchmark {
        /// Suite name (e.g. `parsec`).
        suite: String,
        /// Applications to build (empty = all).
        apps: Vec<String>,
    },
}

impl Provisioner {
    fn fingerprint_text(&self) -> String {
        match self {
            Provisioner::Shell { name, script } => format!("shell:{name}:{script}"),
            Provisioner::FileCopy {
                source,
                destination,
            } => {
                format!("copy:{source}->{destination}")
            }
            Provisioner::InstallBenchmark { suite, apps } => {
                format!("install:{suite}:{}", apps.join(","))
            }
        }
    }
}

/// A Packer-style image template.
#[derive(Debug, Clone, PartialEq)]
pub struct PackerTemplate {
    name: String,
    base_os: OsImage,
    preseed: String,
    provisioners: Vec<Provisioner>,
}

impl PackerTemplate {
    /// Starts a template for the given base OS image.
    pub fn new(name: impl Into<String>, base_os: OsImage) -> PackerTemplate {
        PackerTemplate {
            name: name.into(),
            base_os,
            preseed: "ubuntu-server-defaults".to_owned(),
            provisioners: Vec::new(),
        }
    }

    /// Overrides the preseed configuration.
    pub fn preseed(mut self, preseed: impl Into<String>) -> Self {
        self.preseed = preseed.into();
        self
    }

    /// Appends a provisioner.
    pub fn provisioner(mut self, provisioner: Provisioner) -> Self {
        self.provisioners.push(provisioner);
        self
    }

    /// Convenience: appends a shell provisioner.
    pub fn shell(self, name: impl Into<String>, script: impl Into<String>) -> Self {
        self.provisioner(Provisioner::Shell {
            name: name.into(),
            script: script.into(),
        })
    }

    /// Convenience: appends a benchmark-install provisioner.
    pub fn install(self, suite: impl Into<String>, apps: &[&str]) -> Self {
        self.provisioner(Provisioner::InstallBenchmark {
            suite: suite.into(),
            apps: apps.iter().map(|a| (*a).to_owned()).collect(),
        })
    }

    /// The template name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The provisioners, in order.
    pub fn provisioners(&self) -> &[Provisioner] {
        &self.provisioners
    }

    /// Builds the image. Deterministic: identical templates produce
    /// identical image specifications and fingerprints.
    pub fn build(&self) -> DiskImageSpec {
        let mut installed = Vec::new();
        let mut transcript = format!(
            "packer build {}\nbase: {}\npreseed: {}\n",
            self.name, self.base_os, self.preseed
        );
        for provisioner in &self.provisioners {
            transcript.push_str(&provisioner.fingerprint_text());
            transcript.push('\n');
            if let Provisioner::InstallBenchmark { suite, apps } = provisioner {
                if apps.is_empty() {
                    installed.push(format!("{suite}/*"));
                } else {
                    installed.extend(apps.iter().map(|a| format!("{suite}/{a}")));
                }
            }
        }
        let fingerprint = fnv1a(transcript.as_bytes());
        DiskImageSpec {
            name: self.name.clone(),
            os: self.base_os,
            installed,
            build_transcript: transcript,
            fingerprint,
        }
    }
}

/// A built disk image: what gets registered as a disk-image artifact
/// and later mounted by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskImageSpec {
    /// Image name.
    pub name: String,
    /// The user-land OS installed on the image.
    pub os: OsImage,
    /// Installed benchmark binaries (`suite/app` entries).
    pub installed: Vec<String>,
    /// Reproducible build transcript (the "documentation" of the
    /// image, like the Packer scripts the resources ship).
    pub build_transcript: String,
    /// Content fingerprint of the image.
    pub fingerprint: u64,
}

impl DiskImageSpec {
    /// Whether the image contains the given `suite/app` binary.
    pub fn has_app(&self, suite: &str, app: &str) -> bool {
        self.installed
            .iter()
            .any(|entry| entry == &format!("{suite}/{app}") || entry == &format!("{suite}/*"))
    }

    /// A stable textual content descriptor (for artifact hashing).
    pub fn content_descriptor(&self) -> String {
        format!("disk-image:{}:{:016x}", self.name, self.fingerprint)
    }
}

impl fmt::Display for DiskImageSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} installed apps)",
            self.name,
            self.os,
            self.installed.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsec_template(os: OsImage) -> PackerTemplate {
        PackerTemplate::new(format!("parsec-{os}"), os)
            .shell(
                "apt",
                "apt-get update && apt-get install -y build-essential",
            )
            .install("parsec", &["blackscholes", "dedup", "ferret"])
    }

    #[test]
    fn identical_templates_build_identical_images() {
        let a = parsec_template(OsImage::Ubuntu1804).build();
        let b = parsec_template(OsImage::Ubuntu1804).build();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn different_os_or_apps_change_the_fingerprint() {
        let bionic = parsec_template(OsImage::Ubuntu1804).build();
        let focal = parsec_template(OsImage::Ubuntu2004).build();
        assert_ne!(bionic.fingerprint, focal.fingerprint);

        let fewer = PackerTemplate::new("parsec-ubuntu-18.04", OsImage::Ubuntu1804)
            .shell(
                "apt",
                "apt-get update && apt-get install -y build-essential",
            )
            .install("parsec", &["blackscholes"])
            .build();
        assert_ne!(bionic.fingerprint, fewer.fingerprint);
    }

    #[test]
    fn installed_apps_are_queryable() {
        let image = parsec_template(OsImage::Ubuntu2004).build();
        assert!(image.has_app("parsec", "dedup"));
        assert!(!image.has_app("parsec", "vips"));
        let everything = PackerTemplate::new("all", OsImage::Ubuntu1804)
            .install("npb", &[])
            .build();
        assert!(everything.has_app("npb", "cg"), "wildcard install");
    }

    #[test]
    fn transcript_documents_the_build() {
        let image = parsec_template(OsImage::Ubuntu1804).build();
        assert!(image.build_transcript.contains("packer build"));
        assert!(image.build_transcript.contains("install:parsec"));
        assert!(image
            .content_descriptor()
            .starts_with("disk-image:parsec-ubuntu-18.04:"));
    }

    #[test]
    fn provisioner_order_matters() {
        let ab = PackerTemplate::new("x", OsImage::Ubuntu1804)
            .shell("a", "1")
            .shell("b", "2")
            .build();
        let ba = PackerTemplate::new("x", OsImage::Ubuntu1804)
            .shell("b", "2")
            .shell("a", "1")
            .build();
        assert_ne!(ab.fingerprint, ba.fingerprint);
    }
}
