//! The `gem5 tests` resource: ready-made test programs with known
//! results.
//!
//! Table I's final entry bundles instruction/syscall tests (asmtest,
//! insttest, riscv-tests, simple, square). This module provides the
//! analogous programs for the simulator's functional ISA, each with its
//! expected architectural outcome, so any execution engine can be
//! validated against them.

use simart_fullsim::isa::func::{execute, FuncInst, FuncResult, Stop};

/// A named test program with its pass criterion.
pub struct TestProgram {
    /// Test name (mirrors the resource's test names).
    pub name: &'static str,
    /// What the test exercises.
    pub description: &'static str,
    /// The program text.
    pub program: Vec<FuncInst>,
    /// Initial register values.
    pub init: Vec<(u8, i64)>,
    /// Pass check over the final state.
    pub check: fn(&FuncResult) -> bool,
}

impl std::fmt::Debug for TestProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestProgram")
            .field("name", &self.name)
            .field("instructions", &self.program.len())
            .finish_non_exhaustive()
    }
}

impl TestProgram {
    /// Runs the program and reports whether it passed.
    pub fn run(&self) -> (FuncResult, bool) {
        let result = execute(&self.program, &self.init, 1_000_000);
        let passed = result.stop == Stop::Halted && (self.check)(&result);
        (result, passed)
    }
}

/// Builds the full test-program suite.
pub fn suite() -> Vec<TestProgram> {
    use FuncInst::*;
    vec![
        TestProgram {
            name: "asmtest-arith",
            description: "basic integer arithmetic and x0 semantics",
            program: vec![
                Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 21,
                },
                Add {
                    rd: 2,
                    rs1: 1,
                    rs2: 1,
                },
                Addi {
                    rd: 0,
                    rs1: 2,
                    imm: 1,
                }, // write to x0 is dropped
                Halt,
            ],
            init: vec![],
            check: |r| r.reg(2) == 42 && r.reg(0) == 0,
        },
        TestProgram {
            name: "insttest-mul-chain",
            description: "multiply dependency chain (5! = 120)",
            program: vec![
                Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 1,
                }, // acc
                Addi {
                    rd: 2,
                    rs1: 0,
                    imm: 1,
                }, // i
                Addi {
                    rd: 3,
                    rs1: 0,
                    imm: 6,
                }, // limit
                Beq {
                    rs1: 2,
                    rs2: 3,
                    delta: 4,
                },
                Mul {
                    rd: 1,
                    rs1: 1,
                    rs2: 2,
                },
                Addi {
                    rd: 2,
                    rs1: 2,
                    imm: 1,
                },
                Beq {
                    rs1: 0,
                    rs2: 0,
                    delta: -3,
                },
                Halt,
            ],
            init: vec![],
            check: |r| r.reg(1) == 120,
        },
        TestProgram {
            name: "square",
            description: "square a vector of 8 values in memory",
            program: vec![
                // for i in 0..8: mem[0x200+i] = mem[0x100+i]^2
                Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 0,
                }, // i
                Addi {
                    rd: 2,
                    rs1: 0,
                    imm: 8,
                }, // n
                Beq {
                    rs1: 1,
                    rs2: 2,
                    delta: 6,
                },
                Load {
                    rd: 3,
                    rs1: 1,
                    offset: 0x100,
                },
                Mul {
                    rd: 4,
                    rs1: 3,
                    rs2: 3,
                },
                Store {
                    rs1: 1,
                    rs2: 4,
                    offset: 0x200,
                },
                Addi {
                    rd: 1,
                    rs1: 1,
                    imm: 1,
                },
                Beq {
                    rs1: 0,
                    rs2: 0,
                    delta: -5,
                },
                Halt,
            ],
            // Seed the input vector via stores in init? Memory starts
            // empty; squares of zero are zero, so pre-seed registers
            // instead: the program squares mem contents, which a setup
            // prologue writes below.
            init: vec![],
            check: |r| (0..8).all(|i| r.mem(0x200 + i) == (i * i)),
        },
        TestProgram {
            name: "simple-memcpy",
            description: "copy 4 words through memory (m5ops-style smoke test)",
            program: vec![
                // prologue: mem[0x10+i] = i * 3
                Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 0,
                },
                Addi {
                    rd: 2,
                    rs1: 0,
                    imm: 4,
                },
                Addi {
                    rd: 5,
                    rs1: 0,
                    imm: 3,
                },
                Beq {
                    rs1: 1,
                    rs2: 2,
                    delta: 5,
                },
                Mul {
                    rd: 3,
                    rs1: 1,
                    rs2: 5,
                },
                Store {
                    rs1: 1,
                    rs2: 3,
                    offset: 0x10,
                },
                Addi {
                    rd: 1,
                    rs1: 1,
                    imm: 1,
                },
                Beq {
                    rs1: 0,
                    rs2: 0,
                    delta: -4,
                },
                // copy loop: mem[0x20+i] = mem[0x10+i]
                Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 0,
                },
                Beq {
                    rs1: 1,
                    rs2: 2,
                    delta: 5,
                },
                Load {
                    rd: 3,
                    rs1: 1,
                    offset: 0x10,
                },
                Store {
                    rs1: 1,
                    rs2: 3,
                    offset: 0x20,
                },
                Addi {
                    rd: 1,
                    rs1: 1,
                    imm: 1,
                },
                Beq {
                    rs1: 0,
                    rs2: 0,
                    delta: -4,
                },
                Halt,
            ],
            init: vec![],
            check: |r| (0..4).all(|i| r.mem(0x20 + i) == i * 3),
        },
        TestProgram {
            name: "riscv-tests-fib",
            description: "iterative fibonacci(20)",
            program: vec![
                Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 0,
                }, // a
                Addi {
                    rd: 2,
                    rs1: 0,
                    imm: 1,
                }, // b
                Addi {
                    rd: 3,
                    rs1: 0,
                    imm: 0,
                }, // i
                Addi {
                    rd: 4,
                    rs1: 0,
                    imm: 20,
                }, // n
                Beq {
                    rs1: 3,
                    rs2: 4,
                    delta: 6,
                },
                Add {
                    rd: 5,
                    rs1: 1,
                    rs2: 2,
                }, // t = a + b
                Add {
                    rd: 1,
                    rs1: 2,
                    rs2: 0,
                }, // a = b
                Add {
                    rd: 2,
                    rs1: 5,
                    rs2: 0,
                }, // b = t
                Addi {
                    rd: 3,
                    rs1: 3,
                    imm: 1,
                },
                Beq {
                    rs1: 0,
                    rs2: 0,
                    delta: -5,
                },
                Halt,
            ],
            init: vec![],
            check: |r| r.reg(1) == 6765, // fib(20)
        },
    ]
}

/// The `square` test needs its input vector in memory; this returns
/// the suite with setup prologues applied where needed.
fn square_with_prologue() -> TestProgram {
    use FuncInst::*;
    let mut program = vec![
        // prologue: mem[0x100+i] = i
        Addi {
            rd: 1,
            rs1: 0,
            imm: 0,
        },
        Addi {
            rd: 2,
            rs1: 0,
            imm: 8,
        },
        Beq {
            rs1: 1,
            rs2: 2,
            delta: 4,
        },
        Store {
            rs1: 1,
            rs2: 1,
            offset: 0x100,
        },
        Addi {
            rd: 1,
            rs1: 1,
            imm: 1,
        },
        Beq {
            rs1: 0,
            rs2: 0,
            delta: -3,
        },
    ];
    let body = suite()
        .into_iter()
        .find(|t| t.name == "square")
        .expect("square exists");
    program.extend(body.program);
    TestProgram { program, ..body }
}

/// Runs the whole suite, returning `(name, passed)` per test.
pub fn run_all() -> Vec<(&'static str, bool)> {
    suite()
        .into_iter()
        .map(|test| {
            if test.name == "square" {
                square_with_prologue()
            } else {
                test
            }
        })
        .map(|test| {
            let (_, passed) = test.run();
            (test.name, passed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bundled_test_passes() {
        for (name, passed) in run_all() {
            assert!(passed, "test program {name} failed");
        }
    }

    #[test]
    fn suite_matches_the_resource_roster() {
        let names: Vec<&str> = suite().iter().map(|t| t.name).collect();
        assert_eq!(names.len(), 5);
        assert!(names.contains(&"square"), "Table I lists the square test");
        assert!(names.iter().any(|n| n.starts_with("asmtest")));
        assert!(names.iter().any(|n| n.starts_with("insttest")));
        assert!(names.iter().any(|n| n.starts_with("riscv-tests")));
    }

    #[test]
    fn a_broken_program_is_detected() {
        use FuncInst::*;
        let broken = TestProgram {
            name: "broken",
            description: "returns the wrong answer",
            program: vec![
                Addi {
                    rd: 1,
                    rs1: 0,
                    imm: 41,
                },
                Halt,
            ],
            init: vec![],
            check: |r| r.reg(1) == 42,
        };
        let (_, passed) = broken.run();
        assert!(!passed);
    }
}
