//! Kernel resources: the Linux binaries gem5-resources ships.

use simart_fullsim::kernel::KernelVersion;

/// A compiled kernel resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelResource {
    /// Kernel version line.
    pub version: KernelVersion,
    /// Configuration fragments applied on top of the defconfig.
    pub config: Vec<String>,
}

impl KernelResource {
    /// The standard resource configuration for a version (the configs
    /// the paper's linux-kernel resource documents).
    pub fn standard(version: KernelVersion) -> KernelResource {
        KernelResource {
            version,
            config: vec![
                "CONFIG_SERIAL_8250=y".to_owned(),
                "CONFIG_IDE_GENERIC=y".to_owned(),
                "CONFIG_DEVTMPFS=y".to_owned(),
                "CONFIG_EXT4_FS=y".to_owned(),
            ],
        }
    }

    /// All kernels the resources provide: the five Figure 8 LTS lines
    /// plus the Ubuntu stock kernels used by use-case 1.
    pub fn all_provided() -> Vec<KernelResource> {
        let mut kernels: Vec<KernelResource> = KernelVersion::FIGURE8
            .iter()
            .map(|v| Self::standard(*v))
            .collect();
        if !KernelVersion::FIGURE8.contains(&KernelVersion::V4_15) {
            kernels.push(Self::standard(KernelVersion::V4_15));
        }
        kernels
    }

    /// The artifact content descriptor for this kernel binary.
    pub fn content_descriptor(&self) -> String {
        format!(
            "vmlinux-{}:{}",
            self.version.release(),
            self.config.join(",")
        )
    }

    /// The conventional binary filename.
    pub fn binary_name(&self) -> String {
        format!("vmlinux-{}", self.version.release())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provides_six_kernels() {
        let kernels = KernelResource::all_provided();
        assert_eq!(kernels.len(), 6, "five LTS lines + Ubuntu 18.04's 4.15");
        assert!(kernels.iter().any(|k| k.version == KernelVersion::V4_15));
        assert!(kernels.iter().any(|k| k.version == KernelVersion::V5_4));
    }

    #[test]
    fn descriptors_distinguish_versions_and_configs() {
        let a = KernelResource::standard(KernelVersion::V4_19);
        let b = KernelResource::standard(KernelVersion::V5_4);
        assert_ne!(a.content_descriptor(), b.content_descriptor());
        let mut custom = KernelResource::standard(KernelVersion::V4_19);
        custom.config.push("CONFIG_NUMA=y".to_owned());
        assert_ne!(a.content_descriptor(), custom.content_descriptor());
    }

    #[test]
    fn binary_names_carry_the_release() {
        assert_eq!(
            KernelResource::standard(KernelVersion::V5_4).binary_name(),
            "vmlinux-5.4.51"
        );
    }
}
