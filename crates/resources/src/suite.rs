//! Registration helpers: turn resources into documented artifacts.
//!
//! The paper's two contributions "function best when working in
//! tandem": resources provide the components, the artifact framework
//! records which were used. These helpers perform that hand-off with
//! the documentation fields filled in the way the framework requires.

use crate::disks;
use crate::kernels::KernelResource;
use crate::packfile::DiskImageSpec;
use simart_artifact::{Artifact, ArtifactKind, ArtifactRegistry, ContentSource};
use simart_fullsim::os::OsImage;
use std::sync::Arc;

/// Registers a kernel resource, returning the kernel artifact.
///
/// # Errors
///
/// Propagates registry errors (conflicting duplicates).
pub fn register_kernel(
    registry: &mut ArtifactRegistry,
    kernel: &KernelResource,
) -> Result<Arc<Artifact>, simart_artifact::ArtifactError> {
    registry.register(
        Artifact::builder(kernel.binary_name(), ArtifactKind::Kernel)
            .command(format!(
                "cd linux-stable; git checkout v{}; make -j8 vmlinux",
                kernel.version.release()
            ))
            .cwd("linux-stable/")
            .path(format!("linux-stable/{}", kernel.binary_name()))
            .documentation(format!(
                "Linux kernel {} built from the linux-kernel resource with config [{}]",
                kernel.version.release(),
                kernel.config.join(" ")
            ))
            .content(ContentSource::descriptor(kernel.content_descriptor())),
    )
}

/// Registers a built disk image, returning the disk-image artifact.
///
/// # Errors
///
/// Propagates registry errors.
pub fn register_disk_image(
    registry: &mut ArtifactRegistry,
    image: &DiskImageSpec,
) -> Result<Arc<Artifact>, simart_artifact::ArtifactError> {
    registry.register(
        Artifact::builder(image.name.clone(), ArtifactKind::DiskImage)
            .command(format!("packer build {}.json", image.name))
            .cwd("disk-image/")
            .path(format!("disk-image/{}.img", image.name))
            .documentation(image.build_transcript.clone())
            .content(ContentSource::descriptor(image.content_descriptor())),
    )
}

/// Registers the standard experiment substrate: simulator repository +
/// binary and a run script, returning `(repo, binary, script)`.
///
/// # Errors
///
/// Propagates registry errors.
pub fn register_simulator(
    registry: &mut ArtifactRegistry,
    version: &str,
    variant: &str,
) -> Result<[Arc<Artifact>; 3], simart_artifact::ArtifactError> {
    let repo = registry.register(
        Artifact::builder("gem5", ArtifactKind::GitRepo)
            .command(format!(
                "git clone https://gem5.googlesource.com/public/gem5; git checkout v{version}"
            ))
            .cwd("./")
            .path("gem5/")
            .documentation(format!("simulator source repository at v{version}"))
            .content(ContentSource::git(
                "https://gem5.googlesource.com/public/gem5",
                version,
            )),
    )?;
    let binary = registry.register(
        Artifact::builder(format!("gem5-{variant}"), ArtifactKind::Binary)
            .command(format!("scons build/{variant}/gem5.opt -j8"))
            .cwd("gem5/")
            .path(format!("gem5/build/{variant}/gem5.opt"))
            .documentation(format!(
                "optimized {variant} simulator binary at v{version}"
            ))
            .content(ContentSource::descriptor(format!(
                "gem5.opt:{version}:{variant}"
            )))
            .input(repo.id()),
    )?;
    let script = registry.register(
        Artifact::builder("run-script", ArtifactKind::RunScript)
            .command("git clone https://gem5.googlesource.com/public/gem5-resources")
            .cwd("gem5-resources/")
            .path("gem5-resources/src/boot-exit/configs/run_exit.py")
            .documentation("full-system run script from the resources repository")
            .content(ContentSource::descriptor(format!("run-script:{version}")))
            .input(repo.id()),
    )?;
    Ok([repo, binary, script])
}

/// Registers the PARSEC images for both Ubuntu releases, returning
/// `(bionic, focal)` disk-image artifacts — the use-case 1 setup.
///
/// # Errors
///
/// Propagates registry errors.
pub fn register_parsec_images(
    registry: &mut ArtifactRegistry,
) -> Result<[Arc<Artifact>; 2], simart_artifact::ArtifactError> {
    let bionic = register_disk_image(registry, &disks::parsec_image(OsImage::Ubuntu1804))?;
    let focal = register_disk_image(registry, &disks::parsec_image(OsImage::Ubuntu2004))?;
    Ok([bionic, focal])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simart_fullsim::kernel::KernelVersion;

    #[test]
    fn kernel_registration_is_idempotent() {
        let mut registry = ArtifactRegistry::new();
        let kernel = KernelResource::standard(KernelVersion::V5_4);
        let a = register_kernel(&mut registry, &kernel).unwrap();
        let b = register_kernel(&mut registry, &kernel).unwrap();
        assert_eq!(a.id(), b.id());
        assert_eq!(registry.len(), 1);
        assert_eq!(a.kind(), &ArtifactKind::Kernel);
    }

    #[test]
    fn disk_images_register_with_build_documentation() {
        let mut registry = ArtifactRegistry::new();
        let image = disks::boot_exit_image();
        let artifact = register_disk_image(&mut registry, &image).unwrap();
        assert!(artifact.documentation().contains("packer build"));
        assert_eq!(artifact.kind(), &ArtifactKind::DiskImage);
    }

    #[test]
    fn simulator_registration_wires_provenance() {
        let mut registry = ArtifactRegistry::new();
        let [repo, binary, script] = register_simulator(&mut registry, "20.1.0.4", "X86").unwrap();
        assert_eq!(binary.inputs(), &[repo.id()]);
        assert_eq!(script.inputs(), &[repo.id()]);
        assert_eq!(repo.git().unwrap().revision, "20.1.0.4");
        // The binary's reproduction closure includes the repository.
        let closure = registry.closure(binary.id()).unwrap();
        assert_eq!(closure.len(), 2);
    }

    #[test]
    fn parsec_images_differ_as_artifacts() {
        let mut registry = ArtifactRegistry::new();
        let [bionic, focal] = register_parsec_images(&mut registry).unwrap();
        assert_ne!(bionic.hash(), focal.hash());
        assert_ne!(bionic.id(), focal.id());
    }
}
