//! # simart-resources
//!
//! A catalog of known-good simulation resources — the analogue of the
//! paper's *gem5-resources* repository.
//!
//! The paper's second contribution is a curated set of components that
//! are "not strictly needed to build and run gem5 but may be utilized
//! in the running of a gem5 simulation": disk images pre-loaded with
//! benchmark suites, kernels, run scripts, tests, and a GPU build
//! environment. This crate reproduces that catalog:
//!
//! * [`catalog`] — the 17 resources of the paper's Table I, typed and
//!   queryable;
//! * [`packfile`] — a Packer-style disk-image builder: a template plus
//!   provisioners deterministically produce a bootable image
//!   description (and the artifacts to register for it);
//! * [`kernels`] — the Linux kernel binaries the resources ship
//!   (five LTS lines plus the Ubuntu stock kernels);
//! * [`disks`] — the pre-built disk images (PARSEC on 18.04/20.04,
//!   boot-exit, …) and the licensing rule that SPEC images are build
//!   scripts only;
//! * [`environment`] — the ROCm/GCN3 build environment resource and
//!   its compatibility checks;
//! * [`suite`] — registration helpers that turn any resource into
//!   properly documented artifacts in an
//!   [`simart_artifact::ArtifactRegistry`];
//! * [`tests_resource`] — the `gem5 tests` entry: ready-made test
//!   programs (asmtest/insttest/square-style) with known architectural
//!   results, runnable on the simulator's functional ISA.
//!
//! ```
//! use simart_resources::catalog::Catalog;
//! use simart_resources::ResourceKind;
//!
//! let catalog = Catalog::standard();
//! assert_eq!(catalog.len(), 17);
//! let parsec = catalog.find("parsec").unwrap();
//! assert_eq!(parsec.kind, ResourceKind::Benchmark);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod disks;
pub mod environment;
pub mod kernels;
pub mod packfile;
pub mod suite;
pub mod tests_resource;

pub use catalog::{Catalog, Resource};
pub use packfile::{DiskImageSpec, PackerTemplate, Provisioner};

use std::fmt;

/// The resource categories of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// A benchmark suite resource.
    Benchmark,
    /// A benchmark that doubles as a test (e.g. boot-exit).
    BenchmarkTest,
    /// A standalone test resource.
    Test,
    /// A kernel resource.
    Kernel,
    /// A single application (DOE proxy apps, etc.).
    Application,
    /// A build/run environment (the GCN docker image).
    Environment,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Benchmark => "Benchmark",
            ResourceKind::BenchmarkTest => "Benchmark / Test",
            ResourceKind::Test => "Test",
            ResourceKind::Kernel => "Kernel",
            ResourceKind::Application => "Application",
            ResourceKind::Environment => "Environment",
        };
        f.write_str(s)
    }
}
