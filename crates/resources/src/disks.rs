//! Pre-built disk images the resources provide.

use crate::packfile::{DiskImageSpec, PackerTemplate};
use simart_fullsim::os::OsImage;
use simart_fullsim::workload::PARSEC_APPS;

/// Builds the PARSEC disk image for the given Ubuntu release —
/// the images the paper's use-case 1 compares.
pub fn parsec_image(os: OsImage) -> DiskImageSpec {
    let gcc = os.profile().gcc_version;
    PackerTemplate::new(format!("parsec-{os}"), os)
        .shell(
            "toolchain",
            format!("apt-get update && apt-get install -y build-essential gcc-{gcc}"),
        )
        .shell(
            "parsec-fetch",
            "git clone https://example.org/parsec-benchmark.git",
        )
        .install("parsec", &PARSEC_APPS)
        .build()
}

/// Builds the boot-exit disk image used by the Figure 8 boot tests:
/// an Ubuntu 18.04 server user-land that exits immediately after boot.
pub fn boot_exit_image() -> DiskImageSpec {
    PackerTemplate::new("boot-exit", OsImage::Ubuntu1804)
        .shell(
            "m5-exit",
            "install -m 0755 m5 /sbin/m5 && echo 'm5 exit' >> /etc/rc.local",
        )
        .build()
}

/// Builds the NAS Parallel Benchmarks image.
pub fn npb_image() -> DiskImageSpec {
    PackerTemplate::new("npb", OsImage::Ubuntu1804)
        .shell("toolchain", "apt-get install -y gfortran build-essential")
        .install(
            "npb",
            &["bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "ua"],
        )
        .build()
}

/// Builds the GAP Benchmark Suite image.
pub fn gapbs_image() -> DiskImageSpec {
    PackerTemplate::new("gapbs", OsImage::Ubuntu1804)
        .shell("toolchain", "apt-get install -y build-essential")
        .install("gapbs", &["bc", "bfs", "cc", "pr", "sssp", "tc"])
        .build()
}

/// SPEC images cannot be distributed; this returns the *template* a
/// license holder runs against their own `.iso`, mirroring the
/// resources' scripts-only policy.
pub fn spec2006_template(iso_path: &str) -> PackerTemplate {
    PackerTemplate::new("spec-2006", OsImage::Ubuntu1804)
        .shell("mount-iso", format!("mount -o loop {iso_path} /mnt/spec"))
        .shell("install", "/mnt/spec/install.sh -d /opt/spec2006")
        .install("spec2006", &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsec_images_carry_all_ten_apps() {
        for os in OsImage::ALL {
            let image = parsec_image(os);
            assert_eq!(image.os, os);
            for app in PARSEC_APPS {
                assert!(image.has_app("parsec", app), "{os} missing {app}");
            }
        }
    }

    #[test]
    fn parsec_images_differ_across_releases() {
        let bionic = parsec_image(OsImage::Ubuntu1804);
        let focal = parsec_image(OsImage::Ubuntu2004);
        assert_ne!(bionic.fingerprint, focal.fingerprint);
        // The build transcript documents the different tool-chains.
        assert!(bionic.build_transcript.contains("gcc-7.4"));
        assert!(focal.build_transcript.contains("gcc-9.3"));
    }

    #[test]
    fn boot_exit_is_minimal() {
        let image = boot_exit_image();
        assert!(image.installed.is_empty(), "no benchmarks, just boot+exit");
        assert!(image.build_transcript.contains("m5 exit"));
    }

    #[test]
    fn suite_images_build_deterministically() {
        assert_eq!(npb_image(), npb_image());
        assert_eq!(gapbs_image(), gapbs_image());
        assert!(npb_image().has_app("npb", "cg"));
        assert!(gapbs_image().has_app("gapbs", "bfs"));
    }

    #[test]
    fn spec_ships_template_not_image() {
        let template = spec2006_template("/iso/spec2006.iso");
        assert!(template
            .provisioners()
            .iter()
            .any(|p| matches!(p, crate::Provisioner::Shell { script, .. } if script.contains("/iso/spec2006.iso"))));
    }
}
