//! Offline shim for the `rand` crate.
//!
//! Implements exactly the surface simart uses: `rngs::SmallRng`
//! (xoshiro256++ seeded through SplitMix64, matching the statistical
//! quality the simulators rely on), the `RngCore`/`SeedableRng` traits,
//! and the `Rng` extension with `gen` / `gen_range`.

use std::ops::Range;

/// Core random-number generation: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution of [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Ranges that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng` within the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                // Multiply-shift: unbiased enough for simulation use and
                // deterministic across platforms.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let n = rng.gen_range(0u64..7);
            assert!(n < 7);
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for count in counts {
            assert!((800..1200).contains(&count), "counts {counts:?}");
        }
    }
}
