//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the minimal API surface it actually uses: a
//! [`Mutex`] and an [`RwLock`] whose guards are returned directly
//! (poison is swallowed, as parking_lot does by construction).
//!
//! With the `trace` cargo feature, every lock acquire/release emits a
//! `tracepoint` event for the simart-analyze race detector. The guards
//! are thin newtypes over the std guards either way; without the
//! feature they carry no extra state and no `Drop` impl, so tracing
//! support costs nothing when disabled.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

#[cfg(feature = "trace")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Lazily assigns (on first use) and returns a lock's trace id.
#[cfg(feature = "trace")]
fn trace_id(slot: &AtomicU64) -> u64 {
    let id = slot.load(Ordering::Relaxed);
    if id != 0 {
        return id;
    }
    let fresh = tracepoint::fresh_id();
    match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(raced) => raced,
    }
}

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "trace")]
    id: AtomicU64,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "trace")]
    id: u64,
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "trace")]
            id: AtomicU64::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "trace")]
        {
            let id = trace_id(&self.id);
            tracepoint::record(tracepoint::Op::LockAcquire(id));
            MutexGuard { id, inner }
        }
        #[cfg(not(feature = "trace"))]
        MutexGuard { inner }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "trace")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        tracepoint::record(tracepoint::Op::LockRelease(self.id));
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose guards are returned without poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "trace")]
    id: AtomicU64,
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
///
/// Traced as a full acquire/release pair: conservative (two concurrent
/// readers appear ordered to the detector) but never hides a
/// writer-involved race behind a missing edge.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "trace")]
    id: u64,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "trace")]
    id: u64,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "trace")]
            id: AtomicU64::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "trace")]
        {
            let id = trace_id(&self.id);
            tracepoint::record(tracepoint::Op::LockAcquire(id));
            RwLockReadGuard { id, inner }
        }
        #[cfg(not(feature = "trace"))]
        RwLockReadGuard { inner }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "trace")]
        {
            let id = trace_id(&self.id);
            tracepoint::record(tracepoint::Op::LockAcquire(id));
            RwLockWriteGuard { id, inner }
        }
        #[cfg(not(feature = "trace"))]
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "trace")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        tracepoint::record(tracepoint::Op::LockRelease(self.id));
    }
}

#[cfg(feature = "trace")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        tracepoint::record(tracepoint::Op::LockRelease(self.id));
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn locks_emit_acquire_release_pairs() {
        tracepoint::enable();
        let m = Mutex::new(0);
        {
            let mut guard = m.lock();
            *guard += 1;
        }
        let events = tracepoint::drain();
        tracepoint::disable();
        let acquires = events
            .iter()
            .filter(|e| matches!(e.op, tracepoint::Op::LockAcquire(_)))
            .count();
        let releases = events
            .iter()
            .filter(|e| matches!(e.op, tracepoint::Op::LockRelease(_)))
            .count();
        assert!(acquires >= 1);
        assert_eq!(acquires, releases);
    }
}
