//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the minimal API surface it actually uses: a
//! [`Mutex`] and an [`RwLock`] whose guards are returned directly
//! (poison is swallowed, as parking_lot does by construction).

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose guards are returned without poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
