//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock harness implementing the API the `figures`
//! bench uses: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a fixed number of
//! timed iterations and prints mean time per iteration.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to `Bencher::iter`.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing each iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.samples.max(1) {
            black_box(routine());
        }
        let per_iter = start.elapsed() / self.samples.max(1) as u32;
        println!(
            "    {:>12?} /iter over {} iters",
            per_iter,
            self.samples.max(1)
        );
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut BenchmarkGroup {
        self.sample_size = samples;
        self
    }

    /// Benchmarks a closure under a string id.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut BenchmarkGroup {
        println!("  {}/{}", self.name, id);
        let mut bencher = Bencher {
            samples: self.sample_size,
        };
        routine(&mut bencher);
        self
    }

    /// Benchmarks a closure parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut BenchmarkGroup {
        println!("  {}/{}", self.name, id);
        let mut bencher = Bencher {
            samples: self.sample_size,
        };
        routine(&mut bencher, input);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        println!("bench {id}");
        let mut bencher = Bencher { samples: 10 };
        routine(&mut bencher);
        self
    }
}

/// Declares a benchmark group function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
