//! Strategies: deterministic value generators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A generator of values for property tests.
///
/// Object-safe core (`generate`) plus sized combinators, mirroring the
/// parts of proptest's `Strategy` the workspace uses.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a bounded-depth recursive strategy: `f` receives the
    /// strategy for the next-shallower level. `_max_size` and `_items`
    /// are accepted for API compatibility; depth alone bounds recursion
    /// here.
    fn prop_recursive<G, F>(
        self,
        depth: u32,
        _max_size: u32,
        _items: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        G: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> G,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            // Each level is an even split between staying at the leaf
            // and descending one level deeper, so generated sizes stay
            // bounded.
            let deeper = f(current).boxed();
            current = Union::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        current
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread of magnitudes.
        let mantissa = rng.unit() * 2.0 - 1.0;
        let exponent = (rng.below(61) as i32) - 30;
        mantissa * (2.0f64).powi(exponent)
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for byte in &mut out {
            *byte = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// `&str` character-class patterns (`"[a-z0-9]{1,8}"`) act as string
/// strategies, mirroring proptest's regex-literal support for the
/// subset the test suites use. Patterns that don't parse as a single
/// `[class]{m,n}` group generate the literal text itself.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((alphabet, min, max)) => {
                debug_assert!(!alphabet.is_empty(), "empty character class in {self:?}");
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len)
                    .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_owned(),
        }
    }
}

/// Parses `[chars]{m,n}` into (alphabet, min, max). Supports ranges
/// (`a-z`), escapes (`\\-`, `\\.`), and literal unicode characters.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, tail) = rest.split_at(close);
    let tail = tail.strip_prefix(']')?;
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if max < min {
        return None;
    }
    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let c = if c == '\\' { chars.next()? } else { c };
        if chars.peek() == Some(&'-') {
            // Lookahead: `x-y` range unless the dash is the last char.
            let mut ahead = chars.clone();
            ahead.next(); // consume '-'
            match ahead.next() {
                Some(mut end) => {
                    if end == '\\' {
                        end = ahead.next()?;
                    }
                    chars = ahead;
                    for code in (c as u32)..=(end as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            alphabet.push(ch);
                        }
                    }
                    continue;
                }
                None => {}
            }
        }
        alphabet.push(c);
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u32..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn class_patterns_parse() {
        let (alphabet, min, max) = parse_class_pattern("[a-c]{1,4}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c']);
        assert_eq!((min, max), (1, 4));
        let (alphabet, _, _) = parse_class_pattern("[a-z ./-]{0,24}").unwrap();
        assert!(alphabet.contains(&'-') && alphabet.contains(&'.') && alphabet.contains(&' '));
        let (alphabet, _, _) =
            parse_class_pattern("[a-zA-Z0-9 _\\-\\.\u{e9}\u{4e16}]{0,12}").unwrap();
        assert!(alphabet.contains(&'\u{e9}') && alphabet.contains(&'-') && alphabet.contains(&'Z'));
    }

    #[test]
    fn string_strategy_respects_lengths() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{2,5}".generate(&mut r);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_union_draws_all_arms() {
        let union = Union::new(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut r = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(union.generate(&mut r));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut r = rng();
        for _ in 0..50 {
            let _tree = strat.generate(&mut r);
        }
    }
}
