//! Deterministic case generation for the [`proptest!`](crate::proptest)
//! macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The deterministic RNG handed to strategies.
///
/// xoshiro256++ seeded from the test name and case index, so every
/// case is reproducible by rerunning the test binary.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut sm = fnv1a(test_name.as_bytes()) ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
        TestRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` (`bound` must be positive).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases per property (overridable via `PROPTEST_CASES`).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Per-suite configuration, mirroring upstream's
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u64,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u64) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Runs `body` once per generated case, labelling failures with the
/// case index so they can be reproduced.
pub fn run_cases(test_name: &str, body: impl FnMut(&mut TestRng)) {
    run_cases_n(test_name, cases(), body);
}

/// [`run_cases`] with an explicit case count (from `proptest_config`).
pub fn run_cases_n(test_name: &str, total: u64, mut body: impl FnMut(&mut TestRng)) {
    for case in 0..total {
        let mut rng = TestRng::for_case(test_name, case);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("proptest shim: {test_name} failed at case {case}/{total}");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn run_cases_executes_all() {
        std::env::remove_var("PROPTEST_CASES");
        let mut count = 0;
        run_cases("counting", |_| count += 1);
        assert_eq!(count, cases());
    }
}
