//! Collection strategies (`vec`, `btree_map`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::Range;

/// Strategy for vectors whose lengths fall in `len` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let len = self.len.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap`s with up to `len.end - 1` entries (duplicate
/// keys collapse, as in upstream proptest).
pub fn btree_map<K, V>(keys: K, values: V, len: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    assert!(len.start < len.end, "empty length range");
    BTreeMapStrategy { keys, values, len }
}

/// The result of [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    len: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let len = self.len.start + rng.below(span) as usize;
        (0..len)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_lengths_in_range() {
        let strat = vec(any::<u8>(), 2..6);
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_generates_entries() {
        let strat = btree_map("[a-z]{1,6}", any::<u64>(), 1..8);
        let mut rng = TestRng::for_case("map", 0);
        let mut nonempty = 0;
        for _ in 0..50 {
            let m = strat.generate(&mut rng);
            assert!(m.len() < 8);
            nonempty += usize::from(!m.is_empty());
        }
        assert!(nonempty > 0);
    }
}
