//! Offline shim for the `proptest` crate.
//!
//! A deterministic property-testing harness implementing the surface
//! the simart test suites use: the [`proptest!`] macro, `prop_assert*`,
//! `prop_assume!`, `prop_oneof!`, [`strategy::Strategy`] with
//! `prop_map`/`prop_recursive`/`boxed`, `any::<T>()`, numeric-range and
//! character-class string strategies, and `collection::{vec,
//! btree_map}`.
//!
//! Unlike upstream proptest there is no shrinking: every generated case
//! is derived deterministically from the test name and case index, so a
//! failure message names the case and rerunning reproduces it exactly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` running `PROPTEST_CASES` (default 64) generated cases; an
/// optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`
/// fixes the case count for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases_n(
                    stringify!($name),
                    ($cfg).cases,
                    |__proptest_rng| {
                        $(let $arg =
                            $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                        $body
                    },
                );
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Picks uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
