//! Offline shim for the `bytes` crate: an immutable, cheaply
//! cloneable byte buffer backed by `Arc<Vec<u8>>`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of bytes.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes(Arc::new(v.into_bytes()))
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_shares() {
        let b = Bytes::from(b"hello".to_vec());
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.as_ref(), b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b.to_vec(), b"hello".to_vec());
    }
}
