//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with multi-producer multi-consumer
//! semantics (std's mpsc receivers cannot be cloned, which the task
//! schedulers rely on). Capacity hints from [`channel::bounded`] are
//! accepted but not enforced; every queue is unbounded, which is
//! sufficient for the send-once/oneshot and work-queue patterns used
//! by the schedulers.

pub mod channel {
    //! MPMC channels: `unbounded`, `bounded`, `Sender`, `Receiver`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        #[cfg(feature = "trace")]
        trace_id: u64,
    }

    /// Sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            #[cfg(feature = "trace")]
            trace_id: tracepoint::fresh_id(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a channel with a capacity hint (not enforced).
    pub fn bounded<T>(_capacity: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers.
                let _guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            #[cfg(feature = "trace")]
            tracepoint::record(tracepoint::Op::ChanSend(self.shared.trace_id));
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    #[cfg(feature = "trace")]
                    tracepoint::record(tracepoint::Op::ChanRecv(self.shared.trace_id));
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.pop_front() {
                Some(value) => {
                    drop(queue);
                    #[cfg(feature = "trace")]
                    tracepoint::record(tracepoint::Op::ChanRecv(self.shared.trace_id));
                    Ok(value)
                }
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    #[cfg(feature = "trace")]
                    tracepoint::record(tracepoint::Op::ChanRecv(self.shared.trace_id));
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self
                    .shared
                    .ready
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn multiple_consumers_share_the_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = std::thread::spawn(move || rx.iter().count());
        let b = std::thread::spawn(move || rx2.iter().count());
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 64);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn channel_ops_emit_send_recv_events() {
        tracepoint::enable();
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        let events = tracepoint::drain();
        tracepoint::disable();
        let sends = events
            .iter()
            .filter(|e| matches!(e.op, tracepoint::Op::ChanSend(_)))
            .count();
        let recvs = events
            .iter()
            .filter(|e| matches!(e.op, tracepoint::Op::ChanRecv(_)))
            .count();
        assert_eq!(sends, 2);
        assert_eq!(recvs, 2);
    }

    #[test]
    fn blocked_receiver_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        let waiter = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(waiter.join().unwrap(), Err(RecvError));
    }
}
