//! Offline shim for the `serde` crate.
//!
//! simart uses serde derives as provenance markers — no serialization
//! format crate is wired up (the document database has its own JSON
//! codec). This shim provides the trait skeleton so hand-written impls
//! (`Uuid`) compile, and re-exports no-op derive macros.

use std::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization support (default methods error: no format backend).
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let _ = serializer;
        Err(ser::Error::custom(
            "serialization unsupported by the offline serde shim",
        ))
    }
}

/// A data-format serializer (string-only in this shim).
pub trait Serializer: Sized {
    /// Successful result type.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Serializes a string value.
    fn serialize_str(self, value: &str) -> Result<Self::Ok, Self::Error>;
}

/// Deserialization support (default methods error: no format backend).
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let _ = deserializer;
        Err(de::Error::custom(
            "deserialization unsupported by the offline serde shim",
        ))
    }
}

impl<'de> Deserialize<'de> for String {}

/// A data-format deserializer.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
}

/// Serialization-side error plumbing.
pub mod ser {
    use super::Display;

    /// Errors produced while serializing.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error plumbing.
pub mod de {
    use super::Display;

    /// Errors produced while deserializing.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}
