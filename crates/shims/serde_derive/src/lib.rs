//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as a marker
//! (no serialization format crate is present), so the derives expand to
//! nothing. Hand-written impls (e.g. `Uuid`) use the shim traits in the
//! `serde` shim crate directly.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
