//! Concurrency-event tracepoints for the simart race detector.
//!
//! Sync primitives (`crates/shims/parking_lot`, `crates/shims/crossbeam`)
//! and the task layer (`simart-tasks`) call [`record`] at every
//! synchronization-relevant operation: lock acquire/release, channel
//! send/recv, task submit/start/finish, broker enqueue/dequeue, and
//! shared-state reads/writes. The recorded [`Event`] stream is replayed
//! by `simart-analyze`'s vector-clock happens-before checker.
//!
//! The event *types* are always available (the checker needs them to
//! replay hand-built traces), but **recording only compiles in with the
//! `enabled` cargo feature**. Without it, [`record`] is an empty
//! `#[inline(always)]` function, no global state exists, and tracing
//! adds literally zero instructions to the instrumented crates. With
//! the feature on, recording is additionally gated at runtime by
//! [`enable`]/[`disable`] so instrumented binaries only pay for tracing
//! inside an explicitly started capture window.
//!
//! This crate deliberately depends on nothing (std only) — it sits
//! *below* the sync shims, so it must not use them.

use std::fmt;

/// A process-unique id for a traced object (lock, channel, task, or
/// shared document). Allocated by [`fresh_id`]; `0` is never returned,
/// so instrumented primitives can use `0` as "not yet assigned".
pub type ObjectId = u64;

/// A small dense thread identifier assigned on first use per thread.
pub type ThreadId = u32;

/// What happened at a tracepoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A mutex/rwlock-writer lock was acquired.
    LockAcquire(ObjectId),
    /// A mutex/rwlock-writer lock was released.
    LockRelease(ObjectId),
    /// A message was enqueued on a channel.
    ChanSend(ObjectId),
    /// A message was dequeued from a channel.
    ChanRecv(ObjectId),
    /// A task was submitted to a scheduler.
    TaskSubmit(ObjectId),
    /// A worker started executing a task (first or retry attempt).
    TaskStart(ObjectId),
    /// A task finished (terminal report produced).
    TaskFinish(ObjectId),
    /// A failed task was re-queued for a retry attempt.
    TaskRequeue(ObjectId),
    /// A job entered a broker/pool work queue.
    Enqueue(ObjectId),
    /// A job left a broker/pool work queue.
    Dequeue(ObjectId),
    /// A worker took the lease on a dequeued task (publishes the
    /// worker's state to the supervisor, like a channel send).
    LeaseGrant(ObjectId),
    /// A supervisor revoked a task lease for redelivery or
    /// dead-lettering (observes the worker's state, like a channel
    /// recv).
    LeaseRevoke(ObjectId),
    /// The remote coordinator dispatched a task to a worker process
    /// (publishes the dispatch over the wire, like a channel send).
    RemoteDispatch(ObjectId),
    /// The remote coordinator accepted a worker process's result for
    /// a dispatched task (observes it, like a channel recv).
    RemoteAck(ObjectId),
    /// A remote worker session reconnected over a fresh transport
    /// connection and the coordinator resumed it (observes everything
    /// the old connection published, then re-publishes for frames sent
    /// on the new connection — a join-then-send barrier).
    RemoteReconnect(ObjectId),
    /// A shared object (run record, task state) was read.
    Read(ObjectId),
    /// A shared object (run record, task state) was written.
    Write(ObjectId),
}

impl Op {
    /// The object the operation touches.
    pub fn object(self) -> ObjectId {
        match self {
            Op::LockAcquire(o)
            | Op::LockRelease(o)
            | Op::ChanSend(o)
            | Op::ChanRecv(o)
            | Op::TaskSubmit(o)
            | Op::TaskStart(o)
            | Op::TaskFinish(o)
            | Op::TaskRequeue(o)
            | Op::Enqueue(o)
            | Op::Dequeue(o)
            | Op::LeaseGrant(o)
            | Op::LeaseRevoke(o)
            | Op::RemoteDispatch(o)
            | Op::RemoteAck(o)
            | Op::RemoteReconnect(o)
            | Op::Read(o)
            | Op::Write(o) => o,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::LockAcquire(o) => write!(f, "lock-acquire({o})"),
            Op::LockRelease(o) => write!(f, "lock-release({o})"),
            Op::ChanSend(o) => write!(f, "chan-send({o})"),
            Op::ChanRecv(o) => write!(f, "chan-recv({o})"),
            Op::TaskSubmit(o) => write!(f, "task-submit({o})"),
            Op::TaskStart(o) => write!(f, "task-start({o})"),
            Op::TaskFinish(o) => write!(f, "task-finish({o})"),
            Op::TaskRequeue(o) => write!(f, "task-requeue({o})"),
            Op::Enqueue(o) => write!(f, "enqueue({o})"),
            Op::Dequeue(o) => write!(f, "dequeue({o})"),
            Op::LeaseGrant(o) => write!(f, "lease-grant({o})"),
            Op::LeaseRevoke(o) => write!(f, "lease-revoke({o})"),
            Op::RemoteDispatch(o) => write!(f, "remote-dispatch({o})"),
            Op::RemoteAck(o) => write!(f, "remote-ack({o})"),
            Op::RemoteReconnect(o) => write!(f, "remote-reconnect({o})"),
            Op::Read(o) => write!(f, "read({o})"),
            Op::Write(o) => write!(f, "write({o})"),
        }
    }
}

/// One recorded tracepoint hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (total order of recording).
    pub seq: u64,
    /// Thread that hit the tracepoint.
    pub thread: ThreadId,
    /// What happened.
    pub op: Op,
}

#[cfg(feature = "enabled")]
mod recording {
    use super::{Event, ObjectId, Op, ThreadId};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static NEXT_OBJECT: AtomicU64 = AtomicU64::new(1);
    static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

    // std Mutex on purpose: this crate sits below the parking_lot shim
    // and must not trace its own bookkeeping.
    fn events() -> &'static Mutex<Vec<Event>> {
        static EVENTS: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
        EVENTS.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn labels() -> &'static Mutex<HashMap<ObjectId, String>> {
        static LABELS: OnceLock<Mutex<HashMap<ObjectId, String>>> = OnceLock::new();
        LABELS.get_or_init(|| Mutex::new(HashMap::new()))
    }

    thread_local! {
        static THREAD_ID: ThreadId = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }

    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub fn enable() {
        ENABLED.store(true, Ordering::SeqCst);
    }

    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
    }

    pub fn fresh_id() -> ObjectId {
        NEXT_OBJECT.fetch_add(1, Ordering::Relaxed)
    }

    pub fn current_thread() -> ThreadId {
        THREAD_ID.with(|id| *id)
    }

    pub fn record(op: Op) {
        if !is_enabled() {
            return;
        }
        let event = Event {
            seq: SEQ.fetch_add(1, Ordering::SeqCst),
            thread: current_thread(),
            op,
        };
        events()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }

    pub fn label(id: ObjectId, name: &str) {
        if !is_enabled() {
            return;
        }
        labels()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, name.to_owned());
    }

    pub fn lookup_label(id: ObjectId) -> Option<String> {
        labels()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    pub fn drain() -> Vec<Event> {
        let mut events = events().lock().unwrap_or_else(|e| e.into_inner());
        let mut drained = std::mem::take(&mut *events);
        drained.sort_by_key(|e| e.seq);
        drained
    }
}

#[cfg(feature = "enabled")]
pub use recording::{
    current_thread, disable, drain, enable, fresh_id, is_enabled, label, lookup_label, record,
};

/// No-op stand-ins compiled when the `enabled` feature is off: the
/// whole tracing surface folds to nothing.
#[cfg(not(feature = "enabled"))]
mod disabled {
    use super::{Event, ObjectId, Op, ThreadId};

    /// Recording disabled at compile time: always `false`.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn enable() {}

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn disable() {}

    /// Ids still allocate so instrumented code is feature-agnostic, but
    /// from a plain counter with no trace state behind it.
    #[inline(always)]
    pub fn fresh_id() -> ObjectId {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    /// Always thread 0 without the `enabled` feature.
    #[inline(always)]
    pub fn current_thread() -> ThreadId {
        0
    }

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn record(_op: Op) {}

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn label(_id: ObjectId, _name: &str) {}

    /// Always `None` without the `enabled` feature.
    #[inline(always)]
    pub fn lookup_label(_id: ObjectId) -> Option<String> {
        None
    }

    /// Always empty without the `enabled` feature.
    #[inline(always)]
    pub fn drain() -> Vec<Event> {
        Vec::new()
    }
}

#[cfg(not(feature = "enabled"))]
pub use disabled::{
    current_thread, disable, drain, enable, fresh_id, is_enabled, label, lookup_label, record,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique_and_nonzero() {
        let a = fresh_id();
        let b = fresh_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_records_nothing() {
        enable();
        record(Op::Write(7));
        record(Op::LockAcquire(1));
        assert!(
            drain().is_empty(),
            "no trace state exists without the feature"
        );
        assert!(!is_enabled());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn enabled_build_records_inside_capture_window() {
        // Runtime-gated: nothing recorded before enable().
        disable();
        let _ = drain();
        record(Op::Write(7));
        assert!(drain().is_empty());
        enable();
        record(Op::Write(7));
        record(Op::Read(7));
        label(7, "doc");
        let events = drain();
        disable();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].op, Op::Write(7));
        assert_eq!(events[1].op, Op::Read(7));
        assert!(events[0].seq < events[1].seq);
        assert_eq!(lookup_label(7).as_deref(), Some("doc"));
    }

    #[test]
    fn ops_expose_their_object() {
        assert_eq!(Op::ChanSend(3).object(), 3);
        assert_eq!(Op::TaskStart(9).object(), 9);
        assert_eq!(Op::Write(1).to_string(), "write(1)");
    }
}
