//! Dependency graph over artifact ids.
//!
//! Artifacts reference the artifacts they were built from; those edges
//! form a DAG that the registry uses to compute reproduction closures
//! ("everything needed to rebuild this disk image") and impact sets
//! ("everything derived from this kernel").

use crate::error::ArtifactError;
use crate::uuid::Uuid;
use std::collections::{HashMap, HashSet, VecDeque};

/// A structural problem found by [`DependencyGraph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphIssue {
    /// A dependency cycle; `members` lists every node on it, sorted.
    Cycle {
        /// The nodes forming the cycle.
        members: Vec<Uuid>,
    },
    /// A node referenced by an edge but never declared with
    /// [`DependencyGraph::add_node`] / [`DependencyGraph::add_edge`] —
    /// for graphs loaded from external data, a dangling reference.
    Orphan {
        /// The undeclared node.
        node: Uuid,
        /// Declared nodes whose edges reference it, sorted.
        referenced_by: Vec<Uuid>,
    },
}

/// A directed acyclic graph keyed by [`Uuid`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencyGraph {
    edges_out: HashMap<Uuid, Vec<Uuid>>,
    edges_in: HashMap<Uuid, Vec<Uuid>>,
    /// Nodes explicitly declared (as opposed to merely referenced by an
    /// unchecked edge). [`DependencyGraph::validate`] reports the
    /// difference as orphans.
    declared: HashSet<Uuid>,
}

impl DependencyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node (idempotent).
    pub fn add_node(&mut self, node: Uuid) {
        self.declared.insert(node);
        self.edges_out.entry(node).or_default();
        self.edges_in.entry(node).or_default();
    }

    /// Adds a `from -> to` edge ("`to` was built from `from`").
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::DependencyCycle`] when the edge would
    /// close a cycle; the graph is left unchanged in that case.
    pub fn add_edge(&mut self, from: Uuid, to: Uuid) -> Result<(), ArtifactError> {
        if from == to || self.reachable(to, from) {
            return Err(ArtifactError::DependencyCycle { node: to });
        }
        self.add_node(from);
        self.add_node(to);
        self.edges_out.entry(from).or_default().push(to);
        self.edges_in.entry(to).or_default().push(from);
        Ok(())
    }

    /// Records a `from -> to` edge without the cycle check and without
    /// declaring the endpoints.
    ///
    /// For mirroring externally loaded data (e.g. artifact documents
    /// read back from a database) that may be inconsistent: cycles and
    /// references to never-declared nodes are accepted here and
    /// reported by [`DependencyGraph::validate`] instead of refused.
    pub fn add_edge_unchecked(&mut self, from: Uuid, to: Uuid) {
        self.edges_in.entry(from).or_default();
        self.edges_out.entry(to).or_default();
        self.edges_out.entry(from).or_default().push(to);
        self.edges_in.entry(to).or_default().push(from);
    }

    /// Checks the whole graph, reporting *all* structural issues: every
    /// dependency cycle (as a sorted member list per strongly connected
    /// component, including self-loops) and every orphan node (present
    /// in an edge but never declared). Issues are returned in a
    /// deterministic order: cycles first, then orphans, each sorted.
    pub fn validate(&self) -> Vec<GraphIssue> {
        let mut issues = Vec::new();
        let mut cycles: Vec<Vec<Uuid>> = self
            .strongly_connected_components()
            .into_iter()
            .filter(|scc| {
                scc.len() > 1 || scc.first().is_some_and(|n| self.successors(*n).contains(n))
            })
            .map(|mut scc| {
                scc.sort_by_key(Uuid::to_string);
                scc
            })
            .collect();
        cycles.sort_by_key(|scc| scc.first().map(Uuid::to_string));
        issues.extend(
            cycles
                .into_iter()
                .map(|members| GraphIssue::Cycle { members }),
        );

        let mut orphans: Vec<Uuid> = self
            .edges_out
            .keys()
            .filter(|node| !self.declared.contains(node))
            .copied()
            .collect();
        orphans.sort_by_key(Uuid::to_string);
        for node in orphans {
            let mut referenced_by: Vec<Uuid> = self
                .successors(node)
                .iter()
                .chain(self.predecessors(node))
                .copied()
                .collect();
            referenced_by.sort_by_key(Uuid::to_string);
            referenced_by.dedup();
            issues.push(GraphIssue::Orphan {
                node,
                referenced_by,
            });
        }
        issues
    }

    /// Strongly connected components (iterative Tarjan), in an
    /// arbitrary order.
    fn strongly_connected_components(&self) -> Vec<Vec<Uuid>> {
        struct State {
            index: HashMap<Uuid, usize>,
            lowlink: HashMap<Uuid, usize>,
            on_stack: HashSet<Uuid>,
            stack: Vec<Uuid>,
            next_index: usize,
            components: Vec<Vec<Uuid>>,
        }
        let mut st = State {
            index: HashMap::new(),
            lowlink: HashMap::new(),
            on_stack: HashSet::new(),
            stack: Vec::new(),
            next_index: 0,
            components: Vec::new(),
        };
        let mut nodes: Vec<Uuid> = self.edges_out.keys().copied().collect();
        nodes.sort_by_key(Uuid::to_string);
        for root in nodes {
            if st.index.contains_key(&root) {
                continue;
            }
            // Explicit DFS frames: (node, next successor position).
            let mut frames: Vec<(Uuid, usize)> = vec![(root, 0)];
            while let Some(&mut (node, ref mut pos)) = frames.last_mut() {
                if *pos == 0 {
                    st.index.insert(node, st.next_index);
                    st.lowlink.insert(node, st.next_index);
                    st.next_index += 1;
                    st.stack.push(node);
                    st.on_stack.insert(node);
                }
                if let Some(&next) = self.successors(node).get(*pos) {
                    *pos += 1;
                    if !st.index.contains_key(&next) {
                        frames.push((next, 0));
                    } else if st.on_stack.contains(&next) {
                        let low = st.lowlink[&node].min(st.index[&next]);
                        st.lowlink.insert(node, low);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        let low = st.lowlink[&parent].min(st.lowlink[&node]);
                        st.lowlink.insert(parent, low);
                    }
                    if st.lowlink[&node] == st.index[&node] {
                        let mut component = Vec::new();
                        while let Some(member) = st.stack.pop() {
                            st.on_stack.remove(&member);
                            component.push(member);
                            if member == node {
                                break;
                            }
                        }
                        st.components.push(component);
                    }
                }
            }
        }
        st.components
    }

    /// Whether `to` is reachable from `from` by following edges.
    pub fn reachable(&self, from: Uuid, to: Uuid) -> bool {
        if from == to {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(node) = queue.pop_front() {
            for next in self.successors(node) {
                if *next == to {
                    return true;
                }
                if seen.insert(*next) {
                    queue.push_back(*next);
                }
            }
        }
        false
    }

    /// Direct successors (dependents) of `node`.
    pub fn successors(&self, node: Uuid) -> &[Uuid] {
        self.edges_out.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Direct predecessors (inputs) of `node`.
    pub fn predecessors(&self, node: Uuid) -> &[Uuid] {
        self.edges_in.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.edges_out.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.edges_out.is_empty()
    }

    /// All ancestors of `node` (its transitive inputs) plus `node`
    /// itself, in topological order: every artifact appears after all of
    /// its inputs. Deterministic for a fixed insertion order.
    pub fn ancestors_topological(&self, node: Uuid) -> Vec<Uuid> {
        // Gather the ancestor set.
        let mut in_set = HashSet::from([node]);
        let mut queue = VecDeque::from([node]);
        while let Some(current) = queue.pop_front() {
            for pred in self.predecessors(current) {
                if in_set.insert(*pred) {
                    queue.push_back(*pred);
                }
            }
        }
        // Kahn's algorithm restricted to the ancestor set, preserving
        // first-seen order for determinism.
        let mut indegree: HashMap<Uuid, usize> = HashMap::new();
        let mut order_hint: Vec<Uuid> = Vec::new();
        let mut seen_hint: HashSet<Uuid> = HashSet::new();
        let mut stack = vec![node];
        while let Some(current) = stack.pop() {
            if !seen_hint.insert(current) {
                continue;
            }
            order_hint.push(current);
            indegree.insert(
                current,
                self.predecessors(current)
                    .iter()
                    .filter(|p| in_set.contains(p))
                    .count(),
            );
            for pred in self.predecessors(current) {
                stack.push(*pred);
            }
        }
        order_hint.reverse(); // roots (no inputs) first, roughly

        let mut ready: VecDeque<Uuid> = order_hint
            .iter()
            .copied()
            .filter(|n| indegree[n] == 0)
            .collect();
        let mut result = Vec::with_capacity(in_set.len());
        let mut emitted = HashSet::new();
        while let Some(current) = ready.pop_front() {
            if !emitted.insert(current) {
                continue;
            }
            result.push(current);
            for succ in self.successors(current) {
                if let Some(d) = indegree.get_mut(succ) {
                    *d -= 1;
                    if *d == 0 {
                        ready.push_back(*succ);
                    }
                }
            }
        }
        result
    }

    /// Full topological order of the whole graph.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::DependencyCycle`] if the graph contains a
    /// cycle (cannot happen through [`DependencyGraph::add_edge`], which
    /// rejects them, but this method also serves externally loaded graphs).
    pub fn topological_order(&self) -> Result<Vec<Uuid>, ArtifactError> {
        let mut indegree: HashMap<Uuid, usize> = self
            .edges_in
            .iter()
            .map(|(n, preds)| (*n, preds.len()))
            .collect();
        let mut ready: VecDeque<Uuid> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut result = Vec::with_capacity(indegree.len());
        while let Some(node) = ready.pop_front() {
            result.push(node);
            for succ in self.successors(node) {
                if let Some(d) = indegree.get_mut(succ) {
                    *d = d.saturating_sub(1);
                    if *d == 0 {
                        ready.push_back(*succ);
                    }
                }
            }
        }
        if result.len() != self.len() {
            let node = indegree
                .iter()
                .find(|(n, _)| !result.contains(n))
                .map(|(n, _)| *n)
                .unwrap_or(Uuid::NIL);
            return Err(ArtifactError::DependencyCycle { node });
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> Uuid {
        Uuid::new_v3("dag-test", &n.to_string())
    }

    #[test]
    fn rejects_self_edge_and_cycles() {
        let mut g = DependencyGraph::new();
        assert!(g.add_edge(id(1), id(1)).is_err());
        g.add_edge(id(1), id(2)).unwrap();
        g.add_edge(id(2), id(3)).unwrap();
        let err = g.add_edge(id(3), id(1)).unwrap_err();
        assert!(matches!(err, ArtifactError::DependencyCycle { .. }));
        // Graph unchanged by the failed insertion.
        assert_eq!(g.successors(id(3)), &[] as &[Uuid]);
    }

    #[test]
    fn reachability() {
        let mut g = DependencyGraph::new();
        g.add_edge(id(1), id(2)).unwrap();
        g.add_edge(id(2), id(3)).unwrap();
        g.add_edge(id(4), id(3)).unwrap();
        assert!(g.reachable(id(1), id(3)));
        assert!(!g.reachable(id(3), id(1)));
        assert!(!g.reachable(id(1), id(4)));
        assert!(g.reachable(id(1), id(1)));
    }

    #[test]
    fn ancestors_topological_orders_inputs_first() {
        // diamond: 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4
        let mut g = DependencyGraph::new();
        g.add_edge(id(1), id(2)).unwrap();
        g.add_edge(id(1), id(3)).unwrap();
        g.add_edge(id(2), id(4)).unwrap();
        g.add_edge(id(3), id(4)).unwrap();
        let order = g.ancestors_topological(id(4));
        assert_eq!(order.len(), 4);
        let pos = |n: Uuid| order.iter().position(|x| *x == n).unwrap();
        assert!(pos(id(1)) < pos(id(2)));
        assert!(pos(id(1)) < pos(id(3)));
        assert!(pos(id(2)) < pos(id(4)));
        assert!(pos(id(3)) < pos(id(4)));
        assert_eq!(order.last(), Some(&id(4)));
    }

    #[test]
    fn ancestors_excludes_unrelated_nodes() {
        let mut g = DependencyGraph::new();
        g.add_edge(id(1), id(2)).unwrap();
        g.add_edge(id(10), id(11)).unwrap();
        let order = g.ancestors_topological(id(2));
        assert_eq!(order.len(), 2);
        assert!(!order.contains(&id(10)));
    }

    #[test]
    fn full_topological_order_covers_all_nodes() {
        let mut g = DependencyGraph::new();
        for i in 0..10u64 {
            g.add_edge(id(i), id(i + 1)).unwrap();
        }
        let order = g.topological_order().unwrap();
        assert_eq!(order.len(), 11);
        for i in 0..10u64 {
            let pos = |n: Uuid| order.iter().position(|x| *x == n).unwrap();
            assert!(pos(id(i)) < pos(id(i + 1)));
        }
    }

    #[test]
    fn isolated_node_appears_in_orders() {
        let mut g = DependencyGraph::new();
        g.add_node(id(7));
        assert_eq!(g.topological_order().unwrap(), vec![id(7)]);
        assert_eq!(g.ancestors_topological(id(7)), vec![id(7)]);
    }

    #[test]
    fn validate_accepts_clean_graphs() {
        let mut g = DependencyGraph::new();
        g.add_edge(id(1), id(2)).unwrap();
        g.add_edge(id(2), id(3)).unwrap();
        g.add_node(id(9));
        assert!(g.validate().is_empty());
    }

    #[test]
    fn validate_reports_every_cycle() {
        let mut g = DependencyGraph::new();
        // Two disjoint cycles plus a self-loop, all via unchecked edges.
        for (a, b) in [(1, 2), (2, 1), (3, 4), (4, 5), (5, 3), (6, 6)] {
            g.add_node(id(a));
            g.add_node(id(b));
            g.add_edge_unchecked(id(a), id(b));
        }
        let cycles: Vec<_> = g
            .validate()
            .into_iter()
            .filter_map(|issue| match issue {
                GraphIssue::Cycle { members } => Some(members),
                GraphIssue::Orphan { .. } => None,
            })
            .collect();
        assert_eq!(cycles.len(), 3);
        let mut sizes: Vec<usize> = cycles.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert!(cycles.iter().any(|c| c.contains(&id(6)) && c.len() == 1));
        // Cycles don't break topological_order into a panic either.
        assert!(g.topological_order().is_err());
    }

    #[test]
    fn validate_reports_orphans_with_referrers() {
        let mut g = DependencyGraph::new();
        g.add_node(id(1));
        g.add_edge_unchecked(id(1), id(99)); // 99 never declared
        let issues = g.validate();
        assert_eq!(
            issues,
            vec![GraphIssue::Orphan {
                node: id(99),
                referenced_by: vec![id(1)]
            }]
        );
    }

    #[test]
    fn rejected_edge_leaves_graph_identical() {
        let mut g = DependencyGraph::new();
        g.add_edge(id(1), id(2)).unwrap();
        g.add_edge(id(2), id(3)).unwrap();
        let before = g.clone();
        assert!(g.add_edge(id(3), id(1)).is_err());
        assert_eq!(g, before);
    }
}
