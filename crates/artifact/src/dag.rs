//! Dependency graph over artifact ids.
//!
//! Artifacts reference the artifacts they were built from; those edges
//! form a DAG that the registry uses to compute reproduction closures
//! ("everything needed to rebuild this disk image") and impact sets
//! ("everything derived from this kernel").

use crate::error::ArtifactError;
use crate::uuid::Uuid;
use std::collections::{HashMap, HashSet, VecDeque};

/// A directed acyclic graph keyed by [`Uuid`].
#[derive(Debug, Clone, Default)]
pub struct DependencyGraph {
    edges_out: HashMap<Uuid, Vec<Uuid>>,
    edges_in: HashMap<Uuid, Vec<Uuid>>,
}

impl DependencyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node (idempotent).
    pub fn add_node(&mut self, node: Uuid) {
        self.edges_out.entry(node).or_default();
        self.edges_in.entry(node).or_default();
    }

    /// Adds a `from -> to` edge ("`to` was built from `from`").
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::DependencyCycle`] when the edge would
    /// close a cycle; the graph is left unchanged in that case.
    pub fn add_edge(&mut self, from: Uuid, to: Uuid) -> Result<(), ArtifactError> {
        if from == to || self.reachable(to, from) {
            return Err(ArtifactError::DependencyCycle { node: to });
        }
        self.add_node(from);
        self.add_node(to);
        self.edges_out.get_mut(&from).expect("node just added").push(to);
        self.edges_in.get_mut(&to).expect("node just added").push(from);
        Ok(())
    }

    /// Whether `to` is reachable from `from` by following edges.
    pub fn reachable(&self, from: Uuid, to: Uuid) -> bool {
        if from == to {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(node) = queue.pop_front() {
            for next in self.successors(node) {
                if *next == to {
                    return true;
                }
                if seen.insert(*next) {
                    queue.push_back(*next);
                }
            }
        }
        false
    }

    /// Direct successors (dependents) of `node`.
    pub fn successors(&self, node: Uuid) -> &[Uuid] {
        self.edges_out.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Direct predecessors (inputs) of `node`.
    pub fn predecessors(&self, node: Uuid) -> &[Uuid] {
        self.edges_in.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.edges_out.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.edges_out.is_empty()
    }

    /// All ancestors of `node` (its transitive inputs) plus `node`
    /// itself, in topological order: every artifact appears after all of
    /// its inputs. Deterministic for a fixed insertion order.
    pub fn ancestors_topological(&self, node: Uuid) -> Vec<Uuid> {
        // Gather the ancestor set.
        let mut in_set = HashSet::from([node]);
        let mut queue = VecDeque::from([node]);
        while let Some(current) = queue.pop_front() {
            for pred in self.predecessors(current) {
                if in_set.insert(*pred) {
                    queue.push_back(*pred);
                }
            }
        }
        // Kahn's algorithm restricted to the ancestor set, preserving
        // first-seen order for determinism.
        let mut indegree: HashMap<Uuid, usize> = HashMap::new();
        let mut order_hint: Vec<Uuid> = Vec::new();
        let mut seen_hint: HashSet<Uuid> = HashSet::new();
        let mut stack = vec![node];
        while let Some(current) = stack.pop() {
            if !seen_hint.insert(current) {
                continue;
            }
            order_hint.push(current);
            indegree.insert(
                current,
                self.predecessors(current).iter().filter(|p| in_set.contains(p)).count(),
            );
            for pred in self.predecessors(current) {
                stack.push(*pred);
            }
        }
        order_hint.reverse(); // roots (no inputs) first, roughly

        let mut ready: VecDeque<Uuid> =
            order_hint.iter().copied().filter(|n| indegree[n] == 0).collect();
        let mut result = Vec::with_capacity(in_set.len());
        let mut emitted = HashSet::new();
        while let Some(current) = ready.pop_front() {
            if !emitted.insert(current) {
                continue;
            }
            result.push(current);
            for succ in self.successors(current) {
                if let Some(d) = indegree.get_mut(succ) {
                    *d -= 1;
                    if *d == 0 {
                        ready.push_back(*succ);
                    }
                }
            }
        }
        result
    }

    /// Full topological order of the whole graph.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::DependencyCycle`] if the graph contains a
    /// cycle (cannot happen through [`DependencyGraph::add_edge`], which
    /// rejects them, but this method also serves externally loaded graphs).
    pub fn topological_order(&self) -> Result<Vec<Uuid>, ArtifactError> {
        let mut indegree: HashMap<Uuid, usize> =
            self.edges_in.iter().map(|(n, preds)| (*n, preds.len())).collect();
        let mut ready: VecDeque<Uuid> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut result = Vec::with_capacity(indegree.len());
        while let Some(node) = ready.pop_front() {
            result.push(node);
            for succ in self.successors(node) {
                let d = indegree.get_mut(succ).expect("successor is a node");
                *d -= 1;
                if *d == 0 {
                    ready.push_back(*succ);
                }
            }
        }
        if result.len() != self.len() {
            let node = indegree
                .iter()
                .find(|(n, _)| !result.contains(n))
                .map(|(n, _)| *n)
                .unwrap_or(Uuid::NIL);
            return Err(ArtifactError::DependencyCycle { node });
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> Uuid {
        Uuid::new_v3("dag-test", &n.to_string())
    }

    #[test]
    fn rejects_self_edge_and_cycles() {
        let mut g = DependencyGraph::new();
        assert!(g.add_edge(id(1), id(1)).is_err());
        g.add_edge(id(1), id(2)).unwrap();
        g.add_edge(id(2), id(3)).unwrap();
        let err = g.add_edge(id(3), id(1)).unwrap_err();
        assert!(matches!(err, ArtifactError::DependencyCycle { .. }));
        // Graph unchanged by the failed insertion.
        assert_eq!(g.successors(id(3)), &[] as &[Uuid]);
    }

    #[test]
    fn reachability() {
        let mut g = DependencyGraph::new();
        g.add_edge(id(1), id(2)).unwrap();
        g.add_edge(id(2), id(3)).unwrap();
        g.add_edge(id(4), id(3)).unwrap();
        assert!(g.reachable(id(1), id(3)));
        assert!(!g.reachable(id(3), id(1)));
        assert!(!g.reachable(id(1), id(4)));
        assert!(g.reachable(id(1), id(1)));
    }

    #[test]
    fn ancestors_topological_orders_inputs_first() {
        // diamond: 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4
        let mut g = DependencyGraph::new();
        g.add_edge(id(1), id(2)).unwrap();
        g.add_edge(id(1), id(3)).unwrap();
        g.add_edge(id(2), id(4)).unwrap();
        g.add_edge(id(3), id(4)).unwrap();
        let order = g.ancestors_topological(id(4));
        assert_eq!(order.len(), 4);
        let pos = |n: Uuid| order.iter().position(|x| *x == n).unwrap();
        assert!(pos(id(1)) < pos(id(2)));
        assert!(pos(id(1)) < pos(id(3)));
        assert!(pos(id(2)) < pos(id(4)));
        assert!(pos(id(3)) < pos(id(4)));
        assert_eq!(order.last(), Some(&id(4)));
    }

    #[test]
    fn ancestors_excludes_unrelated_nodes() {
        let mut g = DependencyGraph::new();
        g.add_edge(id(1), id(2)).unwrap();
        g.add_edge(id(10), id(11)).unwrap();
        let order = g.ancestors_topological(id(2));
        assert_eq!(order.len(), 2);
        assert!(!order.contains(&id(10)));
    }

    #[test]
    fn full_topological_order_covers_all_nodes() {
        let mut g = DependencyGraph::new();
        for i in 0..10u64 {
            g.add_edge(id(i), id(i + 1)).unwrap();
        }
        let order = g.topological_order().unwrap();
        assert_eq!(order.len(), 11);
        for i in 0..10u64 {
            let pos = |n: Uuid| order.iter().position(|x| *x == n).unwrap();
            assert!(pos(id(i)) < pos(id(i + 1)));
        }
    }

    #[test]
    fn isolated_node_appears_in_orders() {
        let mut g = DependencyGraph::new();
        g.add_node(id(7));
        assert_eq!(g.topological_order().unwrap(), vec![id(7)]);
        assert_eq!(g.ancestors_topological(id(7)), vec![id(7)]);
    }
}
