//! In-memory artifact registry with hash-based deduplication.

use crate::artifact::{Artifact, ArtifactBuilder};
use crate::dag::DependencyGraph;
use crate::error::ArtifactError;
use crate::uuid::Uuid;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Registry holding every artifact of an experiment session.
///
/// Enforces the paper's uniqueness rules:
///
/// * an artifact is identified by its content hash — registering the same
///   content with identical metadata returns the existing record instead
///   of creating a duplicate;
/// * registering the same content with *different* metadata is an error
///   (duplicate artifacts are not permitted in the database);
/// * if the content at a path changes (different hash), a brand-new
///   artifact with a fresh UUID is created even when every other
///   attribute matches — the hash is the "safety net" of the paper.
#[derive(Debug)]
pub struct ArtifactRegistry {
    by_id: HashMap<Uuid, Arc<Artifact>>,
    by_hash: HashMap<String, Uuid>,
    by_name: HashMap<String, Vec<Uuid>>,
    graph: DependencyGraph,
    rng: SmallRng,
    dedup_hits: usize,
}

/// Aggregate counters describing a registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Total registered artifacts.
    pub artifacts: usize,
    /// Registration calls deduplicated against an existing record.
    pub deduplicated: usize,
    /// Distinct artifact names.
    pub names: usize,
}

impl Default for ArtifactRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ArtifactRegistry {
    /// Creates an empty registry with a fixed identity seed.
    pub fn new() -> Self {
        Self::with_seed(0x5eed_a27e_fac7)
    }

    /// Creates an empty registry whose UUID stream derives from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        ArtifactRegistry {
            by_id: HashMap::new(),
            by_hash: HashMap::new(),
            by_name: HashMap::new(),
            graph: DependencyGraph::new(),
            rng: SmallRng::seed_from_u64(seed),
            dedup_hits: 0,
        }
    }

    /// Registers an artifact, or returns the existing record when the
    /// identical registration was already made.
    ///
    /// # Errors
    ///
    /// * [`ArtifactError::MissingField`] — required metadata absent.
    /// * [`ArtifactError::UnknownInput`] — an input id is unregistered.
    /// * [`ArtifactError::ConflictingDuplicate`] — same content hash
    ///   registered before with different metadata.
    pub fn register(&mut self, builder: ArtifactBuilder) -> Result<Arc<Artifact>, ArtifactError> {
        builder.validate()?;
        for input in &builder.inputs {
            if !self.by_id.contains_key(input) {
                return Err(ArtifactError::UnknownInput {
                    input: *input,
                    artifact: builder.name.clone(),
                });
            }
        }
        let content = builder.content.clone().expect("validated above");
        let hash = content.fingerprint().to_hex();

        if let Some(existing_id) = self.by_hash.get(&hash) {
            let existing = &self.by_id[existing_id];
            if let Some(conflict) = conflict_between(existing, &builder) {
                return Err(ArtifactError::ConflictingDuplicate {
                    existing: *existing_id,
                    conflict,
                });
            }
            self.dedup_hits += 1;
            return Ok(Arc::clone(existing));
        }

        let id = Uuid::new_v4(&mut self.rng);
        let git = content.git_info().cloned();
        let artifact = Arc::new(Artifact::from_parts(id, builder, hash.clone(), git));
        self.graph.add_node(id);
        for input in artifact.inputs() {
            // Inputs pre-exist, so edges always point backwards in
            // registration order and can never form a cycle; the graph
            // still checks as a defensive invariant.
            self.graph
                .add_edge(*input, id)
                .expect("edges to pre-existing nodes cannot form a cycle");
        }
        self.by_hash.insert(hash, id);
        self.by_name
            .entry(artifact.name().to_owned())
            .or_default()
            .push(id);
        self.by_id.insert(id, Arc::clone(&artifact));
        Ok(artifact)
    }

    /// Looks up an artifact by id.
    pub fn get(&self, id: Uuid) -> Option<Arc<Artifact>> {
        self.by_id.get(&id).cloned()
    }

    /// Looks up an artifact by id, erroring when absent.
    pub fn try_get(&self, id: Uuid) -> Result<Arc<Artifact>, ArtifactError> {
        self.get(id).ok_or_else(|| ArtifactError::NotFound {
            query: id.to_string(),
        })
    }

    /// All registrations (historic versions included) under `name`, in
    /// registration order.
    pub fn versions_of(&self, name: &str) -> Vec<Arc<Artifact>> {
        self.by_name
            .get(name)
            .map(|ids| ids.iter().map(|id| Arc::clone(&self.by_id[id])).collect())
            .unwrap_or_default()
    }

    /// The most recent registration under `name`.
    pub fn latest(&self, name: &str) -> Option<Arc<Artifact>> {
        self.by_name
            .get(name)
            .and_then(|ids| ids.last())
            .map(|id| Arc::clone(&self.by_id[id]))
    }

    /// Finds an artifact by its content hash.
    pub fn by_hash(&self, hash: &str) -> Option<Arc<Artifact>> {
        self.by_hash.get(hash).map(|id| Arc::clone(&self.by_id[id]))
    }

    /// Every artifact `id` transitively depends on, in topological order
    /// (dependencies before dependents). Used to reconstruct everything
    /// needed to reproduce a run.
    pub fn closure(&self, id: Uuid) -> Result<Vec<Arc<Artifact>>, ArtifactError> {
        self.try_get(id)?;
        Ok(self
            .graph
            .ancestors_topological(id)
            .into_iter()
            .map(|node| Arc::clone(&self.by_id[&node]))
            .collect())
    }

    /// Artifacts that (directly) used `id` as an input.
    pub fn dependents(&self, id: Uuid) -> Vec<Arc<Artifact>> {
        self.graph
            .successors(id)
            .iter()
            .map(|node| Arc::clone(&self.by_id[node]))
            .collect()
    }

    /// Iterates over all registered artifacts in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Artifact>> {
        self.by_id.values()
    }

    /// Number of registered artifacts.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Aggregate counters for reporting.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            artifacts: self.by_id.len(),
            deduplicated: self.dedup_hits,
            names: self.by_name.len(),
        }
    }
}

fn conflict_between(existing: &Artifact, incoming: &ArtifactBuilder) -> Option<String> {
    if existing.name() != incoming.name {
        return Some(format!("name {:?} vs {:?}", existing.name(), incoming.name));
    }
    if existing.kind() != &incoming.kind {
        return Some(format!("kind {} vs {}", existing.kind(), incoming.kind));
    }
    if existing.command() != incoming.command {
        return Some("creation command differs".to_owned());
    }
    if existing.path() != incoming.path {
        return Some(format!("path {:?} vs {:?}", existing.path(), incoming.path));
    }
    if existing.inputs() != incoming.inputs.as_slice() {
        return Some("input set differs".to_owned());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ArtifactKind, ContentSource};

    fn binary(name: &str, data: &[u8]) -> ArtifactBuilder {
        Artifact::builder(name, ArtifactKind::Binary)
            .command(format!("make {name}"))
            .path(format!("out/{name}"))
            .documentation("test artifact")
            .content(ContentSource::bytes(data.to_vec()))
    }

    #[test]
    fn identical_registration_dedupes() {
        let mut r = ArtifactRegistry::new();
        let a = r.register(binary("tool", b"bits")).unwrap();
        let b = r.register(binary("tool", b"bits")).unwrap();
        assert_eq!(a.id(), b.id());
        assert_eq!(r.len(), 1);
        assert_eq!(r.stats().deduplicated, 1);
    }

    #[test]
    fn changed_content_creates_new_artifact() {
        let mut r = ArtifactRegistry::new();
        let v1 = r.register(binary("tool", b"v1")).unwrap();
        let v2 = r.register(binary("tool", b"v2")).unwrap();
        assert_ne!(v1.id(), v2.id());
        assert_eq!(r.versions_of("tool").len(), 2);
        assert_eq!(r.latest("tool").unwrap().id(), v2.id());
    }

    #[test]
    fn conflicting_metadata_is_rejected() {
        let mut r = ArtifactRegistry::new();
        r.register(binary("tool", b"bits")).unwrap();
        let err = r.register(binary("other-tool", b"bits")).unwrap_err();
        assert!(matches!(err, ArtifactError::ConflictingDuplicate { .. }));
    }

    #[test]
    fn unknown_input_is_rejected() {
        let mut r = ArtifactRegistry::new();
        let ghost = Uuid::new_v3("test", "ghost");
        let err = r.register(binary("tool", b"x").input(ghost)).unwrap_err();
        assert!(matches!(err, ArtifactError::UnknownInput { .. }));
    }

    #[test]
    fn closure_returns_dependencies_in_topological_order() {
        let mut r = ArtifactRegistry::new();
        let repo = r
            .register(
                Artifact::builder("repo", ArtifactKind::GitRepo)
                    .documentation("src")
                    .content(ContentSource::git("https://x", "rev1")),
            )
            .unwrap();
        let bin = r.register(binary("bin", b"elf").input(repo.id())).unwrap();
        let disk = r.register(binary("disk", b"img").input(bin.id())).unwrap();
        let closure = r.closure(disk.id()).unwrap();
        let ids: Vec<_> = closure.iter().map(|a| a.id()).collect();
        assert_eq!(ids, vec![repo.id(), bin.id(), disk.id()]);
    }

    #[test]
    fn dependents_are_tracked() {
        let mut r = ArtifactRegistry::new();
        let repo = r
            .register(
                Artifact::builder("repo", ArtifactKind::GitRepo)
                    .documentation("src")
                    .content(ContentSource::git("https://x", "rev1")),
            )
            .unwrap();
        let bin = r.register(binary("bin", b"elf").input(repo.id())).unwrap();
        let dependents = r.dependents(repo.id());
        assert_eq!(dependents.len(), 1);
        assert_eq!(dependents[0].id(), bin.id());
    }

    #[test]
    fn lookup_by_hash_and_id() {
        let mut r = ArtifactRegistry::new();
        let a = r.register(binary("tool", b"bits")).unwrap();
        assert_eq!(r.by_hash(a.hash()).unwrap().id(), a.id());
        assert_eq!(r.get(a.id()).unwrap().name(), "tool");
        assert!(r.try_get(Uuid::NIL).is_err());
    }

    #[test]
    fn git_artifacts_record_provenance() {
        let mut r = ArtifactRegistry::new();
        let repo = r
            .register(
                Artifact::builder("repo", ArtifactKind::GitRepo)
                    .documentation("src")
                    .content(ContentSource::git("https://example.org/s.git", "deadbeef")),
            )
            .unwrap();
        let git = repo.git().unwrap();
        assert_eq!(git.url, "https://example.org/s.git");
        assert_eq!(git.revision, "deadbeef");
    }
}
