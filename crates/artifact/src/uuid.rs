//! UUID generation for artifact identity.
//!
//! The paper's framework assigns every artifact a UUID in addition to its
//! content hash: the hash identifies *content*, the UUID identifies the
//! *registration* (two artifacts may wrap the same bytes under different
//! roles). We implement random (version 4) and name-based (version 3,
//! MD5-derived) UUIDs in-repo — ~80 lines — instead of adding a dependency.

use crate::hash::Md5;
use std::fmt;
use std::str::FromStr;

/// A 128-bit universally unique identifier.
///
/// ```
/// use simart_artifact::Uuid;
///
/// let a = Uuid::new_v3("artifacts", "gem5-binary");
/// let b = Uuid::new_v3("artifacts", "gem5-binary");
/// assert_eq!(a, b); // name-based UUIDs are deterministic
/// assert_eq!(a.to_string().len(), 36);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uuid([u8; 16]);

impl Uuid {
    /// The all-zero nil UUID.
    pub const NIL: Uuid = Uuid([0u8; 16]);

    /// Creates a random (version 4) UUID from the provided RNG.
    ///
    /// Taking the RNG as an argument keeps identity generation
    /// deterministic when the caller seeds it — important for
    /// reproducible experiment transcripts.
    pub fn new_v4<R: rand::RngCore>(rng: &mut R) -> Uuid {
        let mut bytes = [0u8; 16];
        rng.fill_bytes(&mut bytes);
        Uuid(Self::set_version(bytes, 4))
    }

    /// Creates a deterministic, name-based (version 3) UUID from a
    /// namespace string and a name, via MD5.
    pub fn new_v3(namespace: &str, name: &str) -> Uuid {
        let mut h = Md5::new();
        h.update(namespace.as_bytes());
        h.update(&[0]);
        h.update(name.as_bytes());
        Uuid(Self::set_version(h.finalize().0, 3))
    }

    /// Builds a UUID from raw bytes, stamping no version bits.
    pub fn from_bytes(bytes: [u8; 16]) -> Uuid {
        Uuid(bytes)
    }

    /// The raw bytes of this UUID.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// The UUID version number encoded in the identifier (0 for raw UUIDs).
    pub fn version(&self) -> u8 {
        self.0[6] >> 4
    }

    /// Whether this is the nil UUID.
    pub fn is_nil(&self) -> bool {
        self.0 == [0u8; 16]
    }

    fn set_version(mut bytes: [u8; 16], version: u8) -> [u8; 16] {
        bytes[6] = (bytes[6] & 0x0f) | (version << 4);
        bytes[8] = (bytes[8] & 0x3f) | 0x80; // RFC 4122 variant
        bytes
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, byte) in self.0.iter().enumerate() {
            if matches!(i, 4 | 6 | 8 | 10) {
                f.write_str("-")?;
            }
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uuid({self})")
    }
}

impl serde::Serialize for Uuid {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> serde::Deserialize<'de> for Uuid {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

/// Error returned when parsing a malformed UUID string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseUuidError;

impl fmt::Display for ParseUuidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid UUID syntax")
    }
}

impl std::error::Error for ParseUuidError {}

impl FromStr for Uuid {
    type Err = ParseUuidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex: String = s.chars().filter(|c| *c != '-').collect();
        if hex.len() != 32 || s.len() != 36 {
            return Err(ParseUuidError);
        }
        let dash_positions: Vec<usize> = s
            .char_indices()
            .filter(|(_, c)| *c == '-')
            .map(|(i, _)| i)
            .collect();
        if dash_positions != [8, 13, 18, 23] {
            return Err(ParseUuidError);
        }
        let mut bytes = [0u8; 16];
        for (i, slot) in bytes.iter_mut().enumerate() {
            *slot = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).map_err(|_| ParseUuidError)?;
        }
        Ok(Uuid(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn v4_has_version_and_variant_bits() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let u = Uuid::new_v4(&mut rng);
            assert_eq!(u.version(), 4);
            assert_eq!(u.as_bytes()[8] & 0xc0, 0x80);
        }
    }

    #[test]
    fn v4_is_deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(Uuid::new_v4(&mut a), Uuid::new_v4(&mut b));
    }

    #[test]
    fn v3_distinguishes_namespace_and_name() {
        let a = Uuid::new_v3("ns1", "x");
        let b = Uuid::new_v3("ns2", "x");
        let c = Uuid::new_v3("ns1", "y");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.version(), 3);
    }

    #[test]
    fn display_parse_round_trip() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let u = Uuid::new_v4(&mut rng);
            let s = u.to_string();
            assert_eq!(s.parse::<Uuid>().unwrap(), u);
        }
    }

    #[test]
    fn rejects_malformed_strings() {
        assert!("".parse::<Uuid>().is_err());
        assert!("not-a-uuid".parse::<Uuid>().is_err());
        assert!("00000000000000000000000000000000".parse::<Uuid>().is_err());
        assert!("0000000-00000-0000-0000-000000000000"
            .parse::<Uuid>()
            .is_err());
        assert!("00000000-0000-0000-0000-000000000000"
            .parse::<Uuid>()
            .is_ok());
    }

    #[test]
    fn nil_is_nil() {
        assert!(Uuid::NIL.is_nil());
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!Uuid::new_v4(&mut rng).is_nil());
    }
}
