//! # simart-artifact
//!
//! Artifact registration, content hashing, and provenance tracking.
//!
//! This crate is the Rust analogue of the paper's `gem5art-artifact`
//! package: every object that participates in a simulation — simulator
//! binaries, kernels, disk images, run scripts, result archives — is
//! registered as an [`Artifact`] carrying enough metadata (creation
//! command, working directory, documentation, input artifacts) to
//! reproduce it later. Artifacts are deduplicated by content hash and
//! identified by UUID, and their `inputs` edges form a provenance DAG.
//!
//! ```
//! use simart_artifact::{Artifact, ArtifactKind, ArtifactRegistry, ContentSource};
//!
//! # fn main() -> Result<(), simart_artifact::ArtifactError> {
//! let mut registry = ArtifactRegistry::new();
//! let repo = registry.register(
//!     Artifact::builder("gem5", ArtifactKind::GitRepo)
//!         .command("git clone https://example.org/sim.git")
//!         .cwd("./")
//!         .path("sim/")
//!         .documentation("main simulator source repository")
//!         .content(ContentSource::git("https://example.org/sim.git", "440f0bc579fb8b10da7181"))
//! )?;
//! let binary = registry.register(
//!     Artifact::builder("gem5-binary", ArtifactKind::Binary)
//!         .command("scons build/X86/gem5.opt -j8")
//!         .cwd("sim/")
//!         .path("sim/build/X86/gem5.opt")
//!         .documentation("optimized X86 simulator binary")
//!         .content(ContentSource::bytes(b"\x7fELF-simulated-binary".to_vec()))
//!         .input(repo.id()),
//! )?;
//! assert_eq!(binary.inputs(), &[repo.id()]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod dag;
mod error;
pub mod hash;
mod registry;
pub mod uuid;

mod artifact;

pub use artifact::{Artifact, ArtifactBuilder, ArtifactKind, ContentSource, GitInfo};
pub use error::ArtifactError;
pub use hash::Md5;
pub use registry::{ArtifactRegistry, RegistryStats};
pub use uuid::Uuid;

/// Identifier of a registered artifact (a UUID).
pub type ArtifactId = Uuid;
