//! MD5 content hashing.
//!
//! The paper's framework hashes every artifact with MD5 (or records a git
//! revision hash for repository artifacts). We implement MD5 (RFC 1321)
//! in-repo rather than pulling a dependency: the algorithm is ~100 lines,
//! needs no unsafe code, and keeps artifact hashes bit-identical across
//! platforms. MD5 is used strictly as a *content fingerprint* for
//! deduplication, never for security.

use std::fmt;
use std::sync::OnceLock;

/// Per-round left-rotate amounts (RFC 1321 §3.4).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// The sine-derived constants K[i] = floor(|sin(i + 1)| * 2^32).
///
/// Computed once at runtime from `f64::sin` — identical on every IEEE-754
/// platform — instead of being transcribed by hand.
fn k_table() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let mut k = [0u32; 64];
        for (i, slot) in k.iter_mut().enumerate() {
            *slot = (((i as f64 + 1.0).sin().abs()) * 4294967296.0) as u32;
        }
        k
    })
}

/// A streaming MD5 hasher.
///
/// ```
/// use simart_artifact::Md5;
///
/// let digest = Md5::digest(b"abc");
/// assert_eq!(digest.to_hex(), "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a hasher in the RFC 1321 initial state.
    pub fn new() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let _timer = simart_observe::timer("artifact.hash_us");
        simart_observe::count("artifact.hashed_bytes", data.len() as u64);
        let mut h = Md5::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds more bytes into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Completes the hash, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.length_bytes.wrapping_mul(8);
        // Padding: a single 0x80 byte, zeros, then the 64-bit little-endian
        // message length (captured above, before padding bytes inflate the
        // byte counter).
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_le_bytes());

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let k = k_table();
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let rotated = a
                .wrapping_add(f)
                .wrapping_add(k[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]);
            b = b.wrapping_add(rotated);
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// A 128-bit MD5 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 16]);

impl Digest {
    /// Renders the digest as 32 lowercase hex characters.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for byte in self.0 {
            s.push_str(&format!("{byte:02x}"));
        }
        s
    }

    /// Parses a 32-character hex string back into a digest.
    ///
    /// Returns `None` when `hex` is not exactly 32 hex characters.
    pub fn from_hex(hex: &str) -> Option<Digest> {
        if hex.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).ok()?;
        }
        Some(Digest(out))
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(
                Md5::digest(input.as_bytes()).to_hex(),
                *expected,
                "input {input:?}"
            );
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Md5::digest(&data);
        for chunk_size in [1, 3, 7, 63, 64, 65, 100] {
            let mut h = Md5::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = Md5::digest(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&"0".repeat(31)), None);
        assert_eq!(Digest::from_hex(&"g".repeat(32)), None);
    }

    #[test]
    fn boundary_lengths() {
        // Exercise the padding logic at block boundaries: 55 bytes fits the
        // length in the same block, 56..=64 forces an extra block.
        for len in 50..70 {
            let data = vec![0xabu8; len];
            let mut h = Md5::new();
            h.update(&data);
            let d1 = h.finalize();
            let d2 = Md5::digest(&data);
            assert_eq!(d1, d2, "length {len}");
        }
    }
}
