//! The [`Artifact`] record and its builder.

use crate::error::ArtifactError;
use crate::hash::{Digest, Md5};
use crate::uuid::Uuid;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The role an artifact plays in an experiment.
///
/// Mirrors the free-form `typ` string of the paper's framework, but as a
/// closed enum so experiment code cannot typo a category. [`ArtifactKind::Other`]
/// remains for extensions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ArtifactKind {
    /// A source-code repository (identified by git URL + revision).
    GitRepo,
    /// A compiled simulator or workload binary.
    Binary,
    /// An OS kernel image.
    Kernel,
    /// A bootable disk image.
    DiskImage,
    /// A run/configuration script.
    RunScript,
    /// A packaged benchmark suite.
    BenchmarkSuite,
    /// An execution environment (e.g. a container image).
    Environment,
    /// Results produced by a run.
    Results,
    /// A run record itself (runs are artifacts too).
    Run,
    /// Anything else; carries a user label.
    Other(String),
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactKind::GitRepo => f.write_str("git repo"),
            ArtifactKind::Binary => f.write_str("binary"),
            ArtifactKind::Kernel => f.write_str("kernel"),
            ArtifactKind::DiskImage => f.write_str("disk image"),
            ArtifactKind::RunScript => f.write_str("run script"),
            ArtifactKind::BenchmarkSuite => f.write_str("benchmark suite"),
            ArtifactKind::Environment => f.write_str("environment"),
            ArtifactKind::Results => f.write_str("results"),
            ArtifactKind::Run => f.write_str("run"),
            ArtifactKind::Other(label) => write!(f, "other({label})"),
        }
    }
}

/// Git provenance recorded for repository-backed artifacts.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GitInfo {
    /// Upstream repository URL.
    pub url: String,
    /// Revision hash the artifact was produced from.
    pub revision: String,
}

/// Where an artifact's content comes from, for hashing purposes.
///
/// The paper hashes the file at `path` with MD5, or records the git
/// revision for repositories. In this reproduction content is usually
/// synthetic, so inline bytes are the common case; git sources record
/// URL + revision exactly like the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentSource {
    /// Inline content bytes (hashed with MD5).
    Bytes(Vec<u8>),
    /// A git repository: the revision hash *is* the content identity.
    Git(GitInfo),
    /// Content described only by a stable textual descriptor (hashed).
    /// Used for resources whose bytes are generated on demand.
    Descriptor(String),
}

impl ContentSource {
    /// Inline bytes content.
    pub fn bytes(data: Vec<u8>) -> ContentSource {
        ContentSource::Bytes(data)
    }

    /// Git repository content.
    pub fn git(url: impl Into<String>, revision: impl Into<String>) -> ContentSource {
        ContentSource::Git(GitInfo {
            url: url.into(),
            revision: revision.into(),
        })
    }

    /// Descriptor-only content.
    pub fn descriptor(text: impl Into<String>) -> ContentSource {
        ContentSource::Descriptor(text.into())
    }

    /// Computes the content fingerprint for this source.
    pub fn fingerprint(&self) -> Digest {
        match self {
            ContentSource::Bytes(data) => Md5::digest(data),
            ContentSource::Git(info) => {
                let mut h = Md5::new();
                h.update(b"git:");
                h.update(info.url.as_bytes());
                h.update(b"@");
                h.update(info.revision.as_bytes());
                h.finalize()
            }
            ContentSource::Descriptor(text) => {
                let mut h = Md5::new();
                h.update(b"descriptor:");
                h.update(text.as_bytes());
                h.finalize()
            }
        }
    }

    /// Git provenance, when this source is a repository.
    pub fn git_info(&self) -> Option<&GitInfo> {
        match self {
            ContentSource::Git(info) => Some(info),
            _ => None,
        }
    }
}

/// A fully registered artifact.
///
/// Carries the user-supplied reproduction metadata from the paper's
/// `registerArtifact` call (command, cwd, path, documentation, inputs)
/// plus the generated identity attributes (UUID, MD5 hash, git info).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    id: Uuid,
    name: String,
    kind: ArtifactKind,
    command: String,
    cwd: String,
    path: String,
    documentation: String,
    inputs: Vec<Uuid>,
    hash: String,
    git: Option<GitInfo>,
}

impl Artifact {
    /// Starts building an artifact with the two always-required fields.
    pub fn builder(name: impl Into<String>, kind: ArtifactKind) -> ArtifactBuilder {
        ArtifactBuilder {
            name: name.into(),
            kind,
            command: String::new(),
            cwd: String::new(),
            path: String::new(),
            documentation: String::new(),
            inputs: Vec::new(),
            content: None,
        }
    }

    /// The artifact's unique registration id.
    pub fn id(&self) -> Uuid {
        self.id
    }

    /// The artifact's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The artifact's role.
    pub fn kind(&self) -> &ArtifactKind {
        &self.kind
    }

    /// The command that (re)creates this artifact.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Directory the creation command runs in.
    pub fn cwd(&self) -> &str {
        &self.cwd
    }

    /// Path of the produced object.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Free-form documentation recorded at registration time.
    pub fn documentation(&self) -> &str {
        &self.documentation
    }

    /// Ids of the artifacts this one was built from.
    pub fn inputs(&self) -> &[Uuid] {
        &self.inputs
    }

    /// Hex MD5 content hash (or git-revision-derived fingerprint).
    pub fn hash(&self) -> &str {
        &self.hash
    }

    /// Git provenance, for repository artifacts.
    pub fn git(&self) -> Option<&GitInfo> {
        self.git.as_ref()
    }

    /// Reconstructs an artifact from previously persisted fields.
    ///
    /// Intended for storage layers that round-trip artifacts through a
    /// database; performs no registry validation.
    #[allow(clippy::too_many_arguments)]
    pub fn from_stored(
        id: Uuid,
        name: String,
        kind: ArtifactKind,
        command: String,
        cwd: String,
        path: String,
        documentation: String,
        inputs: Vec<Uuid>,
        hash: String,
        git: Option<GitInfo>,
    ) -> Artifact {
        Artifact {
            id,
            name,
            kind,
            command,
            cwd,
            path,
            documentation,
            inputs,
            hash,
            git,
        }
    }

    pub(crate) fn from_parts(
        id: Uuid,
        builder: ArtifactBuilder,
        hash: String,
        git: Option<GitInfo>,
    ) -> Artifact {
        Artifact {
            id,
            name: builder.name,
            kind: builder.kind,
            command: builder.command,
            cwd: builder.cwd,
            path: builder.path,
            documentation: builder.documentation,
            inputs: builder.inputs,
            hash,
            git,
        }
    }
}

/// Builder for [`Artifact`] registrations.
///
/// Registration is completed by [`crate::ArtifactRegistry::register`],
/// which assigns the UUID, computes the hash, and enforces dedup rules.
#[derive(Debug, Clone)]
pub struct ArtifactBuilder {
    pub(crate) name: String,
    pub(crate) kind: ArtifactKind,
    pub(crate) command: String,
    pub(crate) cwd: String,
    pub(crate) path: String,
    pub(crate) documentation: String,
    pub(crate) inputs: Vec<Uuid>,
    pub(crate) content: Option<ContentSource>,
}

impl ArtifactBuilder {
    /// Records the command which must be executed to create the artifact.
    pub fn command(mut self, command: impl Into<String>) -> Self {
        self.command = command.into();
        self
    }

    /// Records the directory in which the command should run.
    pub fn cwd(mut self, cwd: impl Into<String>) -> Self {
        self.cwd = cwd.into();
        self
    }

    /// Records the path of the produced object.
    pub fn path(mut self, path: impl Into<String>) -> Self {
        self.path = path.into();
        self
    }

    /// Records the artifact's documentation. Required: the framework's
    /// central goal is that experiments stay understandable later.
    pub fn documentation(mut self, documentation: impl Into<String>) -> Self {
        self.documentation = documentation.into();
        self
    }

    /// Adds one input dependency (must already be registered).
    pub fn input(mut self, input: Uuid) -> Self {
        self.inputs.push(input);
        self
    }

    /// Adds several input dependencies.
    pub fn inputs(mut self, inputs: impl IntoIterator<Item = Uuid>) -> Self {
        self.inputs.extend(inputs);
        self
    }

    /// Sets the content source used for hashing. Required.
    pub fn content(mut self, content: ContentSource) -> Self {
        self.content = Some(content);
        self
    }

    pub(crate) fn validate(&self) -> Result<(), ArtifactError> {
        let missing = |field| ArtifactError::MissingField {
            field,
            artifact: self.name.clone(),
        };
        if self.name.trim().is_empty() {
            return Err(missing("name"));
        }
        if self.documentation.trim().is_empty() {
            return Err(missing("documentation"));
        }
        if self.content.is_none() {
            return Err(missing("content"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_documentation() {
        let b = Artifact::builder("thing", ArtifactKind::Binary)
            .content(ContentSource::bytes(vec![1, 2, 3]));
        assert!(matches!(
            b.validate(),
            Err(ArtifactError::MissingField {
                field: "documentation",
                ..
            })
        ));
    }

    #[test]
    fn builder_requires_content() {
        let b = Artifact::builder("thing", ArtifactKind::Binary).documentation("docs");
        assert!(matches!(
            b.validate(),
            Err(ArtifactError::MissingField {
                field: "content",
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_blank_name() {
        let b = Artifact::builder("  ", ArtifactKind::Binary)
            .documentation("docs")
            .content(ContentSource::bytes(vec![]));
        assert!(matches!(
            b.validate(),
            Err(ArtifactError::MissingField { field: "name", .. })
        ));
    }

    #[test]
    fn content_fingerprints_are_stable_and_distinct() {
        let a = ContentSource::bytes(b"hello".to_vec()).fingerprint();
        let b = ContentSource::bytes(b"hello".to_vec()).fingerprint();
        let c = ContentSource::bytes(b"world".to_vec()).fingerprint();
        assert_eq!(a, b);
        assert_ne!(a, c);

        let g1 = ContentSource::git("https://x", "abc").fingerprint();
        let g2 = ContentSource::git("https://x", "abd").fingerprint();
        assert_ne!(g1, g2);

        // A descriptor and raw bytes with identical text must not collide:
        // the domain prefix separates them.
        let d = ContentSource::descriptor("hello").fingerprint();
        let raw = ContentSource::bytes(b"hello".to_vec()).fingerprint();
        assert_ne!(d, raw);
    }

    #[test]
    fn kind_display_is_compact() {
        assert_eq!(ArtifactKind::GitRepo.to_string(), "git repo");
        assert_eq!(
            ArtifactKind::Other("trace".into()).to_string(),
            "other(trace)"
        );
    }
}
