//! Error type for artifact registration and lookup.

use crate::uuid::Uuid;
use std::fmt;

/// Errors produced while registering or resolving artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArtifactError {
    /// A required builder field was left empty.
    MissingField {
        /// Name of the missing field.
        field: &'static str,
        /// Artifact name supplied to the builder (may itself be empty).
        artifact: String,
    },
    /// An artifact with the same content hash but conflicting metadata is
    /// already registered. The paper forbids duplicate artifacts in the
    /// database; matching metadata silently dedupes instead.
    ConflictingDuplicate {
        /// The existing registration the new one collides with.
        existing: Uuid,
        /// Human-readable description of the first conflicting attribute.
        conflict: String,
    },
    /// An `inputs` edge references an artifact id that has not been
    /// registered.
    UnknownInput {
        /// The dangling input id.
        input: Uuid,
        /// Name of the artifact being registered.
        artifact: String,
    },
    /// A lookup by id or name found nothing.
    NotFound {
        /// What the caller searched for.
        query: String,
    },
    /// Adding an edge would create a dependency cycle.
    DependencyCycle {
        /// One node on the offending cycle.
        node: Uuid,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::MissingField { field, artifact } => {
                write!(
                    f,
                    "artifact {artifact:?} is missing required field `{field}`"
                )
            }
            ArtifactError::ConflictingDuplicate { existing, conflict } => {
                write!(
                    f,
                    "content already registered as {existing} with different metadata: {conflict}"
                )
            }
            ArtifactError::UnknownInput { input, artifact } => {
                write!(f, "artifact {artifact:?} lists unregistered input {input}")
            }
            ArtifactError::NotFound { query } => write!(f, "no artifact matches {query:?}"),
            ArtifactError::DependencyCycle { node } => {
                write!(f, "dependency cycle detected through artifact {node}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}
