//! Property-based tests for hashing, identity, and the provenance DAG.

use proptest::prelude::*;
use simart_artifact::dag::DependencyGraph;
use simart_artifact::hash::{Digest, Md5};
use simart_artifact::{Artifact, ArtifactKind, ArtifactRegistry, ContentSource, Uuid};

proptest! {
    /// Streaming MD5 over any chunking equals the one-shot digest
    /// (exercises every padding/boundary path of RFC 1321).
    #[test]
    fn md5_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..4096),
                               chunk in 1usize..512) {
        let oneshot = Md5::digest(&data);
        let mut hasher = Md5::new();
        for piece in data.chunks(chunk) {
            hasher.update(piece);
        }
        prop_assert_eq!(hasher.finalize(), oneshot);
    }

    /// Hex encoding of digests round-trips.
    #[test]
    fn md5_hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let digest = Md5::digest(&data);
        prop_assert_eq!(Digest::from_hex(&digest.to_hex()), Some(digest));
    }

    /// Appending a byte always changes the digest (MD5 is
    /// length-extension-distinct for our fingerprint use).
    #[test]
    fn md5_extension_changes_digest(data in proptest::collection::vec(any::<u8>(), 0..512),
                                    extra in any::<u8>()) {
        let base = Md5::digest(&data);
        let mut extended = data.clone();
        extended.push(extra);
        prop_assert_ne!(Md5::digest(&extended), base);
    }

    /// UUID display/parse round-trips for arbitrary bytes.
    #[test]
    fn uuid_round_trip(bytes in any::<[u8; 16]>()) {
        let uuid = Uuid::from_bytes(bytes);
        prop_assert_eq!(uuid.to_string().parse::<Uuid>().unwrap(), uuid);
    }

    /// Name-based UUIDs are injective over (namespace, name) pairs in
    /// practice: distinct names never collide in a small sample.
    #[test]
    fn uuid_v3_distinct_names(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        prop_assume!(a != b);
        prop_assert_ne!(Uuid::new_v3("ns", &a), Uuid::new_v3("ns", &b));
    }

    /// Arbitrary edge insertions never create a cycle: the graph either
    /// rejects the edge or stays topologically sortable.
    #[test]
    fn dag_stays_acyclic(edges in proptest::collection::vec((0u64..24, 0u64..24), 0..80)) {
        let mut graph = DependencyGraph::new();
        let id = |n: u64| Uuid::new_v3("props-dag", &n.to_string());
        for (from, to) in edges {
            let _ = graph.add_edge(id(from), id(to));
        }
        let order = graph.topological_order().expect("graph must stay acyclic");
        // Every edge respects the order.
        let position = |node: Uuid| order.iter().position(|n| *n == node).unwrap();
        for node in &order {
            for succ in graph.successors(*node) {
                prop_assert!(position(*node) < position(*succ));
            }
        }
    }

    /// A rejected edge insertion leaves the graph bit-identical: build a
    /// random graph, then replay every rejected edge again and check the
    /// graph compares equal to a snapshot taken before the retry.
    #[test]
    fn dag_rejected_edge_leaves_graph_identical(
        edges in proptest::collection::vec((0u64..16, 0u64..16), 1..60)) {
        let mut graph = DependencyGraph::new();
        let id = |n: u64| Uuid::new_v3("props-dag-reject", &n.to_string());
        let mut rejected = Vec::new();
        for (from, to) in edges {
            if graph.add_edge(id(from), id(to)).is_err() {
                rejected.push((id(from), id(to)));
            }
        }
        let snapshot = graph.clone();
        for (from, to) in rejected {
            prop_assert!(graph.add_edge(from, to).is_err(), "still cyclic");
            prop_assert_eq!(&graph, &snapshot, "rejected edge must not mutate the graph");
        }
        // And a clean graph validates clean.
        prop_assert!(graph.validate().is_empty());
    }

    /// Registering arbitrary content: identical content+metadata always
    /// dedupes, distinct content always yields distinct identity.
    #[test]
    fn registry_identity(contents in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 1..20)) {
        let mut registry = ArtifactRegistry::new();
        let mut seen: Vec<(Vec<u8>, Uuid)> = Vec::new();
        for content in contents {
            let artifact = registry.register(
                Artifact::builder("blob", ArtifactKind::Binary)
                    .documentation("property test blob")
                    .content(ContentSource::bytes(content.clone())),
            );
            match artifact {
                Ok(artifact) => {
                    if let Some((_, prior)) = seen.iter().find(|(c, _)| *c == content) {
                        prop_assert_eq!(artifact.id(), *prior, "same content same identity");
                    } else {
                        for (_, other) in &seen {
                            prop_assert_ne!(artifact.id(), *other);
                        }
                        seen.push((content, artifact.id()));
                    }
                }
                Err(e) => prop_assert!(false, "registration failed: {e}"),
            }
        }
        prop_assert_eq!(registry.len(), seen.len());
    }
}
