//! Full-system hot-path performance: the three compounding
//! optimizations PERFORMANCE.md tracks, measured on the same machine
//! in one run.
//!
//! 1. **Decode cache** — fetching a decoded basic block from the
//!    [`DecodeCache`] versus re-decoding it from code memory on every
//!    visit (the pre-cache interpreter behaviour).
//! 2. **Calendar event queue** — per-operation cost of the
//!    [`EventQueue`] timing wheel as the number of pending events
//!    grows, against the O(log n) [`HeapEventQueue`] it replaced.
//! 3. **Boot checkpoints** — restoring a boot prefix from the
//!    content-addressed [`CheckpointStore`] versus re-simulating the
//!    boot cold.
//!
//! Run modes:
//!
//! - `cargo bench -p simart-fullsim --bench hotpath` — print the
//!   timing tables.
//! - `... --bench hotpath -- --test` — additionally assert the
//!   performance claims (cache ≥5× re-decode, wheel flat as the event
//!   population grows, restore ≥10× cold boot), exiting nonzero on
//!   regression. CI runs this mode.
//! - `... --bench hotpath -- --json PATH` — also write the measured
//!   numbers as JSON (the tracked `BENCH_fullsim.json` at the repo
//!   root is generated this way).

use simart_fullsim::checkpoint::CheckpointStore;
use simart_fullsim::cpu::CpuKind;
use simart_fullsim::event::{EventQueue, HeapEventQueue};
use simart_fullsim::isa::decode::{decode_block, DecodeCache};
use simart_fullsim::isa::InstMix;
use simart_fullsim::mem::code::CodeMemory;
use simart_fullsim::system::{Fidelity, SystemConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Best-of repetitions per measurement (first runs warm caches).
const REPEATS: usize = 5;

/// Instruction words in the benchmarked program image.
const PROGRAM_WORDS: usize = 1024;

/// Timed passes over the program's block entries per repetition.
const DECODE_PASSES: usize = 200;

/// Pending-event populations for the queue scaling table.
const QUEUE_SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// Scheduled/popped operations timed per queue measurement.
const QUEUE_OPS: usize = 200_000;

fn best_of(mut f: impl FnMut() -> Duration) -> Duration {
    (0..REPEATS).map(|_| f()).min().expect("REPEATS > 0")
}

/// Entry PCs of every basic block in the image, in first-execution
/// order (following fall-throughs until the program wraps).
fn block_entries(code: &CodeMemory) -> Vec<u64> {
    let mut entries = Vec::new();
    let mut pc = code.base();
    loop {
        entries.push(pc);
        pc = decode_block(code, pc).expect("image decodes").next;
        if pc == code.base() {
            return entries;
        }
    }
}

/// (cached fetch, fresh decode) cost per instruction.
fn measure_decode() -> (Duration, Duration, f64) {
    let code = CodeMemory::generate("bench/hotpath", &InstMix::default_int(), PROGRAM_WORDS);
    let entries = block_entries(&code);
    let mut cache = DecodeCache::new();
    for &pc in &entries {
        cache.fetch(&code, pc); // warm: every later fetch is a hit
    }
    let instructions = (entries.len() * DECODE_PASSES) as u32;

    let cached = best_of(|| {
        let start = Instant::now();
        let mut sum = 0usize;
        for _ in 0..DECODE_PASSES {
            for &pc in &entries {
                sum += cache.fetch(&code, black_box(pc)).insts.len();
            }
        }
        black_box(sum);
        start.elapsed()
    }) / instructions;

    let decoded = best_of(|| {
        let start = Instant::now();
        let mut sum = 0usize;
        for _ in 0..DECODE_PASSES {
            for &pc in &entries {
                sum += decode_block(&code, black_box(pc))
                    .expect("decodes")
                    .insts
                    .len();
            }
        }
        black_box(sum);
        start.elapsed()
    }) / instructions;

    // Per *block-entry lookup*; both loops also touch each decoded
    // instruction once (the `sum`), so the ratio isolates decode cost.
    let speedup = decoded.as_secs_f64() / cached.as_secs_f64().max(1e-12);
    (cached, decoded, speedup)
}

/// Deterministic xorshift64* so both queues see the same schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Per-operation cost of a hold-model workload at a steady population
/// of `size` pending events: pop the next event, schedule a
/// replacement at a random future offset — the access pattern of a
/// simulator core loop.
fn measure_queue_ns(size: usize, use_calendar: bool) -> f64 {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15 ^ size as u64);
    let mut calendar = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    for i in 0..size {
        let when = rng.next() % 1_000_000;
        if use_calendar {
            calendar.schedule(when, i as u64);
        } else {
            heap.schedule(when, i as u64);
        }
    }
    let best = best_of(|| {
        let start = Instant::now();
        for _ in 0..QUEUE_OPS {
            if use_calendar {
                let ev = calendar.pop().expect("population stays constant");
                calendar.schedule_after(rng.next() % 1_000_000, black_box(ev.payload));
            } else {
                let ev = heap.pop().expect("population stays constant");
                heap.schedule_after(rng.next() % 1_000_000, black_box(ev.payload));
            }
        }
        start.elapsed()
    });
    // One pop + one schedule per loop iteration.
    best.as_secs_f64() * 1e9 / (QUEUE_OPS as f64 * 2.0)
}

/// (cold boot, checkpoint restore, instructions/sec) for the default
/// campaign configuration.
fn measure_checkpoint() -> (Duration, Duration, f64) {
    let config = SystemConfig::builder()
        .cpu(CpuKind::AtomicSimple)
        .cores(2)
        .fidelity(Fidelity::Standard)
        .build()
        .expect("valid config");

    let mut instructions = 0u64;
    let cold = best_of(|| {
        let start = Instant::now();
        let output = config.boot_only().expect("boots");
        instructions = black_box(output).instructions;
        start.elapsed()
    });
    let ips = instructions as f64 / cold.as_secs_f64().max(1e-12);

    let dir = std::env::temp_dir().join(format!("simart-bench-hotpath-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir).expect("open store");
    store.boot_or_restore(&config).expect("boot and save");
    let restore = best_of(|| {
        let start = Instant::now();
        let checkpoint = store
            .load(&config)
            .expect("load")
            .expect("saved checkpoint present");
        black_box(checkpoint);
        start.elapsed()
    });
    let _ = std::fs::remove_dir_all(&dir);
    (cold, restore, ips)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1));

    println!("fullsim hot paths (best of {REPEATS})");

    let (cached, decoded, decode_speedup) = measure_decode();
    println!("\ndecode: cached block fetch vs re-decode, per instruction");
    println!("{:>18}  {:>18}  {:>8}", "cached", "re-decode", "speedup");
    println!(
        "{:>16.1}ns  {:>16.1}ns  {decode_speedup:>7.1}x",
        cached.as_secs_f64() * 1e9,
        decoded.as_secs_f64() * 1e9,
    );

    println!("\nevent queue: per-op cost (pop + schedule) at steady population");
    println!(
        "{:>10}  {:>14}  {:>12}  {:>7}",
        "pending", "calendar", "heap", "ratio"
    );
    let mut calendar_ns = Vec::new();
    let mut heap_ns = Vec::new();
    for &size in &QUEUE_SIZES {
        let cal = measure_queue_ns(size, true);
        let heap = measure_queue_ns(size, false);
        println!(
            "{size:>10}  {cal:>12.1}ns  {heap:>10.1}ns  {:>6.2}x",
            heap / cal.max(1e-12)
        );
        calendar_ns.push(cal);
        heap_ns.push(heap);
    }

    let (cold, restore, ips) = measure_checkpoint();
    println!("\ncheckpoint: cold boot vs restore (standard fidelity, 2 cores)");
    println!(
        "{:>14}  {:>14}  {:>8}  {:>16}",
        "cold boot", "restore", "speedup", "cold boot speed"
    );
    println!(
        "{:>12.2}ms  {:>12.3}ms  {:>7.0}x  {:>11.0} inst/s",
        cold.as_secs_f64() * 1e3,
        restore.as_secs_f64() * 1e3,
        cold.as_secs_f64() / restore.as_secs_f64().max(1e-12),
        ips,
    );

    if let Some(path) = json_path {
        let sizes: Vec<String> = QUEUE_SIZES
            .iter()
            .zip(calendar_ns.iter().zip(&heap_ns))
            .map(|(size, (cal, heap))| {
                format!(
                    "    {{\"pending\": {size}, \"calendarNsPerOp\": {cal:.1}, \
                     \"heapNsPerOp\": {heap:.1}}}"
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"hotpath\",\n  \"schema\": 1,\n  \"decode\": {{\n    \
             \"cachedNsPerInst\": {:.1},\n    \"redecodeNsPerInst\": {:.1},\n    \
             \"speedup\": {:.1}\n  }},\n  \"eventQueue\": [\n{}\n  ],\n  \
             \"checkpoint\": {{\n    \"coldBootMs\": {:.2},\n    \"restoreMs\": {:.3},\n    \
             \"speedup\": {:.0},\n    \"coldBootInstPerSec\": {:.0}\n  }}\n}}\n",
            cached.as_secs_f64() * 1e9,
            decoded.as_secs_f64() * 1e9,
            decode_speedup,
            sizes.join(",\n"),
            cold.as_secs_f64() * 1e3,
            restore.as_secs_f64() * 1e3,
            cold.as_secs_f64() / restore.as_secs_f64().max(1e-12),
            ips,
        );
        std::fs::write(path, json).expect("write bench json");
        println!("\nwrote {path}");
    }

    if test_mode {
        // 1. The decode cache must make repeat visits much cheaper than
        //    re-decoding — the whole point of caching by entry PC.
        assert!(
            decode_speedup >= 5.0,
            "cached fetch should be ≥5x faster than re-decode, got {decode_speedup:.1}x \
             (cached {cached:?}, re-decode {decoded:?})"
        );
        // 2. Calendar per-op cost must stay flat as the pending-event
        //    population grows 100x (generous band for CI noise); the
        //    heap's cost is allowed — expected, even — to grow.
        assert!(
            calendar_ns[2] < calendar_ns[0] * 3.0 + 100.0,
            "calendar queue per-op cost must stay flat: {:.1}ns at {} pending, \
             {:.1}ns at {} pending",
            calendar_ns[0],
            QUEUE_SIZES[0],
            calendar_ns[2],
            QUEUE_SIZES[2],
        );
        // 3. Restoring a boot checkpoint must beat re-simulating the
        //    boot by an order of magnitude — the "boot once, restore
        //    many" economics.
        assert!(
            restore * 10 < cold,
            "checkpoint restore ({restore:?}) should be ≥10x faster than a cold boot ({cold:?})"
        );
        println!("\nhotpath bench assertions passed");
    }
}
