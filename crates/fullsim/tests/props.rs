//! Property-based tests for the simulator substrates: event ordering,
//! cache capacity, coherence safety, and statistics.

use proptest::prelude::*;
use simart_fullsim::event::{EventQueue, HeapEventQueue};
use simart_fullsim::isa::decode::{decode, encode, StaticInst};
use simart_fullsim::isa::OpClass;
use simart_fullsim::mem::cache::{SetAssocCache, LINE_BYTES};
use simart_fullsim::mem::ruby::{CoState, RubySystem};
use simart_fullsim::mem::{AccessKind, MemorySystem};
use simart_fullsim::stats::Stats;

proptest! {
    /// Events pop in nondecreasing time order and none are lost.
    #[test]
    fn event_queue_is_a_priority_queue(times in proptest::collection::vec(0u64..1_000_000, 0..256)) {
        let mut queue = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            queue.schedule(*t, i);
        }
        let mut popped = Vec::new();
        let mut last = 0;
        while let Some(event) = queue.pop() {
            prop_assert!(event.when >= last, "time must not go backwards");
            last = event.when;
            popped.push(event.payload);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    /// The calendar queue and the reference heap queue produce
    /// *identical* event traces under arbitrary interleaved
    /// schedule/pop traffic — time, priority and payload all match at
    /// every step. This is the determinism proof for the timing-wheel
    /// replacement: same tie-break order, not just same multiset.
    #[test]
    fn calendar_queue_trace_equals_heap_queue_trace(
        ops in proptest::collection::vec(
            // (pop?, delta from now, priority)
            (any::<bool>(), 0u64..5_000_000_000_000, -2i32..3),
            1..300,
        ),
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, (pop, delta, priority)) in ops.into_iter().enumerate() {
            if pop && !cal.is_empty() {
                let a = cal.pop().map(|e| (e.when, e.priority, e.payload));
                let b = heap.pop().map(|e| (e.when, e.priority, e.payload));
                prop_assert_eq!(a, b);
                prop_assert_eq!(cal.now(), heap.now());
            } else {
                let when = cal.now() + delta;
                cal.schedule_with_priority(when, priority, i);
                heap.schedule_with_priority(when, priority, i);
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.peek_when(), heap.peek_when());
        }
        loop {
            let a = cal.pop().map(|e| (e.when, e.priority, e.payload));
            let b = heap.pop().map(|e| (e.when, e.priority, e.payload));
            prop_assert_eq!(a, b);
            if b.is_none() {
                break;
            }
        }
        prop_assert_eq!(cal.processed(), heap.processed());
    }

    /// Every encodable instruction round-trips through the 32-bit
    /// instruction word unchanged.
    #[test]
    fn instruction_words_round_trip(
        op_idx in 0usize..10,
        dst in 0u8..33,
        src1 in 0u8..33,
        src2 in 0u8..33,
    ) {
        let inst = StaticInst { op: OpClass::ALL[op_idx], dst, src1, src2 };
        prop_assert_eq!(decode(encode(inst)), Ok(inst));
    }

    /// Same-tick events pop in insertion order (determinism anchor).
    #[test]
    fn event_queue_fifo_within_tick(n in 1usize..64) {
        let mut queue = EventQueue::new();
        for i in 0..n {
            queue.schedule(42, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| queue.pop().map(|e| e.payload)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// The cache never exceeds its capacity and serves back what was
    /// inserted, under arbitrary probe/insert/invalidate traffic.
    #[test]
    fn cache_capacity_and_consistency(ops in proptest::collection::vec((0u8..3, 0u64..256), 0..512)) {
        let mut cache = SetAssocCache::<u64>::new(4096, 4); // 64 lines
        let mut resident: std::collections::BTreeMap<u64, u64> = Default::default();
        for (op, line) in ops {
            let addr = line * LINE_BYTES;
            match op {
                0 => {
                    if let Some(state) = cache.probe(addr) {
                        prop_assert_eq!(*state, resident[&line]);
                    } else {
                        prop_assert!(!resident.contains_key(&line));
                    }
                }
                1 => {
                    if cache.peek(addr).is_none() {
                        if let Some((evicted_addr, _)) = cache.insert(addr, line) {
                            resident.remove(&(evicted_addr / LINE_BYTES));
                        }
                        resident.insert(line, line);
                    }
                }
                _ => {
                    let cached = cache.invalidate(addr).is_some();
                    prop_assert_eq!(cached, resident.remove(&line).is_some());
                }
            }
            prop_assert!(cache.len() <= 64);
            prop_assert_eq!(cache.len(), resident.len());
        }
    }

    /// Coherence safety (SWMR): under arbitrary multi-core traffic, a
    /// line is never writable on two cores, and never simultaneously
    /// writable and shared — for both Ruby protocols.
    #[test]
    fn ruby_single_writer_multiple_reader(
        accesses in proptest::collection::vec((0usize..4, 0u64..24, any::<bool>()), 1..400),
        mesi in any::<bool>(),
    ) {
        let mut system = if mesi { RubySystem::new_mesi(4) } else { RubySystem::new_mi(4) };
        let lines: Vec<u64> = (0..24).map(|i| 0x4_0000 + i * LINE_BYTES).collect();
        for (core, line, write) in accesses {
            let addr = lines[line as usize];
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            system.access(core, addr, kind);
            // Check the invariant on the touched line.
            let mut exclusive = 0;
            let mut shared = 0;
            for c in 0..4 {
                match system.l1_state(c, addr) {
                    Some(CoState::M) | Some(CoState::E) => exclusive += 1,
                    Some(CoState::S) => shared += 1,
                    None => {}
                }
            }
            prop_assert!(exclusive <= 1, "two exclusive owners");
            prop_assert!(exclusive == 0 || shared == 0, "owner coexists with sharers");
        }
    }

    /// Stats absorb() is additive for counters under arbitrary merges.
    #[test]
    fn stats_absorb_is_additive(counts in proptest::collection::vec((0u8..4, 1u64..1000), 0..64)) {
        let mut total = Stats::new();
        let mut expected = [0u64; 4];
        for (slot, amount) in counts {
            let mut piece = Stats::new();
            piece.add(&format!("c{slot}"), amount);
            expected[slot as usize] += amount;
            total.absorb("sys", &piece);
        }
        for (slot, value) in expected.iter().enumerate() {
            prop_assert_eq!(total.count(&format!("sys.c{slot}")), *value);
        }
    }
}
