//! End-to-end proof of the "boot once, restore many" workflow: a run
//! resumed from an on-disk checkpoint is **bit-identical** (every
//! statistic, every tick) to the cold-boot run it replaces, and the
//! decode cache is invisible to results while visible to telemetry.

use simart_fullsim::checkpoint::{checkpoint_key, CheckpointEvent, CheckpointStore};
use simart_fullsim::isa::{AddressProfile, InstMix, InstStream, OpClass};
use simart_fullsim::system::{Fidelity, SystemConfig};
use simart_fullsim::workload::{parsec_profile, InputSize};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simart-ckpt-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn restored_workload_is_bit_identical_to_cold_boot() {
    let dir = tmp_dir("bitident");
    let store = CheckpointStore::open(&dir).unwrap();
    let config = SystemConfig::builder()
        .fidelity(Fidelity::Smoke)
        .cores(2)
        .build()
        .unwrap();
    let profile = parsec_profile("blackscholes").unwrap();

    // Cold run: boot simulated inline.
    let cold = config.run_workload(&profile, InputSize::Test).unwrap();

    // Warm run: boot saved by one "experiment", restored by the next.
    let (_, events) = store.boot_or_restore(&config).unwrap();
    assert!(matches!(events[1], CheckpointEvent::Saved(_)));
    let (restored, events) = store.boot_or_restore(&config).unwrap();
    assert!(matches!(events[1], CheckpointEvent::Restored(_)));
    let warm = config
        .run_workload_from(&restored, &profile, InputSize::Test)
        .unwrap();

    // Bit-identical: simulated time, instructions, and every statistic
    // (scalars compared as exact f64 values, not rounded renderings).
    assert_eq!(warm.sim_ticks, cold.sim_ticks);
    assert_eq!(warm.instructions, cold.instructions);
    for (name, value) in cold.stats.iter() {
        if name == "hostSeconds" {
            // The restore saves boot host time by design.
            continue;
        }
        assert_eq!(
            Some(value),
            warm.stats.iter().find(|(n, _)| *n == name).map(|(_, v)| v),
            "stat {name} differs between cold and restored runs"
        );
    }
    assert_eq!(warm.stats.count("checkpoint.restored"), 1);
    assert!(warm.host_seconds < cold.host_seconds);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_keys_are_stable_across_processes() {
    // The key is a pure content hash: any process, any time, same key.
    let config = SystemConfig::builder()
        .fidelity(Fidelity::Smoke)
        .build()
        .unwrap();
    let a = checkpoint_key(&config);
    let b = checkpoint_key(&config.clone());
    assert_eq!(a, b);
    assert_eq!(a.len(), 16, "16 hex digits");
    assert!(a.bytes().all(|b| b.is_ascii_hexdigit()));
}

#[test]
fn self_modifying_code_re_decodes_through_the_cache() {
    let mix = InstMix::new(&[(OpClass::IntAlu, 1.0)]);
    let mut stream = InstStream::new("smc", 0, mix, AddressProfile::friendly());

    // Warm the cache over the whole straight-line program.
    let total_words = stream.code().len() as u64;
    for _ in 0..total_words * 2 {
        let inst = stream.next_inst();
        assert_eq!(inst.op, OpClass::IntAlu);
    }
    let misses_before = stream.decode_cache().misses();
    assert!(stream.decode_cache().hits() > 0, "warm loop hits the cache");

    // Patch the first word into a Load; the covering block must be
    // invalidated and re-decoded, and execution must see the new op.
    let base = stream.code().base();
    let patched = simart_fullsim::isa::decode::encode(simart_fullsim::isa::decode::StaticInst {
        op: OpClass::Load,
        dst: 1,
        src1: 2,
        src2: 3,
    });
    assert!(stream.patch_code(base, patched));
    assert!(stream.decode_cache().invalidations() > 0);

    let mut saw_load = false;
    for _ in 0..total_words * 2 {
        let inst = stream.next_inst();
        if inst.op == OpClass::Load {
            assert_ne!(inst.addr, 0, "dynamic operands still drawn");
            saw_load = true;
            break;
        }
    }
    assert!(saw_load, "patched instruction executed");
    assert!(
        stream.decode_cache().misses() > misses_before,
        "invalidated block was re-decoded"
    );
}
