//! Error type for simulator configuration.

use std::fmt;

/// Errors raised while building or running a simulated system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration is structurally invalid (bad core count,
    /// missing component, …) — distinct from *unsupported* runtime
    /// combinations, which are reported as boot outcomes.
    InvalidConfig {
        /// What is wrong.
        reason: String,
    },
}

impl SimError {
    pub(crate) fn invalid(reason: impl Into<String>) -> SimError {
        SimError::InvalidConfig {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}
