//! Workload profiles: the statistical descriptions that stand in for
//! real benchmark binaries.
//!
//! A [`WorkloadProfile`] captures what the timing models need from a
//! benchmark: dynamic instruction count per input size, instruction
//! mix, memory reference behaviour, parallel fraction, and
//! synchronization intensity. The PARSEC profiles here are calibrated
//! from the suite's published characterization (Bienia, 2011) at the
//! granularity this simulator models.

use crate::isa::{AddressProfile, InstMix, OpClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// PARSEC-style input sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputSize {
    /// Minimal correctness-test input.
    Test,
    /// Small simulation input.
    SimSmall,
    /// Medium simulation input (used by the paper's use-case 1).
    SimMedium,
    /// Large simulation input.
    SimLarge,
    /// Full native input.
    Native,
}

impl InputSize {
    /// Scale factor applied to a workload's base instruction count.
    pub fn scale(self) -> f64 {
        match self {
            InputSize::Test => 0.01,
            InputSize::SimSmall => 0.25,
            InputSize::SimMedium => 1.0,
            InputSize::SimLarge => 4.0,
            InputSize::Native => 40.0,
        }
    }
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InputSize::Test => "test",
            InputSize::SimSmall => "simsmall",
            InputSize::SimMedium => "simmedium",
            InputSize::SimLarge => "simlarge",
            InputSize::Native => "native",
        };
        f.write_str(s)
    }
}

/// A complete workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload name (e.g. `blackscholes`).
    pub name: String,
    /// Dynamic instructions at `SimMedium` input.
    pub base_insts: u64,
    /// Instruction mix.
    pub mix: InstMix,
    /// Memory reference behaviour.
    pub addrs: AddressProfile,
    /// Fraction of work that parallelizes (Amdahl).
    pub parallel_fraction: f64,
    /// Synchronization operations per 1000 parallel-phase instructions.
    pub sync_per_kinst: f64,
}

impl WorkloadProfile {
    /// Total dynamic instructions for the given input size.
    pub fn total_insts(&self, input: InputSize) -> u64 {
        (self.base_insts as f64 * input.scale()) as u64
    }

    /// Instructions in the serial phase.
    pub fn serial_insts(&self, input: InputSize) -> u64 {
        (self.total_insts(input) as f64 * (1.0 - self.parallel_fraction)) as u64
    }

    /// Instructions in the parallel phase (split across threads).
    pub fn parallel_insts(&self, input: InputSize) -> u64 {
        self.total_insts(input) - self.serial_insts(input)
    }
}

/// Builds the profile of one PARSEC application, or `None` for an
/// unknown name. The ten applications are the ones the paper's
/// use-case 1 runs (x264, facesim and canneal are excluded there for
/// runtime bugs, exactly as in the paper).
pub fn parsec_profile(name: &str) -> Option<WorkloadProfile> {
    // (base_insts_in_millions, mix, working_set, locality, shared,
    //  parallel_fraction, sync_per_kinst)
    let fp = |fp_weight: f64| {
        InstMix::new(&[
            (OpClass::IntAlu, 0.30),
            (OpClass::IntMul, 0.02),
            (OpClass::FpAlu, fp_weight),
            (OpClass::FpDiv, fp_weight * 0.08),
            (OpClass::Load, 0.24),
            (OpClass::Store, 0.10),
            (OpClass::Branch, 0.12),
            (OpClass::Syscall, 0.002),
        ])
    };
    let int = || {
        InstMix::new(&[
            (OpClass::IntAlu, 0.44),
            (OpClass::IntMul, 0.03),
            (OpClass::Load, 0.26),
            (OpClass::Store, 0.12),
            (OpClass::Branch, 0.15),
            (OpClass::Syscall, 0.004),
        ])
    };
    let ws = |kib: u64| kib << 10;
    let profile = |base_m: u64,
                   mix: InstMix,
                   working_set: u64,
                   locality: f64,
                   shared: f64,
                   parallel: f64,
                   sync: f64| {
        WorkloadProfile {
            name: name.to_owned(),
            base_insts: base_m * 1_000_000,
            mix,
            addrs: AddressProfile {
                working_set,
                locality,
                shared_fraction: shared,
            },
            parallel_fraction: parallel,
            sync_per_kinst: sync,
        }
    };
    Some(match name {
        "blackscholes" => profile(1_600, fp(0.22), ws(2_048), 0.95, 0.01, 0.960, 0.02),
        "bodytrack" => profile(2_200, fp(0.18), ws(8_192), 0.88, 0.06, 0.870, 0.60),
        "dedup" => profile(3_200, int(), ws(256_000), 0.80, 0.10, 0.820, 1.40),
        "ferret" => profile(4_100, fp(0.12), ws(64_000), 0.85, 0.08, 0.900, 0.90),
        "fluidanimate" => profile(2_600, fp(0.20), ws(64_000), 0.90, 0.09, 0.910, 2.20),
        "freqmine" => profile(3_900, int(), ws(128_000), 0.86, 0.04, 0.880, 0.30),
        "raytrace" => profile(3_400, fp(0.24), ws(128_000), 0.89, 0.03, 0.885, 0.25),
        "streamcluster" => profile(2_900, fp(0.16), ws(16_000), 0.72, 0.07, 0.930, 1.80),
        "swaptions" => profile(1_900, fp(0.26), ws(96), 0.96, 0.01, 0.970, 0.05),
        "vips" => profile(3_600, int(), ws(32_000), 0.87, 0.05, 0.900, 0.45),
        _ => return None,
    })
}

/// Builds the profile of one NAS Parallel Benchmark (the `npb`
/// resource), or `None` for an unknown name. Sizes correspond to the
/// class-A inputs the resource documents.
pub fn npb_profile(name: &str) -> Option<WorkloadProfile> {
    let fp_mix = |fp: f64| {
        InstMix::new(&[
            (OpClass::IntAlu, 0.26),
            (OpClass::FpAlu, fp),
            (OpClass::FpDiv, fp * 0.05),
            (OpClass::Load, 0.27),
            (OpClass::Store, 0.11),
            (OpClass::Branch, 0.08),
            (OpClass::Syscall, 0.001),
        ])
    };
    let profile = |base_m: u64, fp: f64, ws_kib: u64, locality: f64, parallel: f64, sync: f64| {
        WorkloadProfile {
            name: name.to_owned(),
            base_insts: base_m * 1_000_000,
            mix: fp_mix(fp),
            addrs: AddressProfile {
                working_set: ws_kib << 10,
                locality,
                shared_fraction: 0.06,
            },
            parallel_fraction: parallel,
            sync_per_kinst: sync,
        }
    };
    Some(match name {
        "bt" => profile(5_800, 0.30, 96_000, 0.92, 0.94, 0.40),
        "cg" => profile(1_500, 0.24, 150_000, 0.55, 0.92, 1.10), // irregular sparse accesses
        "ep" => profile(2_300, 0.34, 256, 0.97, 0.985, 0.02),    // embarrassingly parallel
        "ft" => profile(3_900, 0.32, 220_000, 0.70, 0.93, 0.70),
        "is" => profile(600, 0.02, 130_000, 0.50, 0.90, 1.30), // integer sort, scatter-heavy
        "lu" => profile(6_400, 0.30, 60_000, 0.90, 0.93, 0.90),
        "mg" => profile(2_100, 0.28, 230_000, 0.75, 0.94, 0.60),
        "sp" => profile(5_100, 0.30, 80_000, 0.91, 0.94, 0.50),
        "ua" => profile(4_200, 0.26, 110_000, 0.80, 0.91, 1.00),
        _ => return None,
    })
}

/// Builds the profile of one GAP Benchmark Suite kernel (the `gapbs`
/// resource) over its reference graphs, or `None` for an unknown name.
pub fn gapbs_profile(name: &str) -> Option<WorkloadProfile> {
    let graph_mix = InstMix::new(&[
        (OpClass::IntAlu, 0.36),
        (OpClass::Load, 0.33), // pointer chasing dominates
        (OpClass::Store, 0.08),
        (OpClass::Branch, 0.19),
        (OpClass::Atomic, 0.02),
        (OpClass::Syscall, 0.001),
    ]);
    let profile = |base_m: u64, locality: f64, parallel: f64, sync: f64| WorkloadProfile {
        name: name.to_owned(),
        base_insts: base_m * 1_000_000,
        mix: graph_mix.clone(),
        addrs: AddressProfile {
            working_set: 512 << 20, // 512 MiB graph, poor locality
            locality,
            shared_fraction: 0.12,
        },
        parallel_fraction: parallel,
        sync_per_kinst: sync,
    };
    Some(match name {
        "bc" => profile(4_800, 0.35, 0.92, 1.20),
        "bfs" => profile(900, 0.30, 0.90, 1.60),
        "cc" => profile(1_700, 0.32, 0.93, 1.10),
        "pr" => profile(3_600, 0.45, 0.95, 0.60),
        "sssp" => profile(2_800, 0.33, 0.89, 1.50),
        "tc" => profile(6_200, 0.40, 0.96, 0.30),
        _ => return None,
    })
}

/// The NPB kernels the `npb` resource ships.
pub const NPB_APPS: [&str; 9] = ["bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "ua"];

/// The GAPBS kernels the `gapbs` resource ships.
pub const GAPBS_APPS: [&str; 6] = ["bc", "bfs", "cc", "pr", "sssp", "tc"];

/// The ten PARSEC applications of the paper's use-case 1, in the order
/// Table II lists them.
pub const PARSEC_APPS: [&str; 10] = [
    "blackscholes",
    "bodytrack",
    "dedup",
    "ferret",
    "fluidanimate",
    "freqmine",
    "raytrace",
    "streamcluster",
    "swaptions",
    "vips",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_parsec_apps_have_profiles() {
        for app in PARSEC_APPS {
            let p = parsec_profile(app).unwrap_or_else(|| panic!("missing {app}"));
            assert_eq!(p.name, app);
            assert!(p.base_insts > 100_000_000, "{app} too small");
            assert!((0.0..=1.0).contains(&p.parallel_fraction));
            assert!(p.addrs.locality > 0.0 && p.addrs.locality <= 1.0);
        }
    }

    #[test]
    fn excluded_apps_are_absent() {
        // The paper removed x264, facesim and canneal for runtime bugs.
        for app in ["x264", "facesim", "canneal"] {
            assert!(parsec_profile(app).is_none(), "{app} should be excluded");
        }
    }

    #[test]
    fn input_size_scales_instruction_counts() {
        let p = parsec_profile("blackscholes").unwrap();
        assert!(p.total_insts(InputSize::SimSmall) < p.total_insts(InputSize::SimMedium));
        assert!(p.total_insts(InputSize::SimMedium) < p.total_insts(InputSize::Native));
        assert_eq!(p.total_insts(InputSize::SimMedium), p.base_insts);
    }

    #[test]
    fn serial_plus_parallel_equals_total() {
        for app in PARSEC_APPS {
            let p = parsec_profile(app).unwrap();
            for input in [InputSize::Test, InputSize::SimMedium, InputSize::SimLarge] {
                assert_eq!(
                    p.serial_insts(input) + p.parallel_insts(input),
                    p.total_insts(input),
                    "{app} {input}"
                );
            }
        }
    }

    #[test]
    fn npb_and_gapbs_catalogs_resolve() {
        for app in NPB_APPS {
            let p = npb_profile(app).unwrap_or_else(|| panic!("missing npb/{app}"));
            assert_eq!(p.name, app);
            assert!(p.base_insts > 100_000_000);
        }
        for app in GAPBS_APPS {
            let p = gapbs_profile(app).unwrap_or_else(|| panic!("missing gapbs/{app}"));
            assert_eq!(p.name, app);
            assert!(p.addrs.locality < 0.5, "graph kernels have poor locality");
        }
        assert!(npb_profile("zz").is_none());
        assert!(gapbs_profile("zz").is_none());
    }

    #[test]
    fn ep_is_embarrassingly_parallel_bfs_is_sync_heavy() {
        assert!(npb_profile("ep").unwrap().parallel_fraction > 0.98);
        assert!(npb_profile("ep").unwrap().sync_per_kinst < 0.1);
        assert!(gapbs_profile("bfs").unwrap().sync_per_kinst > 1.0);
    }

    #[test]
    fn swaptions_is_most_parallel_dedup_among_least() {
        let swaptions = parsec_profile("swaptions").unwrap().parallel_fraction;
        let dedup = parsec_profile("dedup").unwrap().parallel_fraction;
        assert!(swaptions > 0.95);
        assert!(dedup < swaptions);
    }
}
