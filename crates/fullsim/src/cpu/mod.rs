//! CPU models.
//!
//! Four models mirroring the gem5 CPUs the paper crosses in Figure 8:
//!
//! | model | fidelity |
//! |---|---|
//! | [`KvmCpu`] | virtualization passthrough: no timing, host speed |
//! | [`AtomicSimpleCpu`] | functional caches, atomic (zero-time) memory |
//! | [`TimingSimpleCpu`] | in-order, timing for memory accesses only |
//! | [`O3Cpu`] | out-of-order pipeline: ROB, issue width, FU latencies |
//!
//! All models consume the same deterministic [`InstStream`]s and drive
//! the same [`MemorySystem`], so configurations differ only where the
//! real simulator's would.

mod atomic;
mod kvm;
mod o3;
mod timing;

pub use atomic::AtomicSimpleCpu;
pub use kvm::KvmCpu;
pub use o3::{O3Config, O3Cpu};
pub use timing::TimingSimpleCpu;

use crate::isa::InstStream;
use crate::mem::MemorySystem;
use crate::stats::Stats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// CPU model selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuKind {
    /// Executes code using the host's hardware; no timing simulation.
    Kvm,
    /// Atomic memory accesses, no timing simulation.
    AtomicSimple,
    /// Timing simulation for memory accesses only.
    TimingSimple,
    /// Out-of-order CPU, timing for both CPU and memory.
    O3,
}

impl CpuKind {
    /// The four CPU models crossed by the paper's Figure 8.
    pub const FIGURE8: [CpuKind; 4] = [
        CpuKind::Kvm,
        CpuKind::AtomicSimple,
        CpuKind::TimingSimple,
        CpuKind::O3,
    ];

    /// Instantiates the model.
    pub fn build(self) -> Box<dyn CpuModel> {
        match self {
            CpuKind::Kvm => Box::new(KvmCpu::new()),
            CpuKind::AtomicSimple => Box::new(AtomicSimpleCpu::new()),
            CpuKind::TimingSimple => Box::new(TimingSimpleCpu::new()),
            CpuKind::O3 => Box::new(O3Cpu::new(O3Config::default())),
        }
    }

    /// Relative wall-clock cost of simulating one instruction on this
    /// model (KVM ≪ atomic < timing < O3). Used by the boot-time model.
    pub fn simulation_weight(self) -> f64 {
        match self {
            CpuKind::Kvm => 0.02,
            CpuKind::AtomicSimple => 1.0,
            CpuKind::TimingSimple => 2.6,
            CpuKind::O3 => 9.0,
        }
    }
}

impl fmt::Display for CpuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CpuKind::Kvm => "kvmCPU",
            CpuKind::AtomicSimple => "AtomicSimpleCPU",
            CpuKind::TimingSimple => "TimingSimpleCPU",
            CpuKind::O3 => "O3CPU",
        };
        f.write_str(s)
    }
}

/// Result of running a batch of instructions on a CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuRunResult {
    /// Instructions committed.
    pub instructions: u64,
    /// Core cycles consumed.
    pub cycles: u64,
}

impl CpuRunResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// A CPU timing model.
pub trait CpuModel {
    /// Which model this is.
    fn kind(&self) -> CpuKind;

    /// Executes `budget` instructions from `stream` on logical core
    /// `core` against `mem`, returning committed instructions and
    /// cycles.
    fn run(
        &mut self,
        core: usize,
        stream: &mut InstStream,
        budget: u64,
        mem: &mut dyn MemorySystem,
    ) -> CpuRunResult;

    /// Dumps model-specific statistics under `prefix`.
    fn dump_stats(&self, prefix: &str, stats: &mut Stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddressProfile, InstMix};
    use crate::mem::{build, MemKind};

    fn stream() -> InstStream {
        InstStream::new(
            "cpu-test",
            0,
            InstMix::default_int(),
            AddressProfile::friendly(),
        )
    }

    #[test]
    fn display_names_match_the_paper() {
        assert_eq!(CpuKind::Kvm.to_string(), "kvmCPU");
        assert_eq!(CpuKind::AtomicSimple.to_string(), "AtomicSimpleCPU");
        assert_eq!(CpuKind::TimingSimple.to_string(), "TimingSimpleCPU");
        assert_eq!(CpuKind::O3.to_string(), "O3CPU");
    }

    #[test]
    fn all_models_commit_the_budget() {
        for kind in CpuKind::FIGURE8 {
            let mut cpu = kind.build();
            let mut mem = build(MemKind::classic_coherent(), 1);
            let result = cpu.run(0, &mut stream(), 5_000, mem.as_mut());
            assert_eq!(result.instructions, 5_000, "{kind}");
            assert!(result.cycles > 0, "{kind}");
        }
    }

    #[test]
    fn fidelity_ladder_orders_cpi() {
        // KVM reports the fewest cycles; O3 beats the in-order timing
        // model on ILP but pays memory latencies the atomic model skips.
        let run = |kind: CpuKind| {
            let mut cpu = kind.build();
            let mut mem = build(MemKind::classic_coherent(), 1);
            cpu.run(0, &mut stream(), 20_000, mem.as_mut()).cpi()
        };
        let kvm = run(CpuKind::Kvm);
        let atomic = run(CpuKind::AtomicSimple);
        let timing = run(CpuKind::TimingSimple);
        let o3 = run(CpuKind::O3);
        assert!(kvm < atomic, "kvm {kvm} vs atomic {atomic}");
        assert!(atomic < timing, "atomic {atomic} vs timing {timing}");
        assert!(o3 < timing, "o3 {o3} should extract ILP vs timing {timing}");
        assert!(o3 > kvm, "o3 {o3} still pays timing kvm {kvm} skips");
    }

    #[test]
    fn simulation_weight_ladder() {
        assert!(CpuKind::Kvm.simulation_weight() < CpuKind::AtomicSimple.simulation_weight());
        assert!(CpuKind::TimingSimple.simulation_weight() < CpuKind::O3.simulation_weight());
    }

    #[test]
    fn zero_budget_is_empty_result() {
        let mut cpu = CpuKind::TimingSimple.build();
        let mut mem = build(MemKind::classic_fast(), 1);
        let result = cpu.run(0, &mut stream(), 0, mem.as_mut());
        assert_eq!(result, CpuRunResult::default());
        assert_eq!(result.cpi(), 0.0);
    }
}
