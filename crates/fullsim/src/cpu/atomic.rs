//! The atomic simple CPU: functional memory, coarse timing.
//!
//! Like gem5's `AtomicSimpleCPU`, memory accesses complete atomically
//! (in zero simulated memory time) but still *functionally* traverse
//! the cache hierarchy, keeping cache/coherence state warm. Per-
//! instruction latency is just the operation's execute latency.

use super::{CpuKind, CpuModel, CpuRunResult};
use crate::isa::InstStream;
use crate::mem::{AccessKind, MemorySystem};
use crate::stats::Stats;

/// The atomic in-order CPU model.
#[derive(Debug, Default)]
pub struct AtomicSimpleCpu {
    committed: u64,
    cycles: u64,
    memory_ops: u64,
}

impl AtomicSimpleCpu {
    /// Creates the model.
    pub fn new() -> AtomicSimpleCpu {
        AtomicSimpleCpu::default()
    }
}

impl CpuModel for AtomicSimpleCpu {
    fn kind(&self) -> CpuKind {
        CpuKind::AtomicSimple
    }

    fn run(
        &mut self,
        core: usize,
        stream: &mut InstStream,
        budget: u64,
        mem: &mut dyn MemorySystem,
    ) -> CpuRunResult {
        let mut cycles = 0;
        for _ in 0..budget {
            let inst = stream.next_inst();
            cycles += inst.op.base_latency();
            if inst.op.is_memory() {
                self.memory_ops += 1;
                // Functional access: state changes, latency ignored.
                let kind = match inst.op {
                    crate::isa::OpClass::Store => AccessKind::Write,
                    crate::isa::OpClass::Atomic => AccessKind::Atomic,
                    _ => AccessKind::Read,
                };
                let _ = mem.access(core, inst.addr, kind);
            }
        }
        self.committed += budget;
        self.cycles += cycles;
        CpuRunResult {
            instructions: budget,
            cycles,
        }
    }

    fn dump_stats(&self, prefix: &str, stats: &mut Stats) {
        stats.set_count(&format!("{prefix}.committedInsts"), self.committed);
        stats.set_count(&format!("{prefix}.numCycles"), self.cycles);
        stats.set_count(&format!("{prefix}.memoryOps"), self.memory_ops);
        if self.cycles > 0 {
            stats.set_scalar(
                &format!("{prefix}.ipc"),
                self.committed as f64 / self.cycles as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddressProfile, InstMix, OpClass};
    use crate::mem::{build, MemKind};

    #[test]
    fn memory_state_is_warmed_but_latency_ignored() {
        let mut cpu = AtomicSimpleCpu::new();
        let mut mem = build(MemKind::classic_fast(), 1);
        let mix = InstMix::new(&[(OpClass::Load, 1.0)]);
        let mut stream = InstStream::new("atomic", 0, mix, AddressProfile::friendly());
        let result = cpu.run(0, &mut stream, 1000, mem.as_mut());
        // All loads, base latency 1 -> exactly 1000 cycles regardless of
        // cache misses.
        assert_eq!(result.cycles, 1000);
        let mut stats = Stats::new();
        mem.dump_stats("mem", &mut stats);
        assert!(
            stats.count("mem.l1Hits") + stats.count("mem.misses") > 0,
            "caches were touched"
        );
    }

    #[test]
    fn long_ops_cost_their_latency() {
        let mut cpu = AtomicSimpleCpu::new();
        let mut mem = build(MemKind::classic_fast(), 1);
        let mix = InstMix::new(&[(OpClass::FpDiv, 1.0)]);
        let mut stream = InstStream::new("atomic2", 0, mix, AddressProfile::friendly());
        let result = cpu.run(0, &mut stream, 100, mem.as_mut());
        assert_eq!(result.cycles, 100 * OpClass::FpDiv.base_latency());
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut cpu = AtomicSimpleCpu::new();
        let mut mem = build(MemKind::classic_fast(), 1);
        let mut stream = InstStream::new(
            "atomic3",
            0,
            InstMix::default_int(),
            AddressProfile::friendly(),
        );
        cpu.run(0, &mut stream, 500, mem.as_mut());
        cpu.run(0, &mut stream, 500, mem.as_mut());
        let mut stats = Stats::new();
        cpu.dump_stats("cpu", &mut stats);
        assert_eq!(stats.count("cpu.committedInsts"), 1000);
        assert!(stats.scalar("cpu.ipc") > 0.0);
    }
}
