//! The KVM CPU: virtualization passthrough.
//!
//! gem5's `KvmCPU` executes guest code directly on the host with no
//! micro-architectural timing; it is used to fast-forward boot and
//! warm-up phases. We model that by committing instructions at a fixed
//! optimistic rate and touching no timing state at all.

use super::{CpuKind, CpuModel, CpuRunResult};
use crate::isa::InstStream;
use crate::mem::MemorySystem;
use crate::stats::Stats;

/// Effective instructions per cycle when running under virtualization
/// (no stalls are modeled — fidelity is intentionally minimal).
const KVM_IPC: u64 = 8;

/// The KVM passthrough CPU model.
#[derive(Debug, Default)]
pub struct KvmCpu {
    committed: u64,
}

impl KvmCpu {
    /// Creates the model.
    pub fn new() -> KvmCpu {
        KvmCpu::default()
    }
}

impl CpuModel for KvmCpu {
    fn kind(&self) -> CpuKind {
        CpuKind::Kvm
    }

    fn run(
        &mut self,
        _core: usize,
        stream: &mut InstStream,
        budget: u64,
        _mem: &mut dyn MemorySystem,
    ) -> CpuRunResult {
        // Consume the stream so downstream phases stay aligned, but do
        // no timing: the guest runs on the "host".
        for _ in 0..budget {
            let _ = stream.next_inst();
        }
        self.committed += budget;
        CpuRunResult {
            instructions: budget,
            cycles: budget.div_ceil(KVM_IPC),
        }
    }

    fn dump_stats(&self, prefix: &str, stats: &mut Stats) {
        stats.set_count(&format!("{prefix}.committedInsts"), self.committed);
        stats.set_scalar(&format!("{prefix}.ipc"), KVM_IPC as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddressProfile, InstMix};
    use crate::mem::{build, MemKind};

    #[test]
    fn kvm_never_touches_memory_timing() {
        let mut cpu = KvmCpu::new();
        let mut mem = build(MemKind::RubyMi, 1);
        let mut stream =
            InstStream::new("kvm", 0, InstMix::default_int(), AddressProfile::friendly());
        cpu.run(0, &mut stream, 10_000, mem.as_mut());
        let mut stats = Stats::new();
        mem.dump_stats("mem", &mut stats);
        assert_eq!(stats.count("mem.hits") + stats.count("mem.misses"), 0);
    }

    #[test]
    fn cycles_reflect_fixed_ipc() {
        let mut cpu = KvmCpu::new();
        let mut mem = build(MemKind::classic_fast(), 1);
        let mut stream =
            InstStream::new("kvm", 0, InstMix::default_int(), AddressProfile::friendly());
        let result = cpu.run(0, &mut stream, 1000, mem.as_mut());
        assert_eq!(result.cycles, 125);
        let mut stats = Stats::new();
        cpu.dump_stats("cpu", &mut stats);
        assert_eq!(stats.count("cpu.committedInsts"), 1000);
    }
}
