//! The timing simple CPU: in-order, blocking memory.
//!
//! Like gem5's `TimingSimpleCPU`: instructions execute in order with
//! their base latency, and every memory access blocks the pipeline for
//! the memory system's full reported latency.

use super::{CpuKind, CpuModel, CpuRunResult};
use crate::isa::{InstStream, OpClass};
use crate::mem::{AccessKind, MemorySystem};
use crate::stats::Stats;

/// The in-order timing CPU model.
#[derive(Debug, Default)]
pub struct TimingSimpleCpu {
    committed: u64,
    cycles: u64,
    memory_cycles: u64,
    branch_mispredicts: u64,
}

/// Cycles lost re-steering the (short) in-order front end on a
/// mispredicted branch.
const MISPREDICT_PENALTY: u64 = 3;
/// Fraction of taken branches the static predictor gets wrong.
const MISPREDICT_RATE: f64 = 0.06;

impl TimingSimpleCpu {
    /// Creates the model.
    pub fn new() -> TimingSimpleCpu {
        TimingSimpleCpu::default()
    }
}

impl CpuModel for TimingSimpleCpu {
    fn kind(&self) -> CpuKind {
        CpuKind::TimingSimple
    }

    fn run(
        &mut self,
        core: usize,
        stream: &mut InstStream,
        budget: u64,
        mem: &mut dyn MemorySystem,
    ) -> CpuRunResult {
        let mut cycles = 0;
        let mut mem_cycles = 0;
        for i in 0..budget {
            let inst = stream.next_inst();
            cycles += inst.op.base_latency();
            if inst.op.is_memory() {
                let kind = match inst.op {
                    OpClass::Store => AccessKind::Write,
                    OpClass::Atomic => AccessKind::Atomic,
                    _ => AccessKind::Read,
                };
                let latency = mem.access(core, inst.addr, kind);
                cycles += latency;
                mem_cycles += latency;
            }
            if inst.op == OpClass::Branch && inst.taken {
                // Deterministic pseudo-random mispredict from the
                // instruction index (streams carry no predictor state).
                let hash = crate::rng::fnv1a(&(self.committed + i).to_le_bytes());
                if (hash % 10_000) as f64 / 10_000.0 < MISPREDICT_RATE {
                    cycles += MISPREDICT_PENALTY;
                    self.branch_mispredicts += 1;
                }
            }
        }
        self.committed += budget;
        self.cycles += cycles;
        self.memory_cycles += mem_cycles;
        CpuRunResult {
            instructions: budget,
            cycles,
        }
    }

    fn dump_stats(&self, prefix: &str, stats: &mut Stats) {
        stats.set_count(&format!("{prefix}.committedInsts"), self.committed);
        stats.set_count(&format!("{prefix}.numCycles"), self.cycles);
        stats.set_count(&format!("{prefix}.memStallCycles"), self.memory_cycles);
        stats.set_count(
            &format!("{prefix}.branchMispredicts"),
            self.branch_mispredicts,
        );
        if self.cycles > 0 {
            stats.set_scalar(
                &format!("{prefix}.ipc"),
                self.committed as f64 / self.cycles as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::AddressProfile;
    use crate::isa::InstMix;
    use crate::mem::{build, MemKind};

    #[test]
    fn memory_latency_blocks_the_pipeline() {
        let mix = InstMix::new(&[(OpClass::Load, 1.0)]);
        // Random addresses over a large set: mostly misses.
        let cold_profile = AddressProfile {
            working_set: 64 << 20,
            locality: 0.0,
            shared_fraction: 0.0,
        };
        let warm_profile = AddressProfile::friendly();

        let run = |profile| {
            let mut cpu = TimingSimpleCpu::new();
            let mut mem = build(MemKind::classic_fast(), 1);
            let mut stream = InstStream::new("timing", 0, mix.clone(), profile);
            cpu.run(0, &mut stream, 3_000, mem.as_mut()).cpi()
        };
        let cold = run(cold_profile);
        let warm = run(warm_profile);
        assert!(cold > warm * 3.0, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn mispredicts_are_rare_but_present() {
        let mix = InstMix::new(&[(OpClass::Branch, 1.0)]);
        let mut cpu = TimingSimpleCpu::new();
        let mut mem = build(MemKind::classic_fast(), 1);
        let mut stream = InstStream::new("timing-br", 0, mix, AddressProfile::friendly());
        cpu.run(0, &mut stream, 50_000, mem.as_mut());
        let rate = cpu.branch_mispredicts as f64 / 50_000.0;
        assert!((0.01..0.12).contains(&rate), "mispredict rate {rate}");
    }

    #[test]
    fn ipc_below_one() {
        let mut cpu = TimingSimpleCpu::new();
        let mut mem = build(MemKind::classic_fast(), 1);
        let mut stream = InstStream::new(
            "timing-ipc",
            0,
            InstMix::default_int(),
            AddressProfile::friendly(),
        );
        let result = cpu.run(0, &mut stream, 10_000, mem.as_mut());
        assert!(
            result.cpi() > 1.0,
            "in-order blocking CPU cannot beat 1 IPC"
        );
    }
}
