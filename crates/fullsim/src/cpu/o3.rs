//! The out-of-order CPU model.
//!
//! A dataflow-limited pipeline model in the style of gem5's `O3CPU`:
//! instructions issue when their source registers are ready, bounded by
//! fetch/issue width, a reorder buffer, and per-class functional-unit
//! latencies. Memory operations take their latency from the memory
//! system; mispredicted branches stall the front end.
//!
//! The model tracks per-register ready cycles and per-instruction
//! completion cycles — enough micro-architecture to let independent
//! work overlap (ILP) while dependent chains serialize, which is what
//! separates `O3CPU` from `TimingSimpleCPU` in the paper's data.

use super::{CpuKind, CpuModel, CpuRunResult};
use crate::isa::{InstStream, OpClass};
use crate::mem::{AccessKind, MemorySystem};
use crate::stats::Stats;
use std::collections::VecDeque;

/// Configuration of the out-of-order pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct O3Config {
    /// Instructions fetched per cycle.
    pub fetch_width: u64,
    /// Instructions issued per cycle.
    pub issue_width: u64,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Front-end refill penalty on a mispredicted branch.
    pub mispredict_penalty: u64,
    /// Mispredict probability for taken branches.
    pub mispredict_rate: f64,
}

impl Default for O3Config {
    fn default() -> Self {
        O3Config {
            fetch_width: 8,
            issue_width: 8,
            rob_size: 192,
            mispredict_penalty: 14,
            mispredict_rate: 0.04,
        }
    }
}

/// The out-of-order CPU model.
#[derive(Debug)]
pub struct O3Cpu {
    config: O3Config,
    committed: u64,
    cycles: u64,
    mispredicts: u64,
    rob_stalls: u64,
}

impl O3Cpu {
    /// Creates the model with the given pipeline configuration.
    pub fn new(config: O3Config) -> O3Cpu {
        O3Cpu {
            config,
            committed: 0,
            cycles: 0,
            mispredicts: 0,
            rob_stalls: 0,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &O3Config {
        &self.config
    }
}

impl CpuModel for O3Cpu {
    fn kind(&self) -> CpuKind {
        CpuKind::O3
    }

    fn run(
        &mut self,
        core: usize,
        stream: &mut InstStream,
        budget: u64,
        mem: &mut dyn MemorySystem,
    ) -> CpuRunResult {
        if budget == 0 {
            return CpuRunResult::default();
        }
        let cfg = self.config;
        // Ready cycle per architectural register (33 registers: x0..x32).
        let mut reg_ready = [0u64; 33];
        // Completion cycles of in-flight instructions, oldest first
        // (stand-in for the ROB).
        let mut rob: VecDeque<u64> = VecDeque::with_capacity(cfg.rob_size);
        let mut fetch_stall_until = 0u64;
        let mut last_complete = 0u64;

        for i in 0..budget {
            let inst = stream.next_inst();
            let fetch_cycle = (i / cfg.fetch_width).max(fetch_stall_until);

            // ROB capacity: the i-th instruction cannot dispatch until
            // the (i - rob_size)-th has completed.
            let rob_ready = if rob.len() >= cfg.rob_size {
                let oldest = rob.pop_front().expect("rob non-empty");
                if oldest > fetch_cycle {
                    self.rob_stalls += 1;
                }
                oldest
            } else {
                0
            };

            // Issue once sources are ready, bounded by issue bandwidth
            // (approximated by fetch bandwidth here — both are 8 wide).
            let deps = reg_ready[inst.src1 as usize].max(reg_ready[inst.src2 as usize]);
            let issue = fetch_cycle.max(rob_ready).max(deps);

            let mut latency = inst.op.base_latency();
            if inst.op.is_memory() {
                let kind = match inst.op {
                    OpClass::Store => AccessKind::Write,
                    OpClass::Atomic => AccessKind::Atomic,
                    _ => AccessKind::Read,
                };
                latency += mem.access(core, inst.addr, kind);
            }
            let complete = issue + latency;
            reg_ready[inst.dst as usize] = complete;
            rob.push_back(complete);
            last_complete = last_complete.max(complete);

            if inst.op == OpClass::Branch && inst.taken {
                let hash = crate::rng::fnv1a(&(self.committed + i).to_le_bytes());
                if (hash % 10_000) as f64 / 10_000.0 < cfg.mispredict_rate {
                    self.mispredicts += 1;
                    // Front end restarts after the branch resolves.
                    fetch_stall_until = complete + cfg.mispredict_penalty;
                }
            }
        }
        let cycles = last_complete.max(budget / cfg.fetch_width).max(1);
        self.committed += budget;
        self.cycles += cycles;
        CpuRunResult {
            instructions: budget,
            cycles,
        }
    }

    fn dump_stats(&self, prefix: &str, stats: &mut Stats) {
        stats.set_count(&format!("{prefix}.committedInsts"), self.committed);
        stats.set_count(&format!("{prefix}.numCycles"), self.cycles);
        stats.set_count(&format!("{prefix}.branchMispredicts"), self.mispredicts);
        stats.set_count(&format!("{prefix}.robStalls"), self.rob_stalls);
        if self.cycles > 0 {
            stats.set_scalar(
                &format!("{prefix}.ipc"),
                self.committed as f64 / self.cycles as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddressProfile, InstMix};
    use crate::mem::{build, MemKind};

    fn run_with(mix: InstMix, budget: u64) -> CpuRunResult {
        let mut cpu = O3Cpu::new(O3Config::default());
        let mut mem = build(MemKind::classic_coherent(), 1);
        let mut stream = InstStream::new("o3", 0, mix, AddressProfile::friendly());
        cpu.run(0, &mut stream, budget, mem.as_mut())
    }

    #[test]
    fn extracts_ilp_from_independent_work() {
        // Pure ALU work: IPC should exceed 1 (wide issue) though
        // dependency chains keep it below the fetch width.
        let result = run_with(InstMix::new(&[(OpClass::IntAlu, 1.0)]), 20_000);
        let ipc = 1.0 / result.cpi();
        assert!(ipc > 1.5, "ipc {ipc}");
        assert!(ipc <= 8.0, "ipc {ipc} cannot beat fetch width");
    }

    #[test]
    fn long_latency_chains_serialize() {
        let div = run_with(InstMix::new(&[(OpClass::FpDiv, 1.0)]), 5_000);
        let alu = run_with(InstMix::new(&[(OpClass::IntAlu, 1.0)]), 5_000);
        assert!(
            div.cpi() > alu.cpi() * 2.0,
            "div {}, alu {}",
            div.cpi(),
            alu.cpi()
        );
    }

    #[test]
    fn smaller_rob_hurts() {
        let mix = InstMix::new(&[(OpClass::Load, 0.4), (OpClass::IntAlu, 0.6)]);
        let cold = AddressProfile {
            working_set: 32 << 20,
            locality: 0.0,
            shared_fraction: 0.0,
        };
        let run = |rob_size| {
            let mut cpu = O3Cpu::new(O3Config {
                rob_size,
                ..O3Config::default()
            });
            let mut mem = build(MemKind::classic_coherent(), 1);
            let mut stream = InstStream::new("o3-rob", 0, mix.clone(), cold);
            cpu.run(0, &mut stream, 20_000, mem.as_mut()).cpi()
        };
        let big = run(192);
        let tiny = run(4);
        assert!(
            tiny > big,
            "tiny-ROB CPI {tiny} should exceed big-ROB CPI {big}"
        );
    }

    #[test]
    fn mispredicts_counted() {
        let mut cpu = O3Cpu::new(O3Config::default());
        let mut mem = build(MemKind::classic_fast(), 1);
        let mix = InstMix::new(&[(OpClass::Branch, 1.0)]);
        let mut stream = InstStream::new("o3-br", 0, mix, AddressProfile::friendly());
        cpu.run(0, &mut stream, 50_000, mem.as_mut());
        assert!(cpu.mispredicts > 100, "mispredicts {}", cpu.mispredicts);
        let mut stats = Stats::new();
        cpu.dump_stats("cpu", &mut stats);
        assert!(stats.count("cpu.branchMispredicts") > 0);
    }

    #[test]
    fn determinism() {
        let a = run_with(InstMix::default_int(), 10_000);
        let b = run_with(InstMix::default_int(), 10_000);
        assert_eq!(a, b);
    }
}
