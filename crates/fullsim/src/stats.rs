//! gem5-style hierarchical statistics.
//!
//! Simulations accumulate named scalar statistics (counters and
//! formulas) under dotted hierarchical names (`system.cpu0.ipc`), and
//! dump them as a sorted text block — the analogue of gem5's
//! `stats.txt` that the paper's framework archives per run.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A single statistic value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StatValue {
    /// Monotonic counter.
    Count(u64),
    /// Derived floating-point quantity (rates, ratios).
    Scalar(f64),
}

impl fmt::Display for StatValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatValue::Count(v) => write!(f, "{v}"),
            StatValue::Scalar(v) => write!(f, "{v:.6}"),
        }
    }
}

/// A registry of named statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    values: BTreeMap<String, StatValue>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Adds `amount` to the counter at `name` (creating it at zero).
    pub fn add(&mut self, name: &str, amount: u64) {
        match self
            .values
            .entry(name.to_owned())
            .or_insert(StatValue::Count(0))
        {
            StatValue::Count(v) => *v += amount,
            StatValue::Scalar(v) => *v += amount as f64,
        }
    }

    /// Increments the counter at `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Sets a counter to an absolute value.
    pub fn set_count(&mut self, name: &str, value: u64) {
        self.values.insert(name.to_owned(), StatValue::Count(value));
    }

    /// Sets a scalar (derived) statistic.
    pub fn set_scalar(&mut self, name: &str, value: f64) {
        self.values
            .insert(name.to_owned(), StatValue::Scalar(value));
    }

    /// Reads a counter (0 when absent).
    pub fn count(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(StatValue::Count(v)) => *v,
            Some(StatValue::Scalar(v)) => *v as u64,
            None => 0,
        }
    }

    /// Reads a statistic as f64 (0.0 when absent).
    pub fn scalar(&self, name: &str) -> f64 {
        match self.values.get(name) {
            Some(StatValue::Count(v)) => *v as f64,
            Some(StatValue::Scalar(v)) => *v,
            None => 0.0,
        }
    }

    /// Whether the statistic exists.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Merges another registry under a prefix (`prefix.name`).
    pub fn absorb(&mut self, prefix: &str, other: &Stats) {
        for (name, value) in &other.values {
            let full = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}.{name}")
            };
            match value {
                StatValue::Count(v) => self.add(&full, *v),
                StatValue::Scalar(v) => self.set_scalar(&full, *v),
            }
        }
    }

    /// Iterates over `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StatValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Statistics under a dotted prefix.
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a StatValue)> {
        self.values
            .iter()
            .filter(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), v))
    }

    /// Number of statistics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Parses a dump produced by [`Stats::dump`] back into a registry.
    ///
    /// Values containing a decimal point load as scalars, others as
    /// counters; the framing lines are ignored. Unparseable lines are
    /// skipped (forward compatibility with annotated dumps).
    pub fn parse_dump(text: &str) -> Stats {
        let mut stats = Stats::new();
        for line in text.lines() {
            if line.starts_with("----------") {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
                continue;
            };
            if value.contains('.') {
                if let Ok(scalar) = value.parse::<f64>() {
                    stats.set_scalar(name, scalar);
                }
            } else if let Ok(count) = value.parse::<u64>() {
                stats.set_count(name, count);
            }
        }
        stats
    }

    /// Renders the registry in gem5 `stats.txt` style.
    pub fn dump(&self) -> String {
        let mut out = String::from("---------- Begin Simulation Statistics ----------\n");
        let width = self.values.keys().map(String::len).max().unwrap_or(0);
        for (name, value) in &self.values {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out.push_str("---------- End Simulation Statistics   ----------\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.incr("cpu0.committedInsts");
        s.add("cpu0.committedInsts", 9);
        assert_eq!(s.count("cpu0.committedInsts"), 10);
        assert_eq!(s.count("missing"), 0);
    }

    #[test]
    fn scalars_and_counts_interconvert_on_read() {
        let mut s = Stats::new();
        s.set_scalar("ipc", 1.5);
        s.set_count("insts", 100);
        assert_eq!(s.scalar("insts"), 100.0);
        assert_eq!(s.count("ipc"), 1);
        assert!(s.contains("ipc"));
    }

    #[test]
    fn absorb_prefixes_names() {
        let mut cpu = Stats::new();
        cpu.set_count("insts", 5);
        cpu.set_scalar("ipc", 0.5);
        let mut system = Stats::new();
        system.absorb("system.cpu0", &cpu);
        assert_eq!(system.count("system.cpu0.insts"), 5);
        assert_eq!(system.scalar("system.cpu0.ipc"), 0.5);
        // Absorbing counters twice accumulates.
        system.absorb("system.cpu0", &cpu);
        assert_eq!(system.count("system.cpu0.insts"), 10);
    }

    #[test]
    fn dump_is_sorted_and_framed() {
        let mut s = Stats::new();
        s.set_count("zzz", 1);
        s.set_count("aaa", 2);
        let dump = s.dump();
        let a = dump.find("aaa").unwrap();
        let z = dump.find("zzz").unwrap();
        assert!(a < z);
        assert!(dump.starts_with("---------- Begin"));
        assert!(dump.ends_with("----------\n"));
    }

    #[test]
    fn dump_parse_round_trip() {
        let mut s = Stats::new();
        s.set_count("system.cpu0.committedInsts", 123_456);
        s.set_scalar("system.cpu0.ipc", 1.25);
        s.set_count("simTicks", 0);
        let parsed = Stats::parse_dump(&s.dump());
        assert_eq!(parsed.count("system.cpu0.committedInsts"), 123_456);
        assert!((parsed.scalar("system.cpu0.ipc") - 1.25).abs() < 1e-9);
        assert!(parsed.contains("simTicks"));
        assert_eq!(parsed.len(), s.len());
    }

    #[test]
    fn parse_dump_skips_garbage() {
        let parsed = Stats::parse_dump("not a stat line\nvalid.count 7\nbad.value xyz\n");
        assert_eq!(parsed.count("valid.count"), 7);
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn prefix_iteration() {
        let mut s = Stats::new();
        s.set_count("cpu0.insts", 1);
        s.set_count("cpu1.insts", 2);
        s.set_count("mem.reads", 3);
        assert_eq!(s.with_prefix("cpu").count(), 2);
        assert_eq!(s.len(), 3);
    }
}
