//! The configuration-compatibility and failure model behind Figure 8.
//!
//! gem5 v20.1 could not run every (CPU model × CPU count × memory
//! system × kernel × boot type) combination; the paper's use-case 2
//! charts which 480 configurations boot. This module reproduces that
//! behaviour:
//!
//! * **Structural rules** (deterministic, mechanistic): the
//!   AtomicSimpleCPU requires the Classic memory system; timing CPUs
//!   (TimingSimple, O3) cannot keep caches consistent on a
//!   non-coherent Classic crossbar with more than one core; KVM works
//!   everywhere.
//! * **O3 defect model**: for the remaining O3 configurations the paper
//!   reports ≈40 % success with 27 kernel panics, 11 simulator
//!   segfaults, 4 `MI_example` protocol deadlocks and the rest
//!   timeouts. The concrete failing cells are not enumerable from the
//!   paper, so we assign outcome classes deterministically (by
//!   configuration fingerprint) while matching those aggregate counts
//!   exactly.

use crate::cpu::CpuKind;
use crate::kernel::{BootKind, BootStage, KernelVersion};
use crate::mem::MemKind;
use crate::rng::fnv1a;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome classes of a full-system boot attempt.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BootOutcome {
    /// The system booted and exited cleanly.
    Success,
    /// The configuration is rejected before simulation starts.
    Unsupported {
        /// Why the simulator refuses the configuration.
        reason: String,
    },
    /// The guest kernel panicked during the given stage.
    KernelPanic {
        /// Stage during which the panic occurred.
        stage: BootStage,
    },
    /// The simulator itself crashed (segmentation fault).
    SimulatorCrash,
    /// The coherence protocol reported "possible deadlock detected".
    ProtocolDeadlock,
    /// The run exceeded its time limit without finishing.
    Timeout,
}

impl BootOutcome {
    /// Whether the boot completed.
    pub fn is_success(&self) -> bool {
        matches!(self, BootOutcome::Success)
    }

    /// Short label used in result tables.
    pub fn label(&self) -> &'static str {
        match self {
            BootOutcome::Success => "success",
            BootOutcome::Unsupported { .. } => "unsupported",
            BootOutcome::KernelPanic { .. } => "kernel-panic",
            BootOutcome::SimulatorCrash => "sim-crash",
            BootOutcome::ProtocolDeadlock => "deadlock",
            BootOutcome::Timeout => "timeout",
        }
    }
}

impl fmt::Display for BootOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootOutcome::Unsupported { reason } => write!(f, "unsupported: {reason}"),
            BootOutcome::KernelPanic { stage } => write!(f, "kernel panic during {stage}"),
            other => f.write_str(other.label()),
        }
    }
}

/// The knobs Figure 8 crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BootConfig {
    /// CPU model.
    pub cpu: CpuKind,
    /// Number of cores.
    pub cores: u32,
    /// Memory system.
    pub mem: MemKind,
    /// Kernel version.
    pub kernel: KernelVersion,
    /// Boot target.
    pub boot: BootKind,
}

impl BootConfig {
    fn fingerprint(&self) -> u64 {
        fnv1a(
            format!(
                "{}/{}/{}/{}/{}",
                self.cpu, self.cores, self.mem, self.kernel, self.boot
            )
            .as_bytes(),
        )
    }
}

/// The core counts Figure 8 crosses.
pub const FIGURE8_CORE_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// Enumerates all 480 Figure 8 configurations in canonical order.
pub fn figure8_configs() -> Vec<BootConfig> {
    let mut configs = Vec::with_capacity(480);
    for kernel in KernelVersion::FIGURE8 {
        for cpu in CpuKind::FIGURE8 {
            for mem in MemKind::FIGURE8 {
                for cores in FIGURE8_CORE_COUNTS {
                    for boot in [BootKind::KernelOnly, BootKind::Systemd] {
                        configs.push(BootConfig {
                            cpu,
                            cores,
                            mem,
                            kernel,
                            boot,
                        });
                    }
                }
            }
        }
    }
    configs
}

/// Structural support check (the mechanistic rules).
///
/// Returns `None` when the configuration can at least start simulating,
/// or the `Unsupported` outcome otherwise.
pub fn structural_check(config: &BootConfig) -> Option<BootOutcome> {
    let unsupported = |reason: &str| {
        Some(BootOutcome::Unsupported {
            reason: reason.to_owned(),
        })
    };
    match (config.cpu, config.mem) {
        (CpuKind::AtomicSimple, MemKind::RubyMi | MemKind::RubyMesiTwoLevel) => unsupported(
            "AtomicSimpleCPU issues atomic accesses, which the Ruby transaction model cannot service",
        ),
        (CpuKind::TimingSimple | CpuKind::O3, MemKind::Classic { coherent: false })
            if config.cores > 1 =>
        {
            unsupported(
                "Classic memory without a coherent crossbar cannot keep multi-core caches consistent",
            )
        }
        _ => None,
    }
}

/// Aggregate O3 failure counts matching the paper's narration.
pub mod o3_counts {
    /// Kernel panics among supported O3 runs.
    pub const PANICS: usize = 27;
    /// Simulator segmentation faults.
    pub const CRASHES: usize = 11;
    /// `MI_example` "possible deadlock detected" failures.
    pub const DEADLOCKS: usize = 4;
    /// Runs exceeding the 24 h limit.
    pub const TIMEOUTS: usize = 12;
}

/// Evaluates a boot configuration, returning its outcome.
///
/// Deterministic: the same configuration always yields the same
/// outcome, and the aggregate outcome counts over the full Figure 8
/// cross-product match the paper.
pub fn evaluate(config: &BootConfig) -> BootOutcome {
    if let Some(unsupported) = structural_check(config) {
        return unsupported;
    }
    match config.cpu {
        // kvm "works in all cases"; Atomic and Timing work in all
        // *supported* cases.
        CpuKind::Kvm | CpuKind::AtomicSimple | CpuKind::TimingSimple => BootOutcome::Success,
        CpuKind::O3 => o3_outcome(config),
    }
}

fn o3_outcome(config: &BootConfig) -> BootOutcome {
    // Collect every supported O3 config of the Figure 8 space, ordered
    // by fingerprint: a stable, pseudo-random shuffle of the matrix.
    let mut supported: Vec<BootConfig> = figure8_configs()
        .into_iter()
        .filter(|c| c.cpu == CpuKind::O3 && structural_check(c).is_none())
        .collect();
    supported.sort_by_key(BootConfig::fingerprint);

    // Deadlocks can only strike MI_example: take the first 4 MI configs.
    let deadlocks: Vec<BootConfig> = supported
        .iter()
        .filter(|c| c.mem == MemKind::RubyMi)
        .take(o3_counts::DEADLOCKS)
        .copied()
        .collect();
    if deadlocks.contains(config) {
        return BootOutcome::ProtocolDeadlock;
    }

    let rest: Vec<BootConfig> = supported
        .into_iter()
        .filter(|c| !deadlocks.contains(c))
        .collect();
    match rest.iter().position(|c| c == config) {
        Some(rank) if rank < o3_counts::PANICS => {
            // Panics strike mid-boot; pick the stage from the fingerprint.
            let stages = [
                BootStage::EarlyMm,
                BootStage::SchedInit,
                BootStage::DriverProbe,
                BootStage::RootfsMount,
                BootStage::InitSystem,
            ];
            let stage = stages[(config.fingerprint() % stages.len() as u64) as usize];
            BootOutcome::KernelPanic { stage }
        }
        Some(rank) if rank < o3_counts::PANICS + o3_counts::CRASHES => BootOutcome::SimulatorCrash,
        Some(rank) if rank < o3_counts::PANICS + o3_counts::CRASHES + o3_counts::TIMEOUTS => {
            BootOutcome::Timeout
        }
        Some(_) => BootOutcome::Success,
        // Not part of the Figure 8 space (e.g. coherent Classic, other
        // kernels): O3 boots fine there.
        None => BootOutcome::Success,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_space_has_480_configs() {
        assert_eq!(figure8_configs().len(), 480);
    }

    #[test]
    fn kvm_succeeds_everywhere() {
        for config in figure8_configs().iter().filter(|c| c.cpu == CpuKind::Kvm) {
            assert_eq!(evaluate(config), BootOutcome::Success, "{config:?}");
        }
    }

    #[test]
    fn atomic_fails_on_ruby_succeeds_on_classic() {
        for config in figure8_configs()
            .iter()
            .filter(|c| c.cpu == CpuKind::AtomicSimple)
        {
            let outcome = evaluate(config);
            match config.mem {
                MemKind::Classic { .. } => assert!(outcome.is_success(), "{config:?}"),
                _ => assert!(
                    matches!(outcome, BootOutcome::Unsupported { .. }),
                    "{config:?} -> {outcome}"
                ),
            }
        }
    }

    #[test]
    fn timing_fails_only_multicore_incoherent_classic() {
        for config in figure8_configs()
            .iter()
            .filter(|c| c.cpu == CpuKind::TimingSimple)
        {
            let outcome = evaluate(config);
            let should_fail =
                config.mem == MemKind::Classic { coherent: false } && config.cores > 1;
            assert_eq!(
                !outcome.is_success(),
                should_fail,
                "{config:?} -> {outcome}"
            );
        }
    }

    #[test]
    fn o3_aggregate_counts_match_the_paper() {
        let mut success = 0;
        let mut panic = 0;
        let mut crash = 0;
        let mut deadlock = 0;
        let mut timeout = 0;
        let mut unsupported = 0;
        for config in figure8_configs().iter().filter(|c| c.cpu == CpuKind::O3) {
            match evaluate(config) {
                BootOutcome::Success => success += 1,
                BootOutcome::KernelPanic { .. } => panic += 1,
                BootOutcome::SimulatorCrash => crash += 1,
                BootOutcome::ProtocolDeadlock => deadlock += 1,
                BootOutcome::Timeout => timeout += 1,
                BootOutcome::Unsupported { .. } => unsupported += 1,
            }
        }
        assert_eq!(panic, o3_counts::PANICS);
        assert_eq!(crash, o3_counts::CRASHES);
        assert_eq!(deadlock, o3_counts::DEADLOCKS);
        assert_eq!(timeout, o3_counts::TIMEOUTS);
        assert_eq!(
            unsupported, 30,
            "5 kernels x {{2,4,8}} cores x 2 boots on Classic"
        );
        assert_eq!(
            success + panic + crash + deadlock + timeout + unsupported,
            120
        );
        // "approximately 40% of them running successfully"
        let rate = success as f64 / (120 - unsupported) as f64;
        assert!((0.35..=0.45).contains(&rate), "O3 success rate {rate}");
    }

    #[test]
    fn deadlocks_only_on_mi_example() {
        for config in figure8_configs() {
            if evaluate(&config) == BootOutcome::ProtocolDeadlock {
                assert_eq!(config.mem, MemKind::RubyMi, "{config:?}");
            }
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        for config in figure8_configs() {
            assert_eq!(evaluate(&config), evaluate(&config));
        }
    }

    #[test]
    fn coherent_classic_multicore_timing_is_fine() {
        // The PARSEC (use-case 1) configuration: TimingSimple, 8 cores,
        // coherent Classic.
        let config = BootConfig {
            cpu: CpuKind::TimingSimple,
            cores: 8,
            mem: MemKind::classic_coherent(),
            kernel: KernelVersion::V4_15,
            boot: BootKind::Systemd,
        };
        assert!(evaluate(&config).is_success());
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(BootOutcome::Success.label(), "success");
        assert_eq!(BootOutcome::Timeout.label(), "timeout");
        assert_eq!(
            BootOutcome::KernelPanic {
                stage: BootStage::DriverProbe
            }
            .to_string(),
            "kernel panic during driver-probe"
        );
    }
}
