//! Ruby-style directory coherence: the `MI_example` and
//! `MESI_Two_Level` protocols.
//!
//! These are real line-state machines, not latency tables: every L1
//! keeps per-line coherence state, a directory tracks owners and
//! sharers, and protocol transitions (fetches, forwards, invalidations,
//! downgrades) both cost latency and are counted in the statistics.
//! MI's pathology — *every* access needs exclusive ownership, so
//! read-shared lines ping-pong — emerges directly from the state
//! machine, as does MESI's cheap read sharing.

use super::cache::SetAssocCache;
use super::dram::Ddr3Channel;
use super::{AccessKind, MemKind, MemorySystem};
use crate::stats::Stats;
use std::collections::HashMap;

/// Coherence state of a line in an L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoState {
    /// Modified: exclusive and dirty.
    M,
    /// Exclusive: exclusive and clean (MESI only).
    E,
    /// Shared: read-only copy (MESI only).
    S,
}

/// Protocol selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Two-state MI: every access requires exclusive ownership.
    Mi,
    /// MESI with a shared inclusive L2.
    MesiTwoLevel,
}

#[derive(Debug, Default, Clone)]
struct DirEntry {
    owner: Option<usize>,
    sharers: u64,
}

/// Latency constants in CPU cycles (Ruby pays more per hop than the
/// Classic stack — "slower but models detailed memory").
mod lat {
    /// L1 hit under Ruby.
    pub const L1: u64 = 3;
    /// Directory lookup.
    pub const DIR: u64 = 18;
    /// Forward/invalidate round-trip to a remote L1.
    pub const REMOTE: u64 = 38;
    /// Shared L2 hit (MESI only).
    pub const L2: u64 = 14;
}

/// A directory-based coherent memory system.
#[derive(Debug)]
pub struct RubySystem {
    protocol: Protocol,
    l1: Vec<SetAssocCache<CoState>>,
    l2: SetAssocCache<bool>,
    dram: Ddr3Channel,
    directory: HashMap<u64, DirEntry>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    downgrades: u64,
    forwards: u64,
    writebacks: u64,
    upgrades: u64,
}

impl RubySystem {
    /// Builds an `MI_example` system.
    pub fn new_mi(cores: usize) -> RubySystem {
        Self::new(Protocol::Mi, cores)
    }

    /// Builds a `MESI_Two_Level` system.
    pub fn new_mesi(cores: usize) -> RubySystem {
        Self::new(Protocol::MesiTwoLevel, cores)
    }

    fn new(protocol: Protocol, cores: usize) -> RubySystem {
        RubySystem {
            protocol,
            l1: (0..cores)
                .map(|_| SetAssocCache::new(32 * 1024, 8))
                .collect(),
            l2: SetAssocCache::new(1024 * 1024, 16),
            dram: Ddr3Channel::new(),
            directory: HashMap::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
            downgrades: 0,
            forwards: 0,
            writebacks: 0,
            upgrades: 0,
        }
    }

    /// The active protocol.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Coherence state of `addr` in `core`'s L1, if resident. Exposed
    /// so external invariant checks (e.g. property tests asserting
    /// single-writer/multiple-reader safety) can observe protocol state
    /// without touching it.
    pub fn l1_state(&self, core: usize, addr: u64) -> Option<CoState> {
        self.l1[core].peek(addr).copied()
    }

    fn line(addr: u64) -> u64 {
        addr / super::cache::LINE_BYTES
    }

    /// Invalidates every remote copy of `addr`, returning added latency.
    fn invalidate_remotes(&mut self, requester: usize, addr: u64) -> u64 {
        let line = Self::line(addr);
        let entry = self.directory.entry(line).or_default().clone();
        let mut extra = 0;
        if let Some(owner) = entry.owner {
            if owner != requester {
                if let Some(state) = self.l1[owner].invalidate(addr) {
                    self.forwards += 1;
                    extra += lat::REMOTE;
                    if state == CoState::M {
                        self.writebacks += 1;
                    }
                }
            }
        }
        let mut sharers = entry.sharers;
        while sharers != 0 {
            let core = sharers.trailing_zeros() as usize;
            sharers &= sharers - 1;
            if core != requester && self.l1[core].invalidate(addr).is_some() {
                self.invalidations += 1;
                extra += lat::REMOTE / 2; // invalidations pipeline
            }
        }
        let entry = self.directory.entry(line).or_default();
        entry.owner = None;
        entry.sharers = 0;
        extra
    }

    /// Downgrades a remote M/E owner to S (MESI read), returning latency.
    fn downgrade_owner(&mut self, requester: usize, addr: u64) -> u64 {
        let line = Self::line(addr);
        let entry = self.directory.entry(line).or_default();
        let owner = entry.owner;
        let mut extra = 0;
        if let Some(owner) = owner {
            if owner != requester {
                if let Some(state) = self.l1[owner].probe(addr) {
                    if matches!(*state, CoState::M | CoState::E) {
                        if *state == CoState::M {
                            self.writebacks += 1;
                        }
                        *state = CoState::S;
                        self.downgrades += 1;
                        extra += lat::REMOTE;
                    }
                }
                let entry = self.directory.entry(line).or_default();
                entry.owner = None;
                entry.sharers |= 1 << owner;
            }
        }
        extra
    }

    fn fill_l1(&mut self, core: usize, addr: u64, state: CoState) {
        if let Some((victim_addr, victim_state)) = self.l1[core].insert(addr, state) {
            // Keep the directory consistent with the eviction.
            let line = Self::line(victim_addr);
            if let Some(entry) = self.directory.get_mut(&line) {
                if entry.owner == Some(core) {
                    entry.owner = None;
                }
                entry.sharers &= !(1 << core);
            }
            if victim_state == CoState::M {
                self.writebacks += 1;
            }
        }
    }

    fn record_dir(&mut self, core: usize, addr: u64, state: CoState) {
        let entry = self.directory.entry(Self::line(addr)).or_default();
        match state {
            CoState::M | CoState::E => {
                entry.owner = Some(core);
                entry.sharers = 0;
            }
            CoState::S => {
                entry.sharers |= 1 << core;
            }
        }
    }

    fn l2_or_dram(&mut self, addr: u64, is_write: bool) -> u64 {
        if self.protocol == Protocol::MesiTwoLevel {
            if self.l2.probe(addr).is_some() {
                return lat::L2;
            }
            let latency = lat::L2 + self.dram.access(addr, is_write);
            if let Some((victim, _)) = self.l2.insert(addr, false) {
                // Inclusive L2: back-invalidate L1 copies of the victim.
                for core in 0..self.l1.len() {
                    if self.l1[core].invalidate(victim).is_some() {
                        self.invalidations += 1;
                    }
                }
                self.directory.remove(&Self::line(victim));
            }
            latency
        } else {
            self.dram.access(addr, is_write)
        }
    }

    fn access_mi(&mut self, core: usize, addr: u64, _kind: AccessKind) -> u64 {
        // MI: any access needs the line in M.
        if self.l1[core].probe(addr).is_some() {
            self.hits += 1;
            return lat::L1;
        }
        self.misses += 1;
        let mut latency = lat::L1 + lat::DIR;
        let owner = self.directory.get(&Self::line(addr)).and_then(|e| e.owner);
        let had_remote_owner = matches!(owner, Some(o) if o != core);
        latency += self.invalidate_remotes(core, addr);
        if !had_remote_owner {
            // No remote copy to forward from: fetch from memory.
            latency += self.l2_or_dram(addr, true);
        }
        self.fill_l1(core, addr, CoState::M);
        self.record_dir(core, addr, CoState::M);
        latency
    }

    fn access_mesi(&mut self, core: usize, addr: u64, kind: AccessKind) -> u64 {
        let needs_write = kind.needs_write();
        if let Some(state) = self.l1[core].probe(addr) {
            match (*state, needs_write) {
                (CoState::M, _) | (CoState::E, false) | (CoState::S, false) => {
                    self.hits += 1;
                    return lat::L1;
                }
                (CoState::E, true) => {
                    // Silent E -> M upgrade.
                    *state = CoState::M;
                    self.hits += 1;
                    self.record_dir(core, addr, CoState::M);
                    return lat::L1;
                }
                (CoState::S, true) => {
                    // Upgrade: invalidate other sharers.
                    self.upgrades += 1;
                    let extra = self.invalidate_remotes(core, addr);
                    let state = self.l1[core]
                        .probe(addr)
                        .expect("line resident during upgrade");
                    *state = CoState::M;
                    self.record_dir(core, addr, CoState::M);
                    return lat::L1 + lat::DIR + extra;
                }
            }
        }
        // Miss.
        self.misses += 1;
        let mut latency = lat::L1 + lat::DIR;
        if needs_write {
            let had_remote_owner = matches!(
                self.directory.get(&Self::line(addr)).and_then(|e| e.owner),
                Some(o) if o != core
            );
            latency += self.invalidate_remotes(core, addr);
            if !had_remote_owner {
                latency += self.l2_or_dram(addr, true);
            }
            self.fill_l1(core, addr, CoState::M);
            self.record_dir(core, addr, CoState::M);
        } else {
            let forwarded = self.downgrade_owner(core, addr);
            latency += forwarded;
            let entry = self.directory.entry(Self::line(addr)).or_default();
            let has_sharers = entry.sharers != 0;
            if forwarded == 0 {
                // No owner forwarded the data; fetch it from L2/DRAM.
                latency += self.l2_or_dram(addr, false);
            }
            let grant = if has_sharers { CoState::S } else { CoState::E };
            self.fill_l1(core, addr, grant);
            self.record_dir(core, addr, grant);
        }
        latency
    }
}

impl MemorySystem for RubySystem {
    fn access(&mut self, core: usize, addr: u64, kind: AccessKind) -> u64 {
        match self.protocol {
            Protocol::Mi => self.access_mi(core, addr, kind),
            Protocol::MesiTwoLevel => self.access_mesi(core, addr, kind),
        }
    }

    fn kind(&self) -> MemKind {
        match self.protocol {
            Protocol::Mi => MemKind::RubyMi,
            Protocol::MesiTwoLevel => MemKind::RubyMesiTwoLevel,
        }
    }

    fn dump_stats(&self, prefix: &str, stats: &mut Stats) {
        stats.set_count(&format!("{prefix}.hits"), self.hits);
        stats.set_count(&format!("{prefix}.misses"), self.misses);
        stats.set_count(&format!("{prefix}.invalidations"), self.invalidations);
        stats.set_count(&format!("{prefix}.downgrades"), self.downgrades);
        stats.set_count(&format!("{prefix}.forwards"), self.forwards);
        stats.set_count(&format!("{prefix}.writebacks"), self.writebacks);
        stats.set_count(&format!("{prefix}.upgrades"), self.upgrades);
        self.dram.dump_stats(&format!("{prefix}.dram"), stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SWMR safety check: at any point, a line is either in M/E at
    /// exactly one core, or in S at any number of cores — never both.
    fn assert_swmr(sys: &RubySystem, addr: u64) {
        let mut exclusive = 0;
        let mut shared = 0;
        for l1 in &sys.l1 {
            match l1.peek(addr) {
                Some(CoState::M) | Some(CoState::E) => exclusive += 1,
                Some(CoState::S) => shared += 1,
                None => {}
            }
        }
        assert!(
            exclusive <= 1 && (exclusive == 0 || shared == 0),
            "SWMR violated: {exclusive} exclusive, {shared} shared"
        );
    }

    #[test]
    fn mi_read_sharing_ping_pongs() {
        let mut sys = RubySystem::new_mi(2);
        let addr = 0x9000;
        sys.access(0, addr, AccessKind::Read);
        assert_swmr(&sys, addr);
        // A second core reading the same line must steal exclusive
        // ownership under MI.
        let steal = sys.access(1, addr, AccessKind::Read);
        assert!(steal > lat::L1 + lat::DIR);
        assert_eq!(sys.forwards, 1);
        assert_swmr(&sys, addr);
        // And back again: the ping-pong that makes MI slow.
        sys.access(0, addr, AccessKind::Read);
        assert_eq!(sys.forwards, 2);
    }

    #[test]
    fn mesi_read_sharing_is_cheap() {
        let mut sys = RubySystem::new_mesi(4);
        let addr = 0x9000;
        sys.access(0, addr, AccessKind::Read); // E at core 0
        sys.access(1, addr, AccessKind::Read); // downgrade to S, share
        sys.access(2, addr, AccessKind::Read);
        assert_swmr(&sys, addr);
        // Re-reads all hit locally — no more protocol traffic.
        let forwards_before = sys.forwards + sys.invalidations + sys.downgrades;
        for core in 0..3 {
            assert_eq!(sys.access(core, addr, AccessKind::Read), lat::L1);
        }
        assert_eq!(
            sys.forwards + sys.invalidations + sys.downgrades,
            forwards_before
        );
    }

    #[test]
    fn mesi_first_read_grants_exclusive() {
        let mut sys = RubySystem::new_mesi(2);
        sys.access(0, 0x9000, AccessKind::Read);
        assert_eq!(sys.l1[0].peek(0x9000), Some(&CoState::E));
        // Silent E->M upgrade on write: a pure L1 hit.
        let write = sys.access(0, 0x9000, AccessKind::Write);
        assert_eq!(write, lat::L1);
        assert_eq!(sys.l1[0].peek(0x9000), Some(&CoState::M));
    }

    #[test]
    fn mesi_write_to_shared_invalidates() {
        let mut sys = RubySystem::new_mesi(4);
        let addr = 0xa000;
        for core in 0..4 {
            sys.access(core, addr, AccessKind::Read);
        }
        let upgrade = sys.access(2, addr, AccessKind::Write);
        assert!(upgrade > lat::L1);
        assert!(sys.invalidations >= 3);
        assert_eq!(sys.l1[2].peek(addr), Some(&CoState::M));
        for core in [0usize, 1, 3] {
            assert_eq!(sys.l1[core].peek(addr), None);
        }
        assert_swmr(&sys, addr);
    }

    #[test]
    fn mesi_dirty_data_forwards_with_writeback() {
        let mut sys = RubySystem::new_mesi(2);
        let addr = 0xb000;
        sys.access(0, addr, AccessKind::Write); // M at core 0
        sys.access(1, addr, AccessKind::Read); // must downgrade + writeback
        assert_eq!(sys.writebacks, 1);
        assert_eq!(sys.downgrades, 1);
        assert_eq!(sys.l1[0].peek(addr), Some(&CoState::S));
        assert_swmr(&sys, addr);
    }

    #[test]
    fn swmr_holds_under_random_traffic() {
        use crate::rng::DetRng;
        for protocol in [Protocol::Mi, Protocol::MesiTwoLevel] {
            let mut sys = RubySystem::new(protocol, 4);
            let mut rng = DetRng::from_label("swmr-traffic");
            let addrs: Vec<u64> = (0..16).map(|i| 0xc000 + i * 64).collect();
            for _ in 0..2000 {
                let core = rng.below(4) as usize;
                let addr = addrs[rng.below(16) as usize];
                let kind = if rng.chance(0.3) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                sys.access(core, addr, kind);
            }
            for addr in addrs {
                assert_swmr(&sys, addr);
            }
        }
    }

    #[test]
    fn mi_is_slower_than_mesi_on_read_shared_data() {
        let run = |mut sys: RubySystem| {
            let mut total = 0;
            for round in 0..200 {
                for core in 0..4 {
                    let _ = round;
                    total += sys.access(core, 0xd000, AccessKind::Read);
                }
            }
            total
        };
        let mi = run(RubySystem::new_mi(4));
        let mesi = run(RubySystem::new_mesi(4));
        assert!(mi > mesi * 3, "MI {mi} should dwarf MESI {mesi}");
    }

    #[test]
    fn stats_dump_contains_protocol_counters() {
        let mut sys = RubySystem::new_mesi(2);
        sys.access(0, 0x1000, AccessKind::Read);
        sys.access(1, 0x1000, AccessKind::Write);
        let mut stats = Stats::new();
        sys.dump_stats("ruby", &mut stats);
        assert!(stats.contains("ruby.misses"));
        assert!(stats.contains("ruby.dram.reads"));
    }
}
