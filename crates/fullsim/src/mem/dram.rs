//! DDR3-1600 8x8 main-memory timing model.
//!
//! Models the device the paper configures for both use-case 1 and 3:
//! one channel of DDR3_1600_8x8. Timing follows the standard bank/row
//! structure: an access to an open row costs CAS only; a row conflict
//! pays precharge + activate + CAS. A simple channel-occupancy term
//! models burst contention.

use crate::stats::Stats;

/// Number of banks per rank for the modeled device.
const BANKS: usize = 8;
/// Row size in bytes (8K columns x 8 devices / 8 bits).
const ROW_BYTES: u64 = 8 * 1024;

/// DDR3-1600 timings, expressed in CPU cycles at the simulator's
/// reference 2 GHz core clock (1 ns = 2 cycles).
mod timing {
    /// CAS latency (13.75 ns).
    pub const T_CL: u64 = 28;
    /// RAS-to-CAS delay (13.75 ns).
    pub const T_RCD: u64 = 28;
    /// Row precharge (13.75 ns).
    pub const T_RP: u64 = 28;
    /// Data burst occupancy of the channel (5 ns).
    pub const T_BURST: u64 = 10;
}

/// One channel of DDR3-1600 with open-page policy.
#[derive(Debug, Clone)]
pub struct Ddr3Channel {
    open_rows: [Option<u64>; BANKS],
    /// Monotonic access counter standing in for wall-clock channel time;
    /// consecutive accesses to the same bank pay a queueing penalty.
    last_bank_access: [u64; BANKS],
    access_clock: u64,
    reads: u64,
    writes: u64,
    row_hits: u64,
    row_conflicts: u64,
}

impl Default for Ddr3Channel {
    fn default() -> Self {
        Self::new()
    }
}

impl Ddr3Channel {
    /// Creates an idle channel with all rows closed.
    pub fn new() -> Ddr3Channel {
        Ddr3Channel {
            open_rows: [None; BANKS],
            last_bank_access: [0; BANKS],
            access_clock: 0,
            reads: 0,
            writes: 0,
            row_hits: 0,
            row_conflicts: 0,
        }
    }

    fn bank_of(addr: u64) -> usize {
        // Bank bits above the row offset: interleave rows across banks.
        ((addr / ROW_BYTES) as usize) % BANKS
    }

    fn row_of(addr: u64) -> u64 {
        addr / (ROW_BYTES * BANKS as u64)
    }

    /// Performs one access, returning its latency in CPU cycles.
    pub fn access(&mut self, addr: u64, is_write: bool) -> u64 {
        self.access_clock += 1;
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        let bank = Self::bank_of(addr);
        let row = Self::row_of(addr);
        let mut latency = timing::T_BURST;
        match self.open_rows[bank] {
            Some(open) if open == row => {
                self.row_hits += 1;
                latency += timing::T_CL;
            }
            Some(_) => {
                self.row_conflicts += 1;
                latency += timing::T_RP + timing::T_RCD + timing::T_CL;
            }
            None => {
                latency += timing::T_RCD + timing::T_CL;
            }
        }
        self.open_rows[bank] = Some(row);
        // Bank-level queueing: immediately back-to-back requests to one
        // bank serialize behind the previous burst.
        if self.access_clock - self.last_bank_access[bank] <= 1 {
            latency += timing::T_BURST;
        }
        self.last_bank_access[bank] = self.access_clock;
        latency
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate over accesses that found a row open.
    pub fn row_hit_rate(&self) -> f64 {
        let decided = self.row_hits + self.row_conflicts;
        if decided == 0 {
            0.0
        } else {
            self.row_hits as f64 / decided as f64
        }
    }

    /// Dumps channel statistics under `prefix`.
    pub fn dump_stats(&self, prefix: &str, stats: &mut Stats) {
        stats.set_count(&format!("{prefix}.reads"), self.reads);
        stats.set_count(&format!("{prefix}.writes"), self.writes);
        stats.set_count(&format!("{prefix}.rowHits"), self.row_hits);
        stats.set_count(&format!("{prefix}.rowConflicts"), self.row_conflicts);
        stats.set_scalar(&format!("{prefix}.rowHitRate"), self.row_hit_rate());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_mostly_row_hits() {
        let mut dram = Ddr3Channel::new();
        // Touch a row once to open it, then stream within it.
        let mut total = 0;
        for i in 0..128u64 {
            total += dram.access(i * 64, false);
        }
        assert!(
            dram.row_hit_rate() > 0.9,
            "hit rate {}",
            dram.row_hit_rate()
        );
        assert!(total > 0);
    }

    #[test]
    fn row_conflicts_cost_more_than_hits() {
        let mut dram = Ddr3Channel::new();
        dram.access(0, false); // open row 0 of bank 0
        let hit = dram.access(64, false); // same row
                                          // Same bank, different row -> conflict. Next row in the same
                                          // bank is ROW_BYTES * BANKS away.
        let conflict = dram.access(ROW_BYTES * BANKS as u64, false);
        assert!(conflict > hit, "conflict {conflict} <= hit {hit}");
    }

    #[test]
    fn first_touch_is_activate_not_conflict() {
        let mut dram = Ddr3Channel::new();
        dram.access(0, false);
        assert_eq!(dram.row_hit_rate(), 0.0);
        let mut d2 = Ddr3Channel::new();
        let first = d2.access(0, false);
        d2.access(ROW_BYTES * BANKS as u64, true);
        let conflict = d2.access(0, false);
        assert!(first < conflict);
    }

    #[test]
    fn accesses_tally_reads_and_writes() {
        let mut dram = Ddr3Channel::new();
        dram.access(0, false);
        dram.access(64, true);
        assert_eq!(dram.accesses(), 2);
        let mut stats = Stats::new();
        dram.dump_stats("mem.dram", &mut stats);
        assert_eq!(stats.count("mem.dram.reads"), 1);
        assert_eq!(stats.count("mem.dram.writes"), 1);
    }

    #[test]
    fn bank_interleave_spreads_rows() {
        let addrs = [0u64, ROW_BYTES, ROW_BYTES * 2, ROW_BYTES * 7];
        let banks: Vec<usize> = addrs.iter().map(|a| Ddr3Channel::bank_of(*a)).collect();
        assert_eq!(banks, vec![0, 1, 2, 7]);
    }
}
