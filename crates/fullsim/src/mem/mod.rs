//! Memory systems: the *Classic* hierarchy and *Ruby*-style coherence
//! protocols over a DDR3 timing model.
//!
//! Mirrors the two gem5 memory stacks the paper's use-case 2 crosses:
//!
//! * **Classic** — fast, latency-based caches. Optionally built with a
//!   coherent crossbar; without it, multi-core timing CPUs are
//!   unsupported (the configuration class that fails in Figure 8).
//! * **Ruby** — directory-based coherence with real per-line state
//!   machines: the minimal `MI_example` protocol and the
//!   `MESI_Two_Level` protocol.

pub mod cache;
pub mod classic;
pub mod code;
pub mod dram;
pub mod ruby;

use crate::stats::Stats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of memory access a CPU issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Atomic read-modify-write (lock/barrier traffic).
    Atomic,
}

impl AccessKind {
    /// Whether the access needs write permission on the line.
    pub fn needs_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Atomic)
    }
}

/// Memory-system configuration selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemKind {
    /// Classic hierarchy. `coherent` selects a coherent crossbar
    /// between the private L1s.
    Classic {
        /// Whether L1s snoop a coherent crossbar.
        coherent: bool,
    },
    /// Ruby with the MI_example protocol.
    RubyMi,
    /// Ruby with the MESI_Two_Level protocol.
    RubyMesiTwoLevel,
}

impl MemKind {
    /// Classic memory as configured by the paper's boot-exit script
    /// (fast, but without coherence fidelity).
    pub fn classic_fast() -> MemKind {
        MemKind::Classic { coherent: false }
    }

    /// Classic memory with a coherent crossbar (as used for the PARSEC
    /// multi-core runs).
    pub fn classic_coherent() -> MemKind {
        MemKind::Classic { coherent: true }
    }

    /// Whether this memory system keeps multi-core caches coherent.
    pub fn supports_multicore_timing(self) -> bool {
        !matches!(self, MemKind::Classic { coherent: false })
    }

    /// The three memory systems crossed by the paper's Figure 8.
    pub const FIGURE8: [MemKind; 3] = [
        MemKind::Classic { coherent: false },
        MemKind::RubyMi,
        MemKind::RubyMesiTwoLevel,
    ];
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Classic { coherent: false } => f.write_str("Classic"),
            MemKind::Classic { coherent: true } => f.write_str("Classic(coherent)"),
            MemKind::RubyMi => f.write_str("MI_example"),
            MemKind::RubyMesiTwoLevel => f.write_str("MESI_Two_Level"),
        }
    }
}

/// A memory system as seen by the CPU models: per-access timing plus
/// statistics.
pub trait MemorySystem {
    /// Performs an access from `core`, returning its latency in CPU
    /// cycles.
    fn access(&mut self, core: usize, addr: u64, kind: AccessKind) -> u64;

    /// Which configuration this system implements.
    fn kind(&self) -> MemKind;

    /// Dumps accumulated statistics into `stats` under `prefix`.
    fn dump_stats(&self, prefix: &str, stats: &mut Stats);
}

/// Builds the memory system for `kind` serving `cores` CPUs.
pub fn build(kind: MemKind, cores: usize) -> Box<dyn MemorySystem> {
    match kind {
        MemKind::Classic { coherent } => Box::new(classic::ClassicMemory::new(cores, coherent)),
        MemKind::RubyMi => Box::new(ruby::RubySystem::new_mi(cores)),
        MemKind::RubyMesiTwoLevel => Box::new(ruby::RubySystem::new_mesi(cores)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(MemKind::classic_fast().to_string(), "Classic");
        assert_eq!(MemKind::RubyMi.to_string(), "MI_example");
        assert_eq!(MemKind::RubyMesiTwoLevel.to_string(), "MESI_Two_Level");
    }

    #[test]
    fn coherence_support_flags() {
        assert!(!MemKind::classic_fast().supports_multicore_timing());
        assert!(MemKind::classic_coherent().supports_multicore_timing());
        assert!(MemKind::RubyMi.supports_multicore_timing());
        assert!(MemKind::RubyMesiTwoLevel.supports_multicore_timing());
    }

    #[test]
    fn build_constructs_every_kind() {
        for kind in [
            MemKind::classic_fast(),
            MemKind::classic_coherent(),
            MemKind::RubyMi,
            MemKind::RubyMesiTwoLevel,
        ] {
            let mut mem = build(kind, 2);
            assert_eq!(mem.kind(), kind);
            let latency = mem.access(0, 0x1000, AccessKind::Read);
            assert!(latency > 0);
        }
    }
}
