//! A generic set-associative cache with true LRU replacement.
//!
//! The per-line payload type `S` carries whatever state the enclosing
//! memory system needs: a dirty bit for Classic caches, a coherence
//! state for Ruby L1s.

/// Cache line size in bytes (fixed at 64 across the simulator).
pub const LINE_BYTES: u64 = 64;

/// Result of probing a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The line is resident.
    Hit,
    /// The line is absent.
    Miss,
}

#[derive(Debug, Clone)]
struct Entry<S> {
    tag: u64,
    state: S,
    last_use: u64,
}

/// A set-associative cache of line-granularity entries.
///
/// ```
/// use simart_fullsim::mem::cache::SetAssocCache;
///
/// // 32 KiB, 8-way: dirty-bit payload.
/// let mut l1 = SetAssocCache::<bool>::new(32 * 1024, 8);
/// assert!(l1.probe(0x1000).is_none());
/// l1.insert(0x1000, false);
/// assert!(l1.probe(0x1000).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<S> {
    sets: Vec<Vec<Entry<S>>>,
    ways: usize,
    set_mask: u64,
    use_clock: u64,
}

impl<S> SetAssocCache<S> {
    /// Creates a cache of `capacity_bytes` with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics unless the set count derived from capacity / ways / 64-byte
    /// lines is a nonzero power of two.
    pub fn new(capacity_bytes: u64, ways: usize) -> SetAssocCache<S> {
        assert!(ways > 0, "associativity must be positive");
        let lines = capacity_bytes / LINE_BYTES;
        let set_count = (lines as usize) / ways;
        assert!(
            set_count > 0 && set_count.is_power_of_two(),
            "cache geometry must give a power-of-two set count (got {set_count})"
        );
        SetAssocCache {
            sets: (0..set_count).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            set_mask: set_count as u64 - 1,
            use_clock: 0,
        }
    }

    fn line_of(addr: u64) -> u64 {
        addr / LINE_BYTES
    }

    fn set_of(&self, addr: u64) -> usize {
        (Self::line_of(addr) & self.set_mask) as usize
    }

    /// Probes for `addr`, returning mutable access to its state and
    /// refreshing LRU on a hit.
    pub fn probe(&mut self, addr: u64) -> Option<&mut S> {
        let tag = Self::line_of(addr);
        let set = self.set_of(addr);
        self.use_clock += 1;
        let clock = self.use_clock;
        self.sets[set].iter_mut().find(|e| e.tag == tag).map(|e| {
            e.last_use = clock;
            &mut e.state
        })
    }

    /// Peeks at `addr` without touching LRU state.
    pub fn peek(&self, addr: u64) -> Option<&S> {
        let tag = Self::line_of(addr);
        let set = self.set_of(addr);
        self.sets[set]
            .iter()
            .find(|e| e.tag == tag)
            .map(|e| &e.state)
    }

    /// Inserts a line (which must not already be resident), evicting the
    /// LRU line of the set if full. Returns the evicted `(addr, state)`.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident — callers must probe first.
    pub fn insert(&mut self, addr: u64, state: S) -> Option<(u64, S)> {
        let tag = Self::line_of(addr);
        let set = self.set_of(addr);
        assert!(
            !self.sets[set].iter().any(|e| e.tag == tag),
            "inserting already-resident line {addr:#x}"
        );
        self.use_clock += 1;
        let entry = Entry {
            tag,
            state,
            last_use: self.use_clock,
        };
        if self.sets[set].len() < self.ways {
            self.sets[set].push(entry);
            return None;
        }
        let victim_idx = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_use)
            .map(|(i, _)| i)
            .expect("set is full, so non-empty");
        let victim = std::mem::replace(&mut self.sets[set][victim_idx], entry);
        Some((victim.tag * LINE_BYTES, victim.state))
    }

    /// Removes a line, returning its state.
    pub fn invalidate(&mut self, addr: u64) -> Option<S> {
        let tag = Self::line_of(addr);
        let set = self.set_of(addr);
        let idx = self.sets[set].iter().position(|e| e.tag == tag)?;
        Some(self.sets[set].swap_remove(idx).state)
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(line_addr, state)` of all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &S)> {
        self.sets
            .iter()
            .flatten()
            .map(|e| (e.tag * LINE_BYTES, &e.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = SetAssocCache::<u32>::new(4096, 4);
        assert!(c.probe(0x40).is_none());
        c.insert(0x40, 7);
        assert_eq!(c.probe(0x7f).copied(), Some(7), "same line as 0x40");
        assert!(c.probe(0x80).is_none(), "next line misses");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2 sets * 2 ways * 64B = 256B cache.
        let mut c = SetAssocCache::<char>::new(256, 2);
        // All these map to set 0 (line numbers 0,2,4,6 with 2 sets).
        let a = 0; // line 0
        let b = 2 * LINE_BYTES;
        let d = 4 * LINE_BYTES;
        c.insert(a, 'a');
        c.insert(b, 'b');
        c.probe(a); // refresh a; b becomes LRU
        let evicted = c.insert(d, 'd').expect("set full");
        assert_eq!(evicted, (b, 'b'));
        assert!(c.probe(a).is_some());
        assert!(c.probe(d).is_some());
    }

    #[test]
    #[should_panic(expected = "already-resident")]
    fn double_insert_panics() {
        let mut c = SetAssocCache::<()>::new(4096, 4);
        c.insert(0x40, ());
        c.insert(0x40, ());
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssocCache::<u8>::new(4096, 4);
        c.insert(0x100, 9);
        assert_eq!(c.invalidate(0x100), Some(9));
        assert_eq!(c.invalidate(0x100), None);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_perturb_lru() {
        let mut c = SetAssocCache::<char>::new(256, 2);
        let a = 0; // line 0
        let b = 2 * LINE_BYTES;
        let d = 4 * LINE_BYTES;
        c.insert(a, 'a');
        c.insert(b, 'b');
        c.peek(a); // does NOT refresh a
        let evicted = c.insert(d, 'd').expect("set full");
        assert_eq!(evicted.1, 'a', "a stays LRU despite peek");
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = SetAssocCache::<()>::new(4096, 4);
        for i in 0..1000u64 {
            c.probe(i * LINE_BYTES);
            if c.peek(i * LINE_BYTES).is_none() {
                c.insert(i * LINE_BYTES, ());
            }
        }
        assert!(c.len() <= 64, "4 KiB of 64B lines");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bad_geometry_panics() {
        let _ = SetAssocCache::<()>::new(4096, 3);
    }
}
