//! The Classic memory hierarchy: private L1s, a shared L2, and DRAM,
//! with an optional coherent crossbar between the L1s.
//!
//! Matches gem5's "Classic" stack as the paper characterizes it: *fast
//! but lacks coherence fidelity*. With `coherent = false` the L1s do
//! not snoop each other — safe for a single core (or for KVM/Atomic
//! CPUs), and rejected by the compatibility layer for multi-core timing
//! CPUs. With `coherent = true` a snooping crossbar keeps L1s
//! consistent at some latency cost (the configuration used for the
//! PARSEC runs).

use super::cache::SetAssocCache;
use super::dram::Ddr3Channel;
use super::{AccessKind, MemKind, MemorySystem};
use crate::stats::Stats;
use std::collections::HashMap;

/// Latency constants in CPU cycles.
mod lat {
    /// L1 hit.
    pub const L1: u64 = 2;
    /// L2 hit (beyond L1).
    pub const L2: u64 = 12;
    /// Crossbar snoop round-trip.
    pub const SNOOP: u64 = 8;
}

/// Per-line L1 payload: dirty bit.
type L1Line = bool;

/// The Classic memory system.
#[derive(Debug)]
pub struct ClassicMemory {
    l1: Vec<SetAssocCache<L1Line>>,
    l2: SetAssocCache<bool>,
    dram: Ddr3Channel,
    coherent: bool,
    /// For the coherent crossbar: which cores hold each line.
    sharers: HashMap<u64, u64>,
    hits_l1: u64,
    hits_l2: u64,
    misses: u64,
    snoops: u64,
    writebacks: u64,
}

impl ClassicMemory {
    /// Builds the hierarchy for `cores` CPUs.
    pub fn new(cores: usize, coherent: bool) -> ClassicMemory {
        ClassicMemory {
            l1: (0..cores)
                .map(|_| SetAssocCache::new(32 * 1024, 8))
                .collect(),
            l2: SetAssocCache::new(1024 * 1024, 16),
            dram: Ddr3Channel::new(),
            coherent,
            sharers: HashMap::new(),
            hits_l1: 0,
            hits_l2: 0,
            misses: 0,
            snoops: 0,
            writebacks: 0,
        }
    }

    fn line(addr: u64) -> u64 {
        addr / super::cache::LINE_BYTES
    }

    fn snoop_invalidate(&mut self, requester: usize, addr: u64) -> u64 {
        let line = Self::line(addr);
        let mut extra = 0;
        if let Some(mask) = self.sharers.get(&line).copied() {
            for core in 0..self.l1.len() {
                if core != requester && mask & (1 << core) != 0 {
                    if let Some(dirty) = self.l1[core].invalidate(addr) {
                        self.snoops += 1;
                        extra += lat::SNOOP;
                        if dirty {
                            self.writebacks += 1;
                            extra += lat::L2; // write the dirty line back to L2
                        }
                    }
                }
            }
            self.sharers.insert(line, 1 << requester);
        }
        extra
    }

    fn note_sharer(&mut self, core: usize, addr: u64) {
        if self.coherent {
            *self.sharers.entry(Self::line(addr)).or_insert(0) |= 1 << core;
        }
    }
}

impl MemorySystem for ClassicMemory {
    fn access(&mut self, core: usize, addr: u64, kind: AccessKind) -> u64 {
        let needs_write = kind.needs_write();
        let mut latency = lat::L1;

        // Coherent crossbar: writes invalidate other copies first.
        if self.coherent && needs_write {
            latency += self.snoop_invalidate(core, addr);
        }

        if let Some(dirty) = self.l1[core].probe(addr) {
            self.hits_l1 += 1;
            if needs_write {
                *dirty = true;
            }
            self.note_sharer(core, addr);
            return latency;
        }

        // L1 miss -> L2.
        latency += lat::L2;
        if self.l2.probe(addr).is_none() {
            // L2 miss -> DRAM.
            self.misses += 1;
            latency += self.dram.access(addr, needs_write);
            if let Some((victim, _)) = self.l2.insert(addr, false) {
                // L2 eviction invalidates L1 copies (inclusive hierarchy).
                for core_cache in &mut self.l1 {
                    core_cache.invalidate(victim);
                }
                self.sharers.remove(&Self::line(victim));
            }
        } else {
            self.hits_l2 += 1;
        }

        // Fill L1.
        if let Some((victim, dirty)) = self.l1[core].insert(addr, needs_write) {
            if dirty {
                self.writebacks += 1;
                latency += 1;
            }
            if self.coherent {
                if let Some(mask) = self.sharers.get_mut(&Self::line(victim)) {
                    *mask &= !(1 << core);
                }
            }
        }
        self.note_sharer(core, addr);
        latency
    }

    fn kind(&self) -> MemKind {
        MemKind::Classic {
            coherent: self.coherent,
        }
    }

    fn dump_stats(&self, prefix: &str, stats: &mut Stats) {
        stats.set_count(&format!("{prefix}.l1Hits"), self.hits_l1);
        stats.set_count(&format!("{prefix}.l2Hits"), self.hits_l2);
        stats.set_count(&format!("{prefix}.misses"), self.misses);
        stats.set_count(&format!("{prefix}.snoops"), self.snoops);
        stats.set_count(&format!("{prefix}.writebacks"), self.writebacks);
        let total = self.hits_l1 + self.hits_l2 + self.misses;
        if total > 0 {
            stats.set_scalar(
                &format!("{prefix}.l1HitRate"),
                self.hits_l1 as f64 / total as f64,
            );
        }
        self.dram.dump_stats(&format!("{prefix}.dram"), stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_l1() {
        let mut mem = ClassicMemory::new(1, false);
        let cold = mem.access(0, 0x1000, AccessKind::Read);
        let warm = mem.access(0, 0x1000, AccessKind::Read);
        assert!(cold > warm);
        assert_eq!(warm, lat::L1);
    }

    #[test]
    fn l2_serves_other_cores_lines() {
        let mut mem = ClassicMemory::new(2, true);
        mem.access(0, 0x2000, AccessKind::Read);
        let second = mem.access(1, 0x2000, AccessKind::Read);
        // Core 1 misses L1 but hits L2 — cheaper than DRAM.
        assert_eq!(second, lat::L1 + lat::L2);
    }

    #[test]
    fn coherent_write_invalidates_sharers() {
        let mut mem = ClassicMemory::new(2, true);
        mem.access(0, 0x3000, AccessKind::Read);
        mem.access(1, 0x3000, AccessKind::Read);
        // Core 1 writes: core 0's copy must be snooped out.
        mem.access(1, 0x3000, AccessKind::Write);
        assert!(mem.snoops >= 1);
        // Core 0 must now re-fetch (L1 miss, L2 hit).
        let refetch = mem.access(0, 0x3000, AccessKind::Read);
        assert!(refetch >= lat::L1 + lat::L2);
    }

    #[test]
    fn incoherent_crossbar_never_snoops() {
        let mut mem = ClassicMemory::new(2, false);
        mem.access(0, 0x3000, AccessKind::Read);
        mem.access(1, 0x3000, AccessKind::Read);
        mem.access(1, 0x3000, AccessKind::Write);
        assert_eq!(mem.snoops, 0);
        // Core 0 still hits its (stale) copy — the missing fidelity that
        // makes this configuration unsupported for multi-core timing runs.
        let stale = mem.access(0, 0x3000, AccessKind::Read);
        assert_eq!(stale, lat::L1);
    }

    #[test]
    fn stats_accumulate() {
        let mut mem = ClassicMemory::new(1, false);
        for i in 0..100u64 {
            mem.access(0, i * 64, AccessKind::Read);
        }
        for i in 0..100u64 {
            mem.access(0, i * 64, AccessKind::Read);
        }
        let mut stats = Stats::new();
        mem.dump_stats("mem", &mut stats);
        assert_eq!(stats.count("mem.misses"), 100);
        assert_eq!(stats.count("mem.l1Hits"), 100);
        assert!(stats.scalar("mem.l1HitRate") > 0.4);
    }

    #[test]
    fn dirty_writeback_on_eviction() {
        let mut mem = ClassicMemory::new(1, false);
        // Write a line, then stream enough lines through the same sets to
        // evict it.
        mem.access(0, 0, AccessKind::Write);
        for i in 1..4096u64 {
            mem.access(0, i * 64, AccessKind::Read);
        }
        assert!(mem.writebacks > 0);
    }
}
