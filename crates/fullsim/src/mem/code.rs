//! The program image: encoded instruction words in simulated memory.
//!
//! Workload code occupies a dedicated region below the data heap
//! (see [`CODE_BASE`]); CPU-visible data addresses never overlap it.
//! All instruction fetch goes through this image, and the only write
//! path into it is [`CodeMemory::write_word`] — the self-modifying-code
//! entry point that the decode cache's invalidation contract hangs off
//! (DESIGN.md §4.12).

use crate::isa::decode::INST_BYTES;

/// Base virtual address of the program image. Chosen well below the
/// private-heap base (`0x1000_0000`) so generated data addresses can
/// never alias code.
pub const CODE_BASE: u64 = 0x0040_0000;

/// A program image: packed 32-bit instruction words at [`CODE_BASE`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeMemory {
    words: Vec<u32>,
    /// Monotonic write counter; each self-modifying write bumps it.
    writes: u64,
}

impl CodeMemory {
    /// Wraps raw instruction words into an image at [`CODE_BASE`].
    ///
    /// # Panics
    ///
    /// Panics on an empty program.
    pub fn from_words(words: Vec<u32>) -> CodeMemory {
        assert!(!words.is_empty(), "program image cannot be empty");
        CodeMemory { words, writes: 0 }
    }

    /// Generates a statistical program image for a workload label (see
    /// [`generate_words`](crate::isa::decode::generate_words)).
    pub fn generate(label: &str, mix: &crate::isa::InstMix, n_words: usize) -> CodeMemory {
        CodeMemory::from_words(crate::isa::decode::generate_words(label, mix, n_words))
    }

    /// Base address of the image.
    pub fn base(&self) -> u64 {
        CODE_BASE
    }

    /// First address past the image.
    pub fn end(&self) -> u64 {
        CODE_BASE + self.words.len() as u64 * INST_BYTES
    }

    /// Number of instruction words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the image is empty (never true: construction rejects it).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads the instruction word at `pc`, or `None` outside the image
    /// or for a misaligned PC.
    pub fn word(&self, pc: u64) -> Option<u32> {
        if pc < CODE_BASE || !pc.is_multiple_of(INST_BYTES) {
            return None;
        }
        self.words
            .get(((pc - CODE_BASE) / INST_BYTES) as usize)
            .copied()
    }

    /// Self-modifying write: stores `word` at `pc`.
    ///
    /// Callers holding a decode cache **must** invalidate blocks
    /// covering `pc` afterwards (the cache's invalidation contract);
    /// [`InstStream::patch_code`](crate::isa::InstStream::patch_code)
    /// does both in one step. Returns `false` when `pc` is outside the
    /// image or misaligned.
    pub fn write_word(&mut self, pc: u64, word: u32) -> bool {
        if pc < CODE_BASE || !pc.is_multiple_of(INST_BYTES) {
            return false;
        }
        let Some(slot) = self.words.get_mut(((pc - CODE_BASE) / INST_BYTES) as usize) else {
            return false;
        };
        *slot = word;
        self.writes += 1;
        true
    }

    /// Number of self-modifying writes the image has absorbed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// A uniformly drawn instruction address within the image — used
    /// for dynamic branch targets.
    pub fn random_entry(&self, rng: &mut crate::rng::DetRng) -> u64 {
        CODE_BASE + rng.below(self.words.len() as u64) * INST_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::InstMix;
    use crate::rng::DetRng;

    #[test]
    fn words_are_addressed_from_code_base() {
        let code = CodeMemory::from_words(vec![7, 8, 9]);
        assert_eq!(code.word(CODE_BASE), Some(7));
        assert_eq!(code.word(CODE_BASE + 8), Some(9));
        assert_eq!(code.word(CODE_BASE + 12), None, "past the image");
        assert_eq!(code.word(CODE_BASE + 1), None, "misaligned");
        assert_eq!(code.word(0), None, "below the image");
        assert_eq!(code.end(), CODE_BASE + 12);
    }

    #[test]
    fn writes_modify_words_and_count() {
        let mut code = CodeMemory::from_words(vec![1, 2]);
        assert!(code.write_word(CODE_BASE + 4, 42));
        assert_eq!(code.word(CODE_BASE + 4), Some(42));
        assert_eq!(code.writes(), 1);
        assert!(!code.write_word(CODE_BASE + 8, 0), "out of range");
        assert!(!code.write_word(CODE_BASE + 2, 0), "misaligned");
        assert_eq!(code.writes(), 1);
    }

    #[test]
    fn random_entries_stay_in_image() {
        let code = CodeMemory::generate("wl", &InstMix::default_int(), 64);
        let mut rng = DetRng::from_label("entries");
        for _ in 0..200 {
            let pc = code.random_entry(&mut rng);
            assert!(code.word(pc).is_some());
        }
    }

    #[test]
    fn code_region_is_disjoint_from_data_regions() {
        let code = CodeMemory::generate("wl", &InstMix::default_int(), 4096);
        assert!(code.end() < 0x1000_0000, "code never aliases private heaps");
    }
}
