//! A small RISC-like instruction set and deterministic instruction
//! streams.
//!
//! Real benchmark binaries cannot ship with this reproduction, so
//! workloads are lowered to statistical instruction streams over a
//! compact ISA. A stream is *deterministic*: the same (workload, os,
//! thread) triple always yields the same instruction sequence, which is
//! what lets two simulations of the same configuration produce
//! bit-identical statistics.

use crate::mem::code::CodeMemory;
use crate::rng::DetRng;
use serde::{Deserialize, Serialize};
use std::fmt;

pub mod decode;
pub mod func;

use decode::{DecodeCache, StaticInst};

/// Operation classes of the simulated ISA.
///
/// Deliberately mirrors gem5's `OpClass` taxonomy at the granularity
/// the timing models need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU operation (add, logic, shifts).
    IntAlu,
    /// Integer multiply/divide.
    IntMul,
    /// Floating-point add/mul.
    FpAlu,
    /// Floating-point divide/sqrt (long latency).
    FpDiv,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Conditional branch.
    Branch,
    /// Atomic read-modify-write (locks, barriers).
    Atomic,
    /// Memory fence.
    Fence,
    /// System call (traps into the simulated kernel).
    Syscall,
}

impl OpClass {
    /// All operation classes, in a fixed order used by instruction-mix
    /// tables.
    pub const ALL: [OpClass; 10] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Atomic,
        OpClass::Fence,
        OpClass::Syscall,
    ];

    /// Whether this class accesses memory.
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store | OpClass::Atomic)
    }

    /// Execution latency in cycles on a simple in-order pipeline
    /// (excluding memory time).
    pub fn base_latency(self) -> u64 {
        match self {
            OpClass::IntAlu | OpClass::Branch => 1,
            OpClass::IntMul => 3,
            OpClass::FpAlu => 4,
            OpClass::FpDiv => 12,
            OpClass::Load | OpClass::Store => 1, // plus memory time
            OpClass::Atomic => 2,                // plus memory time
            OpClass::Fence => 2,
            OpClass::Syscall => 60,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "IntAlu",
            OpClass::IntMul => "IntMul",
            OpClass::FpAlu => "FpAlu",
            OpClass::FpDiv => "FpDiv",
            OpClass::Load => "Load",
            OpClass::Store => "Store",
            OpClass::Branch => "Branch",
            OpClass::Atomic => "Atomic",
            OpClass::Fence => "Fence",
            OpClass::Syscall => "Syscall",
        };
        f.write_str(s)
    }
}

/// Relative frequencies of each [`OpClass`] in a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstMix {
    weights: [f64; 10],
}

impl InstMix {
    /// Builds a mix from `(class, weight)` pairs; unlisted classes get
    /// weight zero.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any weight is negative.
    pub fn new(entries: &[(OpClass, f64)]) -> InstMix {
        let mut weights = [0.0; 10];
        for (class, weight) in entries {
            assert!(*weight >= 0.0, "negative weight for {class}");
            let idx = OpClass::ALL
                .iter()
                .position(|c| c == class)
                .expect("class in ALL");
            weights[idx] += weight;
        }
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "instruction mix cannot be all zeros"
        );
        InstMix { weights }
    }

    /// A generic integer-dominated mix used as a default.
    pub fn default_int() -> InstMix {
        InstMix::new(&[
            (OpClass::IntAlu, 0.45),
            (OpClass::IntMul, 0.03),
            (OpClass::Load, 0.25),
            (OpClass::Store, 0.12),
            (OpClass::Branch, 0.14),
            (OpClass::Syscall, 0.01),
        ])
    }

    /// The normalized fraction of the given class.
    pub fn fraction(&self, class: OpClass) -> f64 {
        let idx = OpClass::ALL
            .iter()
            .position(|c| *c == class)
            .expect("class in ALL");
        self.weights[idx] / self.weights.iter().sum::<f64>()
    }

    /// Draws one class from the mix.
    pub fn sample(&self, rng: &mut DetRng) -> OpClass {
        OpClass::ALL[rng.weighted_index(&self.weights)]
    }

    /// Returns a copy with the weight of `class` scaled by `factor`.
    /// Used to model, e.g., newer compilers emitting more vector FP ops.
    pub fn scaled(&self, class: OpClass, factor: f64) -> InstMix {
        let mut weights = self.weights;
        let idx = OpClass::ALL
            .iter()
            .position(|c| *c == class)
            .expect("class in ALL");
        weights[idx] *= factor;
        InstMix { weights }
    }
}

/// A single dynamic instruction in a stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inst {
    /// Operation class.
    pub op: OpClass,
    /// Effective address for memory operations (0 otherwise).
    pub addr: u64,
    /// Destination register (0-31); consumers model dependencies with it.
    pub dst: u8,
    /// First source register.
    pub src1: u8,
    /// Second source register.
    pub src2: u8,
    /// For branches: whether the branch is taken.
    pub taken: bool,
}

/// Parameters shaping the memory reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AddressProfile {
    /// Size of the hot working set in bytes.
    pub working_set: u64,
    /// Fraction of accesses that hit the sequential/stride pattern
    /// (the rest scatter uniformly over the working set).
    pub locality: f64,
    /// Fraction of memory accesses that target data shared between
    /// threads (drives coherence traffic).
    pub shared_fraction: f64,
}

impl AddressProfile {
    /// A cache-friendly default (64 KiB hot set, strong locality).
    pub fn friendly() -> AddressProfile {
        AddressProfile {
            working_set: 64 << 10,
            locality: 0.9,
            shared_fraction: 0.05,
        }
    }
}

/// A deterministic instruction stream for one thread, executed
/// through a decoded-basic-block cache.
///
/// The *static* program — operation classes and register operands —
/// is generated once per workload label into a [`CodeMemory`] image
/// shared in content (not storage) by every thread of the workload,
/// and decoded lazily into a per-stream [`DecodeCache`]. The *dynamic*
/// parts of each instruction — effective addresses and branch
/// outcomes — are drawn at execute time from the per-thread RNG, so
/// threads running identical code still produce distinct, reproducible
/// memory and control-flow behaviour.
#[derive(Debug, Clone)]
pub struct InstStream {
    addrs: AddressProfile,
    rng: DetRng,
    code: CodeMemory,
    dcache: DecodeCache,
    /// Entry PC of the basic block currently executing.
    block_base: u64,
    /// Index of the next instruction within that block.
    block_idx: usize,
    cursor: u64,
    stride_pos: u64,
    tile_base: u64,
    thread: u32,
    branch_bias: f64,
}

/// Base virtual address of the shared region (all threads).
const SHARED_BASE: u64 = 0x7000_0000;
/// Base virtual address of a thread's private region.
const PRIVATE_BASE: u64 = 0x1000_0000;
/// Cache-line-sized generation stride.
const LINE: u64 = 64;

/// Instruction words in a generated program image. Small enough that
/// the dynamic walk revisits blocks constantly (high decode-cache hit
/// rates, like a loopy inner kernel), large enough to exercise many
/// distinct blocks.
const PROGRAM_WORDS: usize = 1024;

impl InstStream {
    /// Creates the stream for a (label, thread) pair. `label` should
    /// fingerprint the workload + OS so different setups diverge.
    pub fn new(label: &str, thread: u32, mix: InstMix, addrs: AddressProfile) -> InstStream {
        let rng = DetRng::from_label(&format!("{label}/t{thread}"));
        let code = CodeMemory::generate(label, &mix, PROGRAM_WORDS);
        let block_base = code.base();
        InstStream {
            addrs,
            rng,
            code,
            dcache: DecodeCache::new(),
            block_base,
            block_idx: 0,
            cursor: 0,
            stride_pos: 0,
            tile_base: 0,
            thread,
            branch_bias: 0.88,
        }
    }

    /// The number of instructions generated so far.
    pub fn generated(&self) -> u64 {
        self.cursor
    }

    /// The decode cache this stream executes through.
    pub fn decode_cache(&self) -> &DecodeCache {
        &self.dcache
    }

    /// The program image this stream executes.
    pub fn code(&self) -> &CodeMemory {
        &self.code
    }

    /// Self-modifying-code write: stores `word` at `pc` and invalidates
    /// every cached decoded block covering it, upholding the decode
    /// cache's invalidation contract (DESIGN.md §4.12). Returns `false`
    /// (and changes nothing) when `pc` is outside the program image.
    pub fn patch_code(&mut self, pc: u64, word: u32) -> bool {
        if !self.code.write_word(pc, word) {
            return false;
        }
        self.dcache.invalidate_touching(pc);
        true
    }

    /// Fetches the static part of the next instruction through the
    /// decode cache, resolves its branch outcome, and advances the
    /// block cursor / control flow. Returns `(inst, taken)`.
    fn fetch_static(&mut self) -> (StaticInst, bool) {
        loop {
            let block = self.dcache.fetch(&self.code, self.block_base);
            if self.block_idx >= block.insts.len() {
                // Past the block (it shrank under an SMC patch): continue
                // at the fall-through.
                self.block_base = block.next;
                self.block_idx = 0;
                continue;
            }
            let inst = block.insts[self.block_idx];
            let next = block.next;
            self.block_idx += 1;
            let at_end = self.block_idx >= block.insts.len();
            if inst.op == OpClass::Branch {
                // Branch outcome is dynamic: taken jumps to a drawn
                // target, not-taken falls through (branches always
                // terminate a decoded block).
                let taken = self.rng.chance(self.branch_bias);
                self.block_base = if taken {
                    self.code.random_entry(&mut self.rng)
                } else {
                    next
                };
                self.block_idx = 0;
                return (inst, taken);
            }
            if at_end {
                self.block_base = next;
                self.block_idx = 0;
            }
            return (inst, false);
        }
    }

    /// Generates the next instruction.
    pub fn next_inst(&mut self) -> Inst {
        let (sinst, taken) = self.fetch_static();
        self.cursor += 1;
        let addr = if sinst.op.is_memory() {
            self.next_addr(sinst.op)
        } else {
            0
        };
        Inst {
            op: sinst.op,
            addr,
            dst: sinst.dst,
            src1: sinst.src1,
            src2: sinst.src2,
            taken,
        }
    }

    fn next_addr(&mut self, op: OpClass) -> u64 {
        let shared = op == OpClass::Atomic || self.rng.chance(self.addrs.shared_fraction);
        let (base, span) = if shared {
            // Shared region is deliberately small so threads collide on
            // the same lines, creating coherence traffic.
            (SHARED_BASE, (self.addrs.working_set / 8).max(LINE * 16))
        } else {
            (
                PRIVATE_BASE + self.thread as u64 * 0x0100_0000,
                self.addrs.working_set.max(LINE * 4),
            )
        };
        if self.rng.chance(self.addrs.locality) {
            // Local accesses walk a bounded tile (an inner-loop working
            // window), hopping to a new tile occasionally. This makes
            // the reference stream *stationary*: its cache behaviour
            // reaches steady state within a few thousand accesses even
            // for multi-megabyte working sets, which is what lets
            // sampled simulation extrapolate safely.
            const TILE: u64 = 32 << 10;
            let tile_span = span.min(TILE);
            self.stride_pos = (self.stride_pos + LINE) % tile_span;
            if self.stride_pos == 0 && span > tile_span {
                // Finished a tile pass: move to another tile.
                self.tile_base = self.rng.below(span / tile_span) * tile_span;
            }
            base + self.tile_base + self.stride_pos
        } else {
            base + self.rng.below(span / LINE) * LINE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_fractions_normalize() {
        let mix = InstMix::new(&[(OpClass::IntAlu, 3.0), (OpClass::Load, 1.0)]);
        assert!((mix.fraction(OpClass::IntAlu) - 0.75).abs() < 1e-12);
        assert!((mix.fraction(OpClass::Load) - 0.25).abs() < 1e-12);
        assert_eq!(mix.fraction(OpClass::FpDiv), 0.0);
    }

    #[test]
    #[should_panic(expected = "all zeros")]
    fn empty_mix_panics() {
        let _ = InstMix::new(&[]);
    }

    #[test]
    fn sampling_tracks_mix() {
        let mix = InstMix::new(&[(OpClass::IntAlu, 0.7), (OpClass::Load, 0.3)]);
        let mut rng = DetRng::from_label("mix");
        let n = 20_000;
        let loads = (0..n)
            .filter(|_| mix.sample(&mut rng) == OpClass::Load)
            .count();
        let frac = loads as f64 / n as f64;
        assert!((0.27..0.33).contains(&frac), "load fraction {frac}");
    }

    #[test]
    fn streams_are_deterministic_per_thread() {
        let make = |thread| {
            let mut s = InstStream::new(
                "wl",
                thread,
                InstMix::default_int(),
                AddressProfile::friendly(),
            );
            (0..100).map(|_| s.next_inst()).collect::<Vec<_>>()
        };
        assert_eq!(make(0), make(0));
        assert_ne!(make(0), make(1));
    }

    #[test]
    fn different_labels_diverge() {
        let insts = |label: &str| {
            let mut s =
                InstStream::new(label, 0, InstMix::default_int(), AddressProfile::friendly());
            (0..64).map(|_| s.next_inst().op).collect::<Vec<_>>()
        };
        assert_ne!(insts("ubuntu-18.04/dedup"), insts("ubuntu-20.04/dedup"));
    }

    #[test]
    fn memory_ops_get_addresses_others_do_not() {
        let mut s = InstStream::new("wl", 0, InstMix::default_int(), AddressProfile::friendly());
        for _ in 0..500 {
            let inst = s.next_inst();
            if inst.op.is_memory() {
                assert_ne!(inst.addr, 0);
                assert_eq!(inst.addr % LINE, 0, "addresses are line-aligned");
            } else {
                assert_eq!(inst.addr, 0);
            }
        }
        assert_eq!(s.generated(), 500);
    }

    #[test]
    fn private_addresses_partition_by_thread() {
        let profile = AddressProfile {
            working_set: 1 << 20,
            locality: 1.0,
            shared_fraction: 0.0,
        };
        let mix = InstMix::new(&[(OpClass::Load, 1.0)]);
        let mut t0 = InstStream::new("wl", 0, mix.clone(), profile);
        let mut t1 = InstStream::new("wl", 1, mix, profile);
        for _ in 0..100 {
            let a0 = t0.next_inst().addr;
            let a1 = t1.next_inst().addr;
            assert!(a0 < PRIVATE_BASE + 0x0100_0000);
            assert!(a1 >= PRIVATE_BASE + 0x0100_0000);
        }
    }

    #[test]
    fn scaled_mix_changes_one_class() {
        let mix = InstMix::new(&[(OpClass::IntAlu, 1.0), (OpClass::FpAlu, 1.0)]);
        let scaled = mix.scaled(OpClass::FpAlu, 3.0);
        assert!(scaled.fraction(OpClass::FpAlu) > mix.fraction(OpClass::FpAlu));
    }
}
