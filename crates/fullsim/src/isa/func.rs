//! A functional interpreter for a small register machine — the
//! substrate behind the `gem5 tests` resource (asmtest/insttest-style
//! instruction and syscall tests).
//!
//! Unlike the statistical streams the timing models consume, these
//! programs have real semantics: 32 integer registers, a sparse word
//! memory, branches, and an exit syscall. Test programs assert
//! architectural results (register/memory values), giving the project
//! a functional-correctness suite alongside the timing models.

use std::collections::BTreeMap;
use std::fmt;

/// A functional instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncInst {
    /// `rd = rs1 + rs2`
    Add {
        /// destination register
        rd: u8,
        /// first source
        rs1: u8,
        /// second source
        rs2: u8,
    },
    /// `rd = rs1 + imm`
    Addi {
        /// destination register
        rd: u8,
        /// source register
        rs1: u8,
        /// immediate
        imm: i64,
    },
    /// `rd = rs1 * rs2`
    Mul {
        /// destination register
        rd: u8,
        /// first source
        rs1: u8,
        /// second source
        rs2: u8,
    },
    /// `rd = memory[rs1 + offset]`
    Load {
        /// destination register
        rd: u8,
        /// base-address register
        rs1: u8,
        /// byte offset
        offset: i64,
    },
    /// `memory[rs1 + offset] = rs2`
    Store {
        /// base-address register
        rs1: u8,
        /// value register
        rs2: u8,
        /// byte offset
        offset: i64,
    },
    /// `if rs1 == rs2 { pc += target_delta }` (relative branch)
    Beq {
        /// first compare register
        rs1: u8,
        /// second compare register
        rs2: u8,
        /// relative instruction offset
        delta: i64,
    },
    /// `if rs1 != rs2 { pc += target_delta }`
    Bne {
        /// first compare register
        rs1: u8,
        /// second compare register
        rs2: u8,
        /// relative instruction offset
        delta: i64,
    },
    /// Terminates the program (the m5-exit analogue).
    Halt,
}

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// Executed a `Halt`.
    Halted,
    /// Ran off the end of the program.
    FellThrough,
    /// Exceeded the step budget (likely an infinite loop).
    FuelExhausted,
    /// Jumped outside the program.
    BadBranch {
        /// The offending target.
        target: i64,
    },
}

impl fmt::Display for Stop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stop::Halted => f.write_str("halted"),
            Stop::FellThrough => f.write_str("fell through"),
            Stop::FuelExhausted => f.write_str("fuel exhausted"),
            Stop::BadBranch { target } => write!(f, "branch to invalid target {target}"),
        }
    }
}

/// Architectural state after execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncResult {
    /// Why execution stopped.
    pub stop: Stop,
    /// Final register file (`x0` is hardwired to zero).
    pub regs: [i64; 32],
    /// Final memory contents (word-addressed, sparse).
    pub memory: BTreeMap<i64, i64>,
    /// Dynamic instructions executed.
    pub executed: u64,
}

impl FuncResult {
    /// Reads a register.
    pub fn reg(&self, r: u8) -> i64 {
        self.regs[r as usize]
    }

    /// Reads a memory word (0 when untouched).
    pub fn mem(&self, addr: i64) -> i64 {
        self.memory.get(&addr).copied().unwrap_or(0)
    }
}

/// Executes `program` with the given initial register values, for at
/// most `fuel` dynamic instructions.
pub fn execute(program: &[FuncInst], init_regs: &[(u8, i64)], fuel: u64) -> FuncResult {
    let mut regs = [0i64; 32];
    for (r, v) in init_regs {
        if *r != 0 {
            regs[*r as usize] = *v;
        }
    }
    let mut memory: BTreeMap<i64, i64> = BTreeMap::new();
    let mut pc: i64 = 0;
    let mut executed = 0;
    let stop = loop {
        if executed >= fuel {
            break Stop::FuelExhausted;
        }
        if pc < 0 || pc as usize >= program.len() {
            break if pc as usize == program.len() {
                Stop::FellThrough
            } else {
                Stop::BadBranch { target: pc }
            };
        }
        let inst = program[pc as usize];
        executed += 1;
        let mut next = pc + 1;
        match inst {
            FuncInst::Add { rd, rs1, rs2 } => {
                let value = regs[rs1 as usize].wrapping_add(regs[rs2 as usize]);
                write_reg(&mut regs, rd, value);
            }
            FuncInst::Addi { rd, rs1, imm } => {
                let value = regs[rs1 as usize].wrapping_add(imm);
                write_reg(&mut regs, rd, value);
            }
            FuncInst::Mul { rd, rs1, rs2 } => {
                let value = regs[rs1 as usize].wrapping_mul(regs[rs2 as usize]);
                write_reg(&mut regs, rd, value);
            }
            FuncInst::Load { rd, rs1, offset } => {
                let addr = regs[rs1 as usize].wrapping_add(offset);
                let value = memory.get(&addr).copied().unwrap_or(0);
                write_reg(&mut regs, rd, value);
            }
            FuncInst::Store { rs1, rs2, offset } => {
                let addr = regs[rs1 as usize].wrapping_add(offset);
                memory.insert(addr, regs[rs2 as usize]);
            }
            FuncInst::Beq { rs1, rs2, delta } => {
                if regs[rs1 as usize] == regs[rs2 as usize] {
                    next = pc + delta;
                }
            }
            FuncInst::Bne { rs1, rs2, delta } => {
                if regs[rs1 as usize] != regs[rs2 as usize] {
                    next = pc + delta;
                }
            }
            FuncInst::Halt => break Stop::Halted,
        }
        pc = next;
    };
    FuncResult {
        stop,
        regs,
        memory,
        executed,
    }
}

fn write_reg(regs: &mut [i64; 32], rd: u8, value: i64) {
    if rd != 0 {
        regs[rd as usize] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_to_zero() {
        let program = [
            FuncInst::Addi {
                rd: 0,
                rs1: 0,
                imm: 99,
            },
            FuncInst::Halt,
        ];
        let result = execute(&program, &[], 10);
        assert_eq!(result.reg(0), 0);
        assert_eq!(result.stop, Stop::Halted);
    }

    #[test]
    fn arithmetic_and_memory() {
        let program = [
            FuncInst::Addi {
                rd: 1,
                rs1: 0,
                imm: 6,
            },
            FuncInst::Addi {
                rd: 2,
                rs1: 0,
                imm: 7,
            },
            FuncInst::Mul {
                rd: 3,
                rs1: 1,
                rs2: 2,
            },
            FuncInst::Store {
                rs1: 0,
                rs2: 3,
                offset: 0x100,
            },
            FuncInst::Load {
                rd: 4,
                rs1: 0,
                offset: 0x100,
            },
            FuncInst::Halt,
        ];
        let result = execute(&program, &[], 100);
        assert_eq!(result.reg(3), 42);
        assert_eq!(result.reg(4), 42);
        assert_eq!(result.mem(0x100), 42);
        assert_eq!(result.executed, 6);
    }

    #[test]
    fn loops_terminate_via_branches() {
        // sum = 1 + 2 + ... + 10
        let program = [
            FuncInst::Addi {
                rd: 1,
                rs1: 0,
                imm: 0,
            }, // i = 0
            FuncInst::Addi {
                rd: 2,
                rs1: 0,
                imm: 0,
            }, // sum = 0
            FuncInst::Addi {
                rd: 3,
                rs1: 0,
                imm: 10,
            }, // limit
            FuncInst::Beq {
                rs1: 1,
                rs2: 3,
                delta: 4,
            }, // while i != limit
            FuncInst::Addi {
                rd: 1,
                rs1: 1,
                imm: 1,
            }, //   i += 1
            FuncInst::Add {
                rd: 2,
                rs1: 2,
                rs2: 1,
            }, //   sum += i
            FuncInst::Beq {
                rs1: 0,
                rs2: 0,
                delta: -3,
            }, // loop
            FuncInst::Halt,
        ];
        let result = execute(&program, &[], 1000);
        assert_eq!(result.stop, Stop::Halted);
        assert_eq!(result.reg(2), 55);
    }

    #[test]
    fn infinite_loops_run_out_of_fuel() {
        let program = [FuncInst::Beq {
            rs1: 0,
            rs2: 0,
            delta: 0,
        }];
        let result = execute(&program, &[], 100);
        assert_eq!(result.stop, Stop::FuelExhausted);
        assert_eq!(result.executed, 100);
    }

    #[test]
    fn wild_branches_are_trapped() {
        let program = [FuncInst::Beq {
            rs1: 0,
            rs2: 0,
            delta: -5,
        }];
        let result = execute(&program, &[], 100);
        assert_eq!(result.stop, Stop::BadBranch { target: -5 });
    }

    #[test]
    fn initial_registers_are_honoured() {
        let program = [
            FuncInst::Add {
                rd: 3,
                rs1: 1,
                rs2: 2,
            },
            FuncInst::Halt,
        ];
        let result = execute(&program, &[(1, 40), (2, 2)], 10);
        assert_eq!(result.reg(3), 42);
    }
}
