//! Instruction encoding and the decoded-basic-block cache.
//!
//! The simulated program lives in [`CodeMemory`]
//! as packed 32-bit instruction words. Decoding a word — unpacking the
//! fields and validating opcode and register operands — is cheap but
//! not free, and an interpreter that re-decodes every dynamic
//! instruction pays it millions of times per simulated second. The
//! [`DecodeCache`] pays it once per *basic block*: the first time
//! execution enters a block the decoder walks forward from the entry
//! PC to the next branch (or the block cap) and caches the decoded
//! instructions; every later visit is a hash-map hit.
//!
//! Invalidation contract (see DESIGN.md §4.12): a self-modifying write
//! through [`CodeMemory::write_word`](crate::mem::code::CodeMemory::write_word)
//! must be followed by [`DecodeCache::invalidate_touching`] for the
//! written PC before the next fetch.
//! [`InstStream::patch_code`](crate::isa::InstStream::patch_code) does
//! both atomically; stale decoded blocks are never observable through
//! it.

use crate::mem::code::CodeMemory;
use crate::rng::DetRng;
use std::collections::HashMap;
use std::fmt;

/// Bytes per encoded instruction word.
pub const INST_BYTES: u64 = 4;

/// Maximum instructions in one decoded basic block. Blocks normally
/// end at a branch; straight-line code is chopped at this cap so a
/// single cached block stays cache-line friendly.
pub const BLOCK_CAP: usize = 32;

/// Number of opcode values in the ISA (indexes [`OpClass::ALL`]).
///
/// [`OpClass::ALL`]: crate::isa::OpClass::ALL
const N_OPCODES: u32 = 10;

/// Highest architectural register number.
const MAX_REG: u32 = 32;

use super::OpClass;

/// The static (decoded) part of one instruction: everything encoded in
/// the instruction word, i.e. everything that does not depend on
/// dynamic state. Effective addresses and branch outcomes are drawn at
/// execute time by [`InstStream`](crate::isa::InstStream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticInst {
    /// Operation class.
    pub op: OpClass,
    /// Destination register.
    pub dst: u8,
    /// First source register.
    pub src1: u8,
    /// Second source register.
    pub src2: u8,
}

/// Why an instruction word failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field names no [`OpClass`].
    BadOpcode(u32),
    /// A register operand is out of range.
    BadRegister(u32),
    /// Reserved high bits were set.
    ReservedBits(u32),
    /// The PC falls outside the program image.
    BadPc(u64),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "invalid opcode {op}"),
            DecodeError::BadRegister(r) => write!(f, "register {r} out of range"),
            DecodeError::ReservedBits(w) => write!(f, "reserved bits set in word {w:#010x}"),
            DecodeError::BadPc(pc) => write!(f, "pc {pc:#x} outside the program image"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Packs a static instruction into a 32-bit word.
///
/// Layout (LSB first): opcode `[0..4]`, dst `[4..10]`, src1 `[10..16]`,
/// src2 `[16..22]`; bits 22..32 are reserved and must be zero.
pub fn encode(inst: StaticInst) -> u32 {
    let op = OpClass::ALL
        .iter()
        .position(|c| *c == inst.op)
        .expect("class in ALL") as u32;
    op | (inst.dst as u32) << 4 | (inst.src1 as u32) << 10 | (inst.src2 as u32) << 16
}

/// Unpacks and validates a 32-bit instruction word.
pub fn decode(word: u32) -> Result<StaticInst, DecodeError> {
    if word >> 22 != 0 {
        return Err(DecodeError::ReservedBits(word));
    }
    let op = word & 0xf;
    if op >= N_OPCODES {
        return Err(DecodeError::BadOpcode(op));
    }
    let dst = (word >> 4) & 0x3f;
    let src1 = (word >> 10) & 0x3f;
    let src2 = (word >> 16) & 0x3f;
    for reg in [dst, src1, src2] {
        if reg > MAX_REG {
            return Err(DecodeError::BadRegister(reg));
        }
    }
    Ok(StaticInst {
        op: OpClass::ALL[op as usize],
        dst: dst as u8,
        src1: src1 as u8,
        src2: src2 as u8,
    })
}

/// A decoded basic block: straight-line instructions from an entry PC
/// up to (and including) the first branch, the block cap, or the end
/// of the program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedBlock {
    /// Entry PC of the block.
    pub base: u64,
    /// Decoded instructions in program order.
    pub insts: Vec<StaticInst>,
    /// PC after the last instruction (the fall-through target),
    /// wrapped to the image base at the end of the program.
    pub next: u64,
}

impl DecodedBlock {
    /// First PC past the last instruction of this block (before
    /// wrapping), i.e. the exclusive upper bound of PCs it covers.
    fn end(&self) -> u64 {
        self.base + self.insts.len() as u64 * INST_BYTES
    }

    /// Whether the block's decoded range covers `pc`.
    pub fn covers(&self, pc: u64) -> bool {
        self.base <= pc && pc < self.end()
    }
}

/// Decodes the basic block entered at `pc` straight from code memory.
///
/// This is the slow path the [`DecodeCache`] exists to avoid; the
/// hot-path bench (`benches/hotpath.rs`) measures the cached fetch
/// against exactly this function.
pub fn decode_block(code: &CodeMemory, pc: u64) -> Result<DecodedBlock, DecodeError> {
    let mut insts = Vec::new();
    let mut cur = pc;
    loop {
        let Some(word) = code.word(cur) else {
            if insts.is_empty() {
                return Err(DecodeError::BadPc(pc));
            }
            // Ran off the image: end the block and wrap to the base.
            return Ok(DecodedBlock {
                base: pc,
                insts,
                next: code.base(),
            });
        };
        let inst = decode(word)?;
        let is_branch = inst.op == OpClass::Branch;
        insts.push(inst);
        cur += INST_BYTES;
        if is_branch || insts.len() >= BLOCK_CAP {
            return Ok(DecodedBlock {
                base: pc,
                insts,
                next: if code.word(cur).is_some() {
                    cur
                } else {
                    code.base()
                },
            });
        }
    }
}

/// A decode cache: decoded basic blocks keyed by entry PC.
///
/// All CPU models execute through it via
/// [`InstStream`](crate::isa::InstStream); the hit/miss/invalidation
/// counters surface in simulation statistics as `decode.*`.
#[derive(Debug, Clone, Default)]
pub struct DecodeCache {
    blocks: HashMap<u64, DecodedBlock>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl DecodeCache {
    /// Creates an empty cache.
    pub fn new() -> DecodeCache {
        DecodeCache::default()
    }

    /// Returns the decoded block entered at `pc`, decoding and caching
    /// it on a miss.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the program image or the word there
    /// fails validation — generated program images always decode, so
    /// this indicates a corrupted image.
    pub fn fetch(&mut self, code: &CodeMemory, pc: u64) -> &DecodedBlock {
        match self.blocks.entry(pc) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                let block = decode_block(code, pc).expect("program image decodes");
                e.insert(block)
            }
        }
    }

    /// Drops every cached block whose decoded range covers `pc`. Must
    /// be called after a self-modifying write to `pc`.
    pub fn invalidate_touching(&mut self, pc: u64) {
        let before = self.blocks.len();
        self.blocks.retain(|_, b| !b.covers(pc));
        self.invalidations += (before - self.blocks.len()) as u64;
    }

    /// Number of cached-block hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of block decodes (cache misses).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of blocks dropped by self-modifying-code invalidation.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Statistical code generator: fills a program image with instruction
/// words whose operation classes follow `mix` and whose register
/// operands form realistic dependency chains.
///
/// Destinations cycle through a 24-register window; sources read
/// values produced 1..=16 instructions earlier, giving some tight
/// chains and plenty of independent work for wide machines to overlap.
pub fn generate_words(label: &str, mix: &super::InstMix, n_words: usize) -> Vec<u32> {
    let mut rng = DetRng::from_label(&format!("code/{label}"));
    (0..n_words as u64)
        .map(|i| {
            let op = mix.sample(&mut rng);
            let dst = (i % 24 + 1) as u8;
            let d1 = 1 + rng.below(16);
            let d2 = 1 + rng.below(16);
            let src1 = ((i + 24 - d1 % 24) % 24 + 1) as u8;
            let src2 = ((i + 24 - d2 % 24) % 24 + 1) as u8;
            encode(StaticInst {
                op,
                dst,
                src1,
                src2,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::InstMix;

    fn word(op: OpClass) -> u32 {
        encode(StaticInst {
            op,
            dst: 1,
            src1: 2,
            src2: 3,
        })
    }

    #[test]
    fn encode_decode_round_trips_every_opclass() {
        for (i, op) in OpClass::ALL.iter().enumerate() {
            let inst = StaticInst {
                op: *op,
                dst: (i % 33) as u8,
                src1: ((i * 7) % 33) as u8,
                src2: ((i * 13) % 33) as u8,
            };
            assert_eq!(decode(encode(inst)), Ok(inst));
        }
    }

    #[test]
    fn bad_words_are_rejected() {
        assert_eq!(decode(0xf), Err(DecodeError::BadOpcode(15)));
        assert_eq!(decode(1 << 22), Err(DecodeError::ReservedBits(1 << 22)));
        // Register 33 in the dst field.
        assert_eq!(decode(33 << 4), Err(DecodeError::BadRegister(33)));
    }

    #[test]
    fn blocks_end_at_branches() {
        let code = CodeMemory::from_words(vec![
            word(OpClass::IntAlu),
            word(OpClass::Load),
            word(OpClass::Branch),
            word(OpClass::Store),
        ]);
        let block = decode_block(&code, code.base()).unwrap();
        assert_eq!(block.insts.len(), 3);
        assert_eq!(block.insts[2].op, OpClass::Branch);
        assert_eq!(block.next, code.base() + 3 * INST_BYTES);
        // Entry mid-program starts a fresh block.
        let tail = decode_block(&code, code.base() + 3 * INST_BYTES).unwrap();
        assert_eq!(tail.insts.len(), 1);
        assert_eq!(tail.next, code.base(), "end of image wraps");
    }

    #[test]
    fn straight_line_code_is_capped() {
        let code = CodeMemory::from_words(vec![word(OpClass::IntAlu); BLOCK_CAP * 2]);
        let block = decode_block(&code, code.base()).unwrap();
        assert_eq!(block.insts.len(), BLOCK_CAP);
    }

    #[test]
    fn cache_hits_after_first_fetch_and_invalidates_on_patch() {
        let code = CodeMemory::generate("wl", &InstMix::default_int(), 256);
        let mut cache = DecodeCache::new();
        let pc = code.base();
        let first = cache.fetch(&code, pc).clone();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let again = cache.fetch(&code, pc).clone();
        assert_eq!(first, again);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        cache.invalidate_touching(pc);
        assert_eq!(cache.invalidations(), 1);
        assert!(cache.is_empty());
        cache.fetch(&code, pc);
        assert_eq!(cache.misses(), 2, "re-decoded after invalidation");
    }

    #[test]
    fn invalidation_only_drops_covering_blocks() {
        let code = CodeMemory::from_words(vec![
            word(OpClass::Branch),
            word(OpClass::IntAlu),
            word(OpClass::Branch),
        ]);
        let mut cache = DecodeCache::new();
        cache.fetch(&code, code.base());
        cache.fetch(&code, code.base() + INST_BYTES);
        assert_eq!(cache.len(), 2);
        cache.invalidate_touching(code.base());
        assert_eq!(cache.len(), 1, "only the block covering the pc dropped");
    }

    #[test]
    fn generated_words_all_decode() {
        for w in generate_words("wl", &InstMix::default_int(), 1024) {
            decode(w).unwrap();
        }
    }

    #[test]
    fn generated_code_is_label_deterministic() {
        let a = generate_words("x", &InstMix::default_int(), 64);
        assert_eq!(a, generate_words("x", &InstMix::default_int(), 64));
        assert_ne!(a, generate_words("y", &InstMix::default_int(), 64));
    }
}
