//! # simart-fullsim
//!
//! A deterministic, discrete-event **full-system simulator** — this
//! reproduction's stand-in for gem5.
//!
//! The paper's evaluation drives gem5 through large configuration
//! cross-products: CPU model × CPU count × memory system × Linux kernel
//! × boot type × workload × OS image. This crate implements a
//! self-contained simulator exposing exactly those knobs:
//!
//! * [`cpu`] — four CPU models mirroring gem5's: `KvmCpu` (host-speed
//!   virtualization, no timing), `AtomicSimpleCpu` (atomic memory,
//!   IPC ≈ 1), `TimingSimpleCpu` (timing for memory only), and `O3Cpu`
//!   (an out-of-order pipeline with ROB, issue width and functional
//!   units);
//! * [`mem`] — a *Classic* hierarchy (fast, optionally without coherence
//!   fidelity) and a *Ruby*-style system with real `MI` and
//!   `MESI_Two_Level` coherence state machines over a directory, backed
//!   by a DDR3-1600 bank/row timing model;
//! * [`isa`] — a small RISC-like instruction set plus a workload
//!   compiler that lowers statistical workload profiles into
//!   deterministic instruction streams;
//! * [`kernel`] — a staged Linux boot model over five LTS kernel
//!   versions, with the configuration-compatibility matrix that
//!   produces the paper's Figure 8 outcome classes (success, kernel
//!   panic, simulator crash, protocol deadlock, timeout);
//! * [`system`] — the top-level [`system::SystemConfig`] builder and
//!   [`system::SimOutput`]-producing runner with gem5-style [`stats`].
//!
//! Timing follows gem5's convention: one [`Tick`](ticks::Tick) is one
//! picosecond of simulated time.
//!
//! ```
//! use simart_fullsim::system::SystemConfig;
//! use simart_fullsim::cpu::CpuKind;
//! use simart_fullsim::mem::MemKind;
//! use simart_fullsim::kernel::{BootKind, KernelVersion};
//!
//! # fn main() -> Result<(), simart_fullsim::SimError> {
//! let config = SystemConfig::builder()
//!     .cpu(CpuKind::TimingSimple)
//!     .cores(2)
//!     .memory(MemKind::classic_coherent())
//!     .kernel(KernelVersion::V5_4)
//!     .boot(BootKind::Systemd)
//!     .build()?;
//! let output = config.boot_only()?;
//! assert!(output.outcome.is_success());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod checkpoint;
pub mod compat;
pub mod cpu;
mod error;
pub mod event;
pub mod isa;
pub mod kernel;
pub mod mem;
pub mod os;
pub mod rng;
pub mod stats;
pub mod system;
pub mod ticks;
pub mod workload;

pub use error::SimError;
