//! Simulated time: ticks and clock domains.
//!
//! Following gem5, one tick is one **picosecond** of simulated time, so
//! a 1 GHz clock advances 1000 ticks per cycle.

/// A point in (or duration of) simulated time, in picoseconds.
pub type Tick = u64;

/// Ticks per second of simulated time (1 THz tick rate).
pub const TICKS_PER_SECOND: Tick = 1_000_000_000_000;

/// A fixed-frequency clock domain that converts cycles to ticks.
///
/// ```
/// use simart_fullsim::ticks::Clock;
///
/// let clk = Clock::from_mhz(3000); // 3 GHz CPU clock
/// assert_eq!(clk.period(), 333);
/// assert_eq!(clk.cycles_to_ticks(3), 999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clock {
    period_ticks: Tick,
}

impl Clock {
    /// A clock from its frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub fn from_mhz(mhz: u64) -> Clock {
        assert!(mhz > 0, "clock frequency must be positive");
        Clock {
            period_ticks: TICKS_PER_SECOND / (mhz * 1_000_000),
        }
    }

    /// A clock from its frequency in GHz.
    pub fn from_ghz(ghz: u64) -> Clock {
        Clock::from_mhz(ghz * 1000)
    }

    /// The clock period in ticks.
    pub fn period(&self) -> Tick {
        self.period_ticks
    }

    /// Converts a cycle count to ticks.
    pub fn cycles_to_ticks(&self, cycles: u64) -> Tick {
        cycles.saturating_mul(self.period_ticks)
    }

    /// Converts ticks to whole cycles (rounding down).
    pub fn ticks_to_cycles(&self, ticks: Tick) -> u64 {
        ticks / self.period_ticks
    }

    /// The frequency in Hz.
    pub fn frequency_hz(&self) -> u64 {
        TICKS_PER_SECOND / self.period_ticks
    }
}

/// Formats a tick count as engineering-notation seconds, for reports.
pub fn format_ticks(ticks: Tick) -> String {
    let seconds = ticks as f64 / TICKS_PER_SECOND as f64;
    if seconds >= 1.0 {
        format!("{seconds:.3}s")
    } else if seconds >= 1e-3 {
        format!("{:.3}ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3}us", seconds * 1e6)
    } else {
        format!("{:.3}ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_conversions() {
        let clk = Clock::from_ghz(1);
        assert_eq!(clk.period(), 1000);
        assert_eq!(clk.cycles_to_ticks(5), 5000);
        assert_eq!(clk.ticks_to_cycles(5999), 5);
        assert_eq!(clk.frequency_hz(), 1_000_000_000);
    }

    #[test]
    fn three_ghz_rounds_down() {
        let clk = Clock::from_mhz(3000);
        assert_eq!(clk.period(), 333);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        let _ = Clock::from_mhz(0);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_ticks(TICKS_PER_SECOND * 2), "2.000s");
        assert_eq!(format_ticks(TICKS_PER_SECOND / 1000), "1.000ms");
        assert_eq!(format_ticks(1_500_000), "1.500us");
        assert_eq!(format_ticks(1500), "1.500ns");
    }
}
