//! System assembly and top-level simulation.
//!
//! [`SystemConfig`] is the analogue of a gem5 run-script configuration:
//! CPU model and count, memory system, kernel, OS image, and boot
//! target. [`SystemConfig::boot_only`] reproduces the boot-exit
//! workload of use-case 2; [`SystemConfig::run_workload`] boots and
//! then executes a benchmark as use-case 1 does.
//!
//! Timing uses sampled detailed simulation: a deterministic sample of
//! each phase's instruction stream runs through the configured CPU and
//! memory models to measure CPI, which is then extrapolated to the
//! phase's full instruction count (the standard sampling methodology
//! for long-running full-system workloads).

use crate::compat::{self, BootConfig, BootOutcome};
use crate::cpu::CpuKind;
use crate::error::SimError;
use crate::event::EventQueue;
use crate::isa::{InstMix, InstStream, OpClass};
use crate::kernel::{BootKind, BootStage, KernelVersion};
use crate::mem::{self, MemKind};
use crate::os::OsImage;
use crate::stats::Stats;
use crate::ticks::{Clock, Tick};
use crate::workload::{InputSize, WorkloadProfile};
use simart_observe as observe;

/// How many instructions each timing sample simulates in detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Tiny samples for unit tests.
    Smoke,
    /// Default sample size.
    #[default]
    Standard,
    /// Larger samples for final numbers.
    Detailed,
}

impl Fidelity {
    /// Sampled instructions per phase per thread.
    pub fn sample_insts(self) -> u64 {
        match self {
            Fidelity::Smoke => 3_000,
            Fidelity::Standard => 20_000,
            Fidelity::Detailed => 80_000,
        }
    }
}

/// A fully specified simulated system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    cpu: CpuKind,
    cores: u32,
    clock: Clock,
    mem: MemKind,
    kernel: KernelVersion,
    boot: BootKind,
    os: OsImage,
    fidelity: Fidelity,
}

/// Builder for [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cpu: CpuKind,
    cores: u32,
    clock: Clock,
    mem: MemKind,
    kernel: KernelVersion,
    boot: BootKind,
    os: OsImage,
    fidelity: Fidelity,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        SystemConfigBuilder {
            cpu: CpuKind::TimingSimple,
            cores: 1,
            clock: Clock::from_ghz(3),
            mem: MemKind::classic_coherent(),
            kernel: KernelVersion::V5_4,
            boot: BootKind::Systemd,
            os: OsImage::Ubuntu1804,
            fidelity: Fidelity::Standard,
        }
    }
}

impl SystemConfigBuilder {
    /// Selects the CPU model.
    pub fn cpu(mut self, cpu: CpuKind) -> Self {
        self.cpu = cpu;
        self
    }

    /// Sets the number of cores.
    pub fn cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the CPU clock.
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Selects the memory system.
    pub fn memory(mut self, mem: MemKind) -> Self {
        self.mem = mem;
        self
    }

    /// Selects the kernel version.
    pub fn kernel(mut self, kernel: KernelVersion) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the boot target.
    pub fn boot(mut self, boot: BootKind) -> Self {
        self.boot = boot;
        self
    }

    /// Selects the OS (user-land) image.
    pub fn os(mut self, os: OsImage) -> Self {
        self.os = os;
        self
    }

    /// Selects sampling fidelity.
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for impossible parameters
    /// (zero or >64 cores).
    pub fn build(self) -> Result<SystemConfig, SimError> {
        if self.cores == 0 {
            return Err(SimError::invalid("a system needs at least one core"));
        }
        if self.cores > 64 {
            return Err(SimError::invalid(format!(
                "{} cores exceed the 64-core limit",
                self.cores
            )));
        }
        Ok(SystemConfig {
            cpu: self.cpu,
            cores: self.cores,
            clock: self.clock,
            mem: self.mem,
            kernel: self.kernel,
            boot: self.boot,
            os: self.os,
            fidelity: self.fidelity,
        })
    }
}

/// The result of a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutput {
    /// How the run ended.
    pub outcome: BootOutcome,
    /// Simulated time consumed by the measured phase (ticks).
    pub sim_ticks: Tick,
    /// Total (extrapolated) instructions executed in the measured phase.
    pub instructions: u64,
    /// Estimated host (wall-clock) seconds the real simulator would
    /// need for this run, from per-model simulation weights.
    pub host_seconds: f64,
    /// All statistics.
    pub stats: Stats,
}

impl SimOutput {
    /// Simulated seconds of the measured phase.
    pub fn sim_seconds(&self) -> f64 {
        self.sim_ticks as f64 / crate::ticks::TICKS_PER_SECOND as f64
    }
}

/// A post-boot checkpoint: boot state captured once, resumable by any
/// identically configured system (the hack-back resource's workflow).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    config_label: String,
    boot: SimOutput,
}

impl Checkpoint {
    /// Fingerprint of the configuration the checkpoint was taken on.
    pub fn config_label(&self) -> &str {
        &self.config_label
    }

    /// The captured boot output.
    pub fn boot(&self) -> &SimOutput {
        &self.boot
    }

    /// Reassembles a checkpoint from its serialized parts (the durable
    /// store in [`crate::checkpoint`] is the only caller).
    pub(crate) fn from_parts(config_label: String, boot: SimOutput) -> Checkpoint {
        Checkpoint { config_label, boot }
    }
}

/// Sums decode-cache hits and misses over a set of sampled streams.
fn decode_telemetry(streams: &[InstStream]) -> (u64, u64) {
    streams.iter().fold((0, 0), |(h, m), s| {
        (h + s.decode_cache().hits(), m + s.decode_cache().misses())
    })
}

/// The instruction mix of kernel/boot code: branchy, syscall-heavy,
/// light on FP.
fn boot_mix() -> InstMix {
    InstMix::new(&[
        (OpClass::IntAlu, 0.40),
        (OpClass::Load, 0.24),
        (OpClass::Store, 0.13),
        (OpClass::Branch, 0.18),
        (OpClass::Atomic, 0.02),
        (OpClass::Fence, 0.01),
        (OpClass::Syscall, 0.02),
    ])
}

impl SystemConfig {
    /// Starts building a configuration.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// The CPU model.
    pub fn cpu(&self) -> CpuKind {
        self.cpu
    }

    /// The core count.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// The memory system.
    pub fn memory(&self) -> MemKind {
        self.mem
    }

    /// The kernel version.
    pub fn kernel(&self) -> KernelVersion {
        self.kernel
    }

    /// The boot target.
    pub fn boot_kind(&self) -> BootKind {
        self.boot
    }

    /// The OS image.
    pub fn os(&self) -> OsImage {
        self.os
    }

    /// The sampling fidelity.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// A stable textual fingerprint of the configuration (used to seed
    /// instruction streams and to key run records).
    pub fn label(&self) -> String {
        format!(
            "{}x{}/{}/{}/{}/{}",
            self.cores, self.cpu, self.mem, self.kernel, self.boot, self.os
        )
    }

    fn boot_config(&self) -> BootConfig {
        BootConfig {
            cpu: self.cpu,
            cores: self.cores,
            mem: self.mem,
            kernel: self.kernel,
            boot: self.boot,
        }
    }

    /// Measures CPI for one phase by detailed simulation of a sample.
    ///
    /// Threads interleave on the shared memory system in fixed-size
    /// slices so coherence traffic is exercised exactly as concurrent
    /// execution would. Returns per-thread CPIs plus the decode-cache
    /// telemetry aggregated over the sampled streams.
    fn sample_cpi(&self, label: &str, threads: u32, mix: &InstMix) -> (Vec<f64>, (u64, u64)) {
        let sample = self.fidelity.sample_insts();
        let mut mem = mem::build(self.mem, threads as usize);
        let mut cpus: Vec<_> = (0..threads).map(|_| self.cpu.build()).collect();
        let mut streams: Vec<InstStream> = (0..threads)
            .map(|t| {
                let addrs = crate::isa::AddressProfile::friendly();
                InstStream::new(label, t, mix.clone(), addrs)
            })
            .collect();
        let cpis = self.sample_cpi_with_streams(sample, &mut cpus, &mut streams, mem.as_mut());
        (cpis, decode_telemetry(&streams))
    }

    fn sample_cpi_with_streams(
        &self,
        sample: u64,
        cpus: &mut [Box<dyn crate::cpu::CpuModel>],
        streams: &mut [InstStream],
        mem: &mut dyn mem::MemorySystem,
    ) -> Vec<f64> {
        const SLICE: u64 = 256;
        let _timer = observe::timer("sim.cpi_sample_us");
        let threads = cpus.len();
        // Functional warmup (SMARTS-style): run a fixed-length prefix
        // of the stream to populate caches and coherence state, then
        // measure. The warmup length is independent of the fidelity so
        // every sample size measures the same warm steady state —
        // without this, cold-start misses bias small samples and the
        // fidelity levels would disagree.
        let warmup: u64 = 32_768;
        let mut run_phase = |measure: bool, budget_per_thread: u64| -> Vec<(u64, u64)> {
            let mut done = vec![0u64; threads];
            let mut cycles = vec![0u64; threads];
            let mut remaining = threads;
            while remaining > 0 {
                remaining = 0;
                for t in 0..threads {
                    if done[t] < budget_per_thread {
                        let budget = SLICE.min(budget_per_thread - done[t]);
                        let result = cpus[t].run(t, &mut streams[t], budget, mem);
                        observe::count("sim.ticks", result.cycles);
                        done[t] += result.instructions;
                        cycles[t] += result.cycles;
                        if done[t] < budget_per_thread {
                            remaining += 1;
                        }
                    }
                }
            }
            let _ = measure;
            (0..threads).map(|t| (done[t], cycles[t])).collect()
        };
        let _ = run_phase(false, warmup);
        let measured = run_phase(true, sample);
        measured
            .iter()
            .map(|(done, cycles)| *cycles as f64 / (*done).max(1) as f64)
            .collect()
    }

    /// Boots the system (the use-case 2 "boot-exit" workload).
    ///
    /// # Errors
    ///
    /// Infallible for a built config today, but kept fallible for
    /// forward compatibility with resource-dependent boots.
    pub fn boot_only(&self) -> Result<SimOutput, SimError> {
        let _span = observe::span(|| format!("sim.boot:{}", self.label()));
        let _timer = observe::timer("sim.boot_us");
        observe::count("sim.boots", 1);
        let outcome = compat::evaluate(&self.boot_config());
        let mut stats = Stats::new();
        stats.set_count("system.cores", self.cores as u64);

        // Per-stage instruction counts for the configured kernel.
        let stages = BootStage::sequence(self.boot);
        let cpi = {
            let mix = boot_mix();
            let (per_thread, (hits, misses)) =
                self.sample_cpi(&format!("boot/{}", self.label()), 1, &mix);
            stats.set_count("boot.decode.hits", hits);
            stats.set_count("boot.decode.misses", misses);
            observe::count("sim.decode_hits", hits);
            observe::count("sim.decode_misses", misses);
            per_thread[0]
        };

        // Drive stage completions through the event queue; failures cut
        // the boot short at the failing stage.
        let mut queue: EventQueue<BootStage> = EventQueue::new();
        let mut when: Tick = 0;
        for stage in stages {
            let insts = stage.insts(self.kernel, self.cores);
            let cycles = (insts as f64 * cpi) as u64;
            when += self.clock.cycles_to_ticks(cycles);
            queue.schedule(when, *stage);
        }

        let fail_stage = match &outcome {
            BootOutcome::KernelPanic { stage } => Some(*stage),
            BootOutcome::Unsupported { .. } => Some(BootStage::Decompress),
            BootOutcome::SimulatorCrash | BootOutcome::ProtocolDeadlock => {
                Some(BootStage::SchedInit)
            }
            _ => None,
        };

        let mut instructions = 0u64;
        let mut completed_ticks: Tick = 0;
        while let Some(event) = queue.pop() {
            observe::count("sim.boot_events", 1);
            if Some(event.payload) == fail_stage {
                break;
            }
            completed_ticks = event.when;
            instructions += event.payload.insts(self.kernel, self.cores);
            stats.set_count(&format!("boot.stage.{}.endTick", event.payload), event.when);
        }
        // Timeouts burn the whole budget without finishing.
        if outcome == BootOutcome::Timeout {
            completed_ticks = completed_ticks.saturating_mul(20);
        }

        // Event-queue state travels with the boot so a restored
        // checkpoint resumes with the same simulated-time bookkeeping.
        stats.set_count("boot.queue.processed", queue.processed());
        stats.set_count("boot.queue.lastTick", queue.now());
        stats.set_count("boot.instructions", instructions);
        stats.set_scalar("boot.cpi", cpi);
        stats.set_count("simTicks", completed_ticks);
        let host_seconds = instructions as f64 * self.cpu.simulation_weight() / 2.0e8;
        stats.set_scalar("hostSeconds", host_seconds);
        Ok(SimOutput {
            outcome,
            sim_ticks: completed_ticks,
            instructions,
            host_seconds,
            stats,
        })
    }

    /// Boots and captures a [`Checkpoint`] of the post-boot state —
    /// the mechanism behind the hack-back resource (checkpoint after
    /// the booting process, then execute host-provided scripts without
    /// re-booting).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors; a failed boot is reported
    /// through the checkpoint's outcome.
    pub fn checkpoint_boot(&self) -> Result<Checkpoint, SimError> {
        let boot = self.boot_only()?;
        Ok(Checkpoint {
            config_label: self.label(),
            boot,
        })
    }

    /// Resumes from a post-boot checkpoint and runs `workload` without
    /// paying the boot again. The checkpoint must come from an
    /// identically configured system.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when the checkpoint was captured
    /// under a different configuration (resuming it would silently
    /// change the experiment).
    pub fn run_workload_from(
        &self,
        checkpoint: &Checkpoint,
        workload: &WorkloadProfile,
        input: InputSize,
    ) -> Result<SimOutput, SimError> {
        if checkpoint.config_label != self.label() {
            return Err(SimError::invalid(format!(
                "checkpoint was captured on `{}`, not `{}`",
                checkpoint.config_label,
                self.label()
            )));
        }
        if !checkpoint.boot.outcome.is_success() {
            return Ok(checkpoint.boot.clone());
        }
        // Resuming costs no boot-simulation host time.
        let mut output = self.workload_phase(workload, input, &checkpoint.boot.stats, 0.0)?;
        output.stats.set_count("checkpoint.restored", 1);
        Ok(output)
    }

    /// Runs `workload` in syscall-emulation (SE) mode: no kernel, no
    /// disk image, no boot — the simulator services syscalls directly.
    /// This is how the statically linked test binaries of the
    /// `gem5 tests` resource run.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn run_se_workload(
        &self,
        workload: &WorkloadProfile,
        input: InputSize,
    ) -> Result<SimOutput, SimError> {
        let mut se_stats = Stats::new();
        se_stats.set_count("system.cores", self.cores as u64);
        se_stats.set_count("se.mode", 1);
        let mut output = self.workload_phase(workload, input, &se_stats, 0.0)?;
        output.stats.set_count("se.mode", 1);
        Ok(output)
    }

    /// Boots, then runs `workload` to completion, returning benchmark
    /// execution statistics (the use-case 1 flow).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors; an *unsupported or failing
    /// boot* is reported through [`SimOutput::outcome`], not an error.
    pub fn run_workload(
        &self,
        workload: &WorkloadProfile,
        input: InputSize,
    ) -> Result<SimOutput, SimError> {
        let boot = self.boot_only()?;
        if !boot.outcome.is_success() {
            return Ok(boot);
        }
        self.workload_phase(workload, input, &boot.stats, boot.host_seconds)
    }

    /// The benchmark-execution phase shared by cold runs and
    /// checkpoint resumes.
    fn workload_phase(
        &self,
        workload: &WorkloadProfile,
        input: InputSize,
        boot_stats: &Stats,
        boot_host_seconds: f64,
    ) -> Result<SimOutput, SimError> {
        let _span = observe::span(|| format!("sim.workload:{}/{input}", workload.name));
        observe::count("sim.workloads", 1);
        let os = self.os.profile();
        let bonus = self.os.parallel_bonus(&workload.name);
        let parallel_fraction = (workload.parallel_fraction + bonus).min(0.995);

        let total_insts = (workload.total_insts(input) as f64 * os.inst_factor) as u64;
        let serial_insts = (total_insts as f64 * (1.0 - parallel_fraction)) as u64;
        let parallel_insts = total_insts - serial_insts;

        // Common-random-numbers design: the sampled stream is seeded by
        // (workload, input) only, so configurations that differ in OS or
        // kernel compare against the *same* instruction sample and their
        // differences come entirely from the modeled factors, not
        // sampling noise.
        let label = format!("{}/{}", workload.name, input);

        // Serial phase: one thread.
        let mut decode = (0u64, 0u64);
        let serial_cpi = {
            let mut mem = mem::build(self.mem, self.cores as usize);
            let mut cpus = vec![self.cpu.build()];
            let mut streams = vec![InstStream::new(
                &format!("{label}/serial"),
                0,
                workload.mix.clone(),
                workload.addrs,
            )];
            let cpi = self.sample_cpi_with_streams(
                self.fidelity.sample_insts(),
                &mut cpus,
                &mut streams,
                mem.as_mut(),
            )[0];
            let (hits, misses) = decode_telemetry(&streams);
            decode = (decode.0 + hits, decode.1 + misses);
            cpi
        };

        // Parallel phase: all threads interleaved on one memory system.
        // Per-component statistics of this (sampled) phase are dumped
        // gem5-style under `system.*`.
        let mut component_stats = Stats::new();
        let parallel_cpis = {
            let mut mem = mem::build(self.mem, self.cores as usize);
            let mut cpus: Vec<_> = (0..self.cores).map(|_| self.cpu.build()).collect();
            let mut streams: Vec<InstStream> = (0..self.cores)
                .map(|t| {
                    InstStream::new(
                        &format!("{label}/parallel"),
                        t,
                        workload.mix.clone(),
                        workload.addrs,
                    )
                })
                .collect();
            let cpis = self.sample_cpi_with_streams(
                self.fidelity.sample_insts(),
                &mut cpus,
                &mut streams,
                mem.as_mut(),
            );
            for (i, cpu) in cpus.iter().enumerate() {
                cpu.dump_stats(&format!("system.cpu{i}"), &mut component_stats);
            }
            mem.dump_stats("system.mem", &mut component_stats);
            let (hits, misses) = decode_telemetry(&streams);
            decode = (decode.0 + hits, decode.1 + misses);
            cpis
        };
        component_stats.set_count("system.decode.hits", decode.0);
        component_stats.set_count("system.decode.misses", decode.1);
        observe::count("sim.decode_hits", decode.0);
        observe::count("sim.decode_misses", decode.1);

        // Synchronization: lock/barrier traffic serializes and its cost
        // grows with contention (cores), moderated by kernel futex
        // quality and OS runtime efficiency.
        let sync_ops = parallel_insts as f64 * workload.sync_per_kinst / 1000.0;
        let sync_cost_per_op = 55.0
            * (1.0 + 0.38 * (self.cores.saturating_sub(1)) as f64)
            * self.kernel.sync_factor()
            * os.sync_factor;
        let sync_cycles_per_thread = sync_ops * sync_cost_per_op / self.cores as f64;

        let serial_cycles = serial_insts as f64 * serial_cpi * os.cpi_factor;
        let per_thread_insts = parallel_insts as f64 / self.cores as f64;
        let parallel_cycles = parallel_cpis
            .iter()
            .map(|cpi| per_thread_insts * cpi * os.cpi_factor + sync_cycles_per_thread)
            .fold(0.0f64, f64::max);

        let total_cycles = (serial_cycles + parallel_cycles) as u64;
        let sim_ticks = self.clock.cycles_to_ticks(total_cycles);

        let mut stats = boot_stats.clone();
        stats.absorb("", &component_stats);
        stats.set_count("workload.instructions", total_insts);
        stats.set_count("workload.serialInsts", serial_insts);
        stats.set_count("workload.parallelInsts", parallel_insts);
        stats.set_scalar("workload.serialCpi", serial_cpi * os.cpi_factor);
        stats.set_scalar(
            "workload.parallelCpi",
            parallel_cpis.iter().sum::<f64>() / parallel_cpis.len() as f64 * os.cpi_factor,
        );
        stats.set_count("workload.syncOps", sync_ops as u64);
        stats.set_count("workload.execTicks", sim_ticks);
        stats.set_scalar(
            "workload.utilization",
            total_insts as f64 / (total_cycles.max(1) as f64 * self.cores as f64),
        );
        let host_seconds =
            boot_host_seconds + total_insts as f64 * self.cpu.simulation_weight() / 2.0e8;
        stats.set_scalar("hostSeconds", host_seconds);

        Ok(SimOutput {
            outcome: BootOutcome::Success,
            sim_ticks,
            instructions: total_insts,
            host_seconds,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::parsec_profile;

    fn base() -> SystemConfigBuilder {
        SystemConfig::builder().fidelity(Fidelity::Smoke)
    }

    #[test]
    fn builder_validates_core_count() {
        assert!(base().cores(0).build().is_err());
        assert!(base().cores(65).build().is_err());
        assert!(base().cores(8).build().is_ok());
    }

    #[test]
    fn boot_succeeds_on_default_config() {
        let config = base().build().unwrap();
        let output = config.boot_only().unwrap();
        assert!(output.outcome.is_success());
        assert!(output.sim_ticks > 0);
        assert!(output.instructions > 500_000_000, "boot runs ~1e9 insts");
        assert!(output.stats.contains("boot.stage.init-system.endTick"));
    }

    #[test]
    fn unsupported_config_reports_outcome_not_error() {
        let config = base()
            .cpu(CpuKind::AtomicSimple)
            .memory(MemKind::RubyMi)
            .build()
            .unwrap();
        let output = config.boot_only().unwrap();
        assert!(matches!(output.outcome, BootOutcome::Unsupported { .. }));
        assert_eq!(output.sim_ticks, 0, "no progress before rejection");
    }

    #[test]
    fn kernel_only_boot_is_shorter_than_systemd() {
        let kernel_only = base()
            .boot(BootKind::KernelOnly)
            .build()
            .unwrap()
            .boot_only()
            .unwrap();
        let systemd = base()
            .boot(BootKind::Systemd)
            .build()
            .unwrap()
            .boot_only()
            .unwrap();
        assert!(systemd.sim_ticks > kernel_only.sim_ticks * 2);
    }

    #[test]
    fn kvm_boots_fast() {
        let kvm = base()
            .cpu(CpuKind::Kvm)
            .build()
            .unwrap()
            .boot_only()
            .unwrap();
        let timing = base()
            .cpu(CpuKind::TimingSimple)
            .build()
            .unwrap()
            .boot_only()
            .unwrap();
        assert!(kvm.sim_ticks * 4 < timing.sim_ticks);
        assert!(kvm.host_seconds < timing.host_seconds);
    }

    #[test]
    fn workload_runs_and_scales_with_cores() {
        let profile = parsec_profile("blackscholes").unwrap();
        let run = |cores| {
            base()
                .cores(cores)
                .os(OsImage::Ubuntu1804)
                .build()
                .unwrap()
                .run_workload(&profile, InputSize::SimSmall)
                .unwrap()
        };
        let one = run(1);
        let eight = run(8);
        assert!(one.outcome.is_success());
        let speedup = one.sim_ticks as f64 / eight.sim_ticks as f64;
        assert!(speedup > 2.5, "8-core speedup {speedup}");
        assert!(speedup < 8.0, "speedup {speedup} must be sublinear");
    }

    #[test]
    fn ubuntu_2004_runs_more_instructions_in_less_time() {
        let profile = parsec_profile("dedup").unwrap();
        let run = |os| {
            base()
                .cores(2)
                .os(os)
                .build()
                .unwrap()
                .run_workload(&profile, InputSize::SimSmall)
                .unwrap()
        };
        let bionic = run(OsImage::Ubuntu1804);
        let focal = run(OsImage::Ubuntu2004);
        assert!(
            focal.instructions > bionic.instructions,
            "more instructions on 20.04"
        );
        assert!(focal.sim_ticks < bionic.sim_ticks, "but less time");
        assert!(
            focal.stats.scalar("workload.utilization")
                > bionic.stats.scalar("workload.utilization"),
            "at higher utilization"
        );
    }

    #[test]
    fn failed_boot_short_circuits_workload() {
        let profile = parsec_profile("vips").unwrap();
        let config = base()
            .cpu(CpuKind::TimingSimple)
            .cores(2)
            .memory(MemKind::classic_fast())
            .build()
            .unwrap();
        let output = config.run_workload(&profile, InputSize::SimSmall).unwrap();
        assert!(!output.outcome.is_success());
        assert!(!output.stats.contains("workload.execTicks"));
    }

    #[test]
    fn deterministic_outputs() {
        let profile = parsec_profile("ferret").unwrap();
        let run = || {
            base()
                .cores(2)
                .build()
                .unwrap()
                .run_workload(&profile, InputSize::Test)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.sim_ticks, b.sim_ticks);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn se_mode_skips_boot_entirely() {
        let profile = crate::workload::npb_profile("ep").unwrap();
        let config = base().cores(4).build().unwrap();
        let se = config.run_se_workload(&profile, InputSize::Test).unwrap();
        let fs = config.run_workload(&profile, InputSize::Test).unwrap();
        assert!(se.outcome.is_success());
        assert_eq!(se.stats.count("se.mode"), 1);
        assert!(
            !se.stats.contains("boot.instructions"),
            "no boot phase in SE mode"
        );
        // The benchmark itself times identically; only boot differs.
        assert_eq!(se.sim_ticks, fs.sim_ticks);
        assert!(se.host_seconds < fs.host_seconds);
    }

    #[test]
    fn checkpoint_resume_matches_cold_run() {
        let profile = parsec_profile("swaptions").unwrap();
        let config = base().cores(2).build().unwrap();
        let cold = config.run_workload(&profile, InputSize::Test).unwrap();
        let checkpoint = config.checkpoint_boot().unwrap();
        let resumed = config
            .run_workload_from(&checkpoint, &profile, InputSize::Test)
            .unwrap();
        assert_eq!(
            resumed.sim_ticks, cold.sim_ticks,
            "identical benchmark timing"
        );
        assert_eq!(resumed.instructions, cold.instructions);
        assert!(
            resumed.host_seconds < cold.host_seconds,
            "boot simulation time saved"
        );
        assert_eq!(resumed.stats.count("checkpoint.restored"), 1);
    }

    #[test]
    fn checkpoints_refuse_foreign_configurations() {
        let profile = parsec_profile("swaptions").unwrap();
        let two_cores = base().cores(2).build().unwrap();
        let four_cores = base().cores(4).build().unwrap();
        let checkpoint = two_cores.checkpoint_boot().unwrap();
        let err = four_cores.run_workload_from(&checkpoint, &profile, InputSize::Test);
        assert!(matches!(err, Err(SimError::InvalidConfig { .. })));
    }

    #[test]
    fn failed_boot_checkpoints_carry_the_failure() {
        let profile = parsec_profile("swaptions").unwrap();
        let config = base()
            .cpu(CpuKind::AtomicSimple)
            .memory(MemKind::RubyMi)
            .build()
            .unwrap();
        let checkpoint = config.checkpoint_boot().unwrap();
        assert!(!checkpoint.boot().outcome.is_success());
        let resumed = config
            .run_workload_from(&checkpoint, &profile, InputSize::Test)
            .unwrap();
        assert!(!resumed.outcome.is_success());
    }

    #[test]
    fn label_captures_all_knobs() {
        let config = base().cores(4).cpu(CpuKind::O3).build().unwrap();
        let label = config.label();
        assert!(label.contains("4x"));
        assert!(label.contains("O3CPU"));
        assert!(label.contains("v5.4.51"));
    }
}
