//! Durable boot checkpoints: content-addressed, CRC-framed simulator
//! state on disk.
//!
//! The paper's agile-iteration loop ("boot once, restore many") needs
//! the Linux-boot prefix of an experiment to be a reusable artifact:
//! simulate it once, then restore it for every configuration in a
//! cross-product that shares it. A [`CheckpointStore`] holds one file
//! per distinct boot, **content-addressed** by a key derived from every
//! input that shapes the boot (configuration label, fidelity, format
//! version) — so a restored checkpoint can never silently stand in for
//! a different experiment.
//!
//! The on-disk format reuses the journal-style CRC framing of
//! `simart-db` (DESIGN.md §4.8): a magic header followed by
//! `[len u32 LE][crc32 u32 LE][payload]` frames, each independently
//! checksummed. Unlike a journal, a checkpoint is all-or-nothing: any
//! torn or corrupt frame fails the load (and the campaign executor
//! falls back to a cold boot, re-saving a fresh checkpoint).
//!
//! Scalar statistics round-trip through the exact bit pattern of their
//! `f64` (not a decimal rendering), which is what makes a restored run
//! *bit-identical* to a cold boot — proven by
//! `restored_workload_is_bit_identical_to_cold_boot` in
//! `tests/checkpoint_roundtrip.rs`.

use crate::rng::fnv1a;
use crate::stats::{StatValue, Stats};
use crate::system::{Checkpoint, SimOutput, SystemConfig};
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::PathBuf;

/// Checkpoint format version; part of the content-address key, so a
/// format change can never misread old files as current ones.
pub const FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every checkpoint file.
const MAGIC: &[u8; 8] = b"SMARTCP\n";

/// File extension for checkpoint artifacts.
const EXT: &str = "ckpt";

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(io::Error),
    /// The file is not a checkpoint, is torn, or fails a CRC check.
    Corrupt(String),
    /// The file is a valid checkpoint for *different* inputs: its
    /// embedded key does not match the key derived from the requesting
    /// configuration.
    KeyMismatch {
        /// Key the configuration expects.
        want: String,
        /// Key embedded in the file.
        found: String,
    },
    /// The boot being saved did not succeed; only successful boot
    /// prefixes are checkpointable.
    FailedBoot(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::KeyMismatch { want, found } => {
                write!(f, "checkpoint key mismatch: want {want}, found {found}")
            }
            CheckpointError::FailedBoot(outcome) => {
                write!(f, "refusing to checkpoint a failed boot ({outcome})")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The content-address key for a configuration's boot checkpoint.
///
/// Covers every input the boot depends on: the full configuration
/// label (cores, CPU, memory, kernel, boot target, OS), the sampling
/// fidelity, and the checkpoint format version.
pub fn checkpoint_key(config: &SystemConfig) -> String {
    let material = format!(
        "simart-checkpoint/v{FORMAT_VERSION}/{}@{:?}",
        config.label(),
        config.fidelity()
    );
    format!("{:016x}", fnv1a(material.as_bytes()))
}

/// Provenance markers a checkpoint-aware executor logs on its run.
///
/// Rendered with `Display` into the run event log; the `SA0016` lint
/// cross-checks them (a save/restore whose key differs from the
/// announced `checkpoint-key` event means the input hash no longer
/// matches the artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointEvent {
    /// The key the configuration hashes to.
    Key(String),
    /// Boot state was restored from the checkpoint with this key.
    Restored(String),
    /// A fresh boot was simulated and saved under this key.
    Saved(String),
    /// An artifact was found but unusable (wrong key or corrupt); the
    /// string says why. A cold boot follows.
    Stale(String),
}

impl fmt::Display for CheckpointEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointEvent::Key(k) => write!(f, "checkpoint-key:{k}"),
            CheckpointEvent::Restored(k) => write!(f, "checkpoint-restore:{k}"),
            CheckpointEvent::Saved(k) => write!(f, "checkpoint-save:{k}"),
            CheckpointEvent::Stale(why) => write!(f, "checkpoint-stale:{why}"),
        }
    }
}

/// A directory of content-addressed boot checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointStore, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// The path an artifact with `key` lives at.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.{EXT}"))
    }

    /// Saves a boot checkpoint for `config`, returning its key.
    ///
    /// The write is atomic (tempfile + rename) so a crashed save never
    /// leaves a half-written artifact under a valid key.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::FailedBoot`] when the checkpoint's boot did
    /// not succeed; I/O errors otherwise.
    pub fn save(
        &self,
        config: &SystemConfig,
        checkpoint: &Checkpoint,
    ) -> Result<String, CheckpointError> {
        if !checkpoint.boot().outcome.is_success() {
            return Err(CheckpointError::FailedBoot(
                checkpoint.boot().outcome.label().to_owned(),
            ));
        }
        let key = checkpoint_key(config);
        let bytes = serialize(&key, checkpoint);
        let tmp = self.dir.join(format!(".{key}.{EXT}.tmp"));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, self.path_for(&key))?;
        Ok(key)
    }

    /// Loads the checkpoint for `config`, or `Ok(None)` when no
    /// artifact exists under its key.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] for torn/invalid files,
    /// [`CheckpointError::KeyMismatch`] when the artifact's embedded
    /// key disagrees with the configuration's.
    pub fn load(&self, config: &SystemConfig) -> Result<Option<Checkpoint>, CheckpointError> {
        let key = checkpoint_key(config);
        let bytes = match fs::read(self.path_for(&key)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let (found_key, checkpoint) = deserialize(&bytes)?;
        if found_key != key {
            return Err(CheckpointError::KeyMismatch {
                want: key,
                found: found_key,
            });
        }
        if checkpoint.config_label() != config.label() {
            return Err(CheckpointError::KeyMismatch {
                want: config.label(),
                found: checkpoint.config_label().to_owned(),
            });
        }
        Ok(Some(checkpoint))
    }

    /// Restores the boot for `config`, or simulates and saves it.
    ///
    /// The workhorse of "boot once, restore many": returns the boot
    /// checkpoint plus the provenance events describing how it was
    /// obtained. Corrupt or mismatched artifacts are reported as
    /// [`CheckpointEvent::Stale`] and replaced by a fresh cold boot —
    /// the store self-heals rather than failing the experiment.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the cold boot; I/O errors
    /// from reading the artifact. (A failed *boot* is not an error: it
    /// is returned un-saved, with only the `Key` event.)
    pub fn boot_or_restore(
        &self,
        config: &SystemConfig,
    ) -> Result<(Checkpoint, Vec<CheckpointEvent>), crate::error::SimError> {
        let key = checkpoint_key(config);
        let mut events = vec![CheckpointEvent::Key(key.clone())];
        match self.load(config) {
            Ok(Some(checkpoint)) => {
                events.push(CheckpointEvent::Restored(key));
                return Ok((checkpoint, events));
            }
            Ok(None) => {}
            Err(CheckpointError::KeyMismatch { found, .. }) => {
                events.push(CheckpointEvent::Stale(found));
            }
            Err(CheckpointError::Corrupt(_)) => {
                events.push(CheckpointEvent::Stale("corrupt".to_owned()));
            }
            Err(CheckpointError::Io(e)) => {
                return Err(crate::error::SimError::invalid(format!(
                    "checkpoint store unreadable: {e}"
                )));
            }
            Err(CheckpointError::FailedBoot(_)) => unreachable!("load never returns FailedBoot"),
        }
        let checkpoint = config.checkpoint_boot()?;
        match self.save(config, &checkpoint) {
            Ok(saved_key) => events.push(CheckpointEvent::Saved(saved_key)),
            Err(CheckpointError::FailedBoot(_)) => {
                // A failed boot is a result, not an artifact.
            }
            Err(e) => {
                return Err(crate::error::SimError::invalid(format!(
                    "checkpoint save failed: {e}"
                )));
            }
        }
        Ok((checkpoint, events))
    }
}

/// IEEE CRC-32, bitwise-identical to the journal framing in
/// `simart-db` (kept local: the simulator does not depend on the
/// database crate).
fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut state = 0xFFFF_FFFFu32;
    for &b in bytes {
        state = TABLE[((state ^ u32::from(b)) & 0xFF) as usize] ^ (state >> 8);
    }
    state ^ 0xFFFF_FFFF
}

/// Appends one `[len][crc][payload]` frame.
fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads the frame at `*pos`, advancing it.
fn read_frame<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], CheckpointError> {
    let header_end = *pos + 8;
    if header_end > bytes.len() {
        return Err(CheckpointError::Corrupt("torn frame header".to_owned()));
    }
    let len = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[*pos + 4..header_end].try_into().expect("4 bytes"));
    let payload_end = header_end + len;
    if payload_end > bytes.len() {
        return Err(CheckpointError::Corrupt("torn frame payload".to_owned()));
    }
    let payload = &bytes[header_end..payload_end];
    if crc32(payload) != crc {
        return Err(CheckpointError::Corrupt("frame CRC mismatch".to_owned()));
    }
    *pos = payload_end;
    Ok(payload)
}

/// Renders the checkpoint as magic + header frame + boot frame +
/// stats frame.
fn serialize(key: &str, checkpoint: &Checkpoint) -> Vec<u8> {
    let boot = checkpoint.boot();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    push_frame(
        &mut out,
        format!(
            "version {FORMAT_VERSION}\nkey {key}\nlabel {}\n",
            checkpoint.config_label()
        )
        .as_bytes(),
    );
    // host_seconds (and scalar stats below) serialize as the exact f64
    // bit pattern: decimal formatting would round and break the
    // bit-identical-restore guarantee.
    push_frame(
        &mut out,
        format!(
            "sim_ticks {}\ninstructions {}\nhost_seconds {:016x}\n",
            boot.sim_ticks,
            boot.instructions,
            boot.host_seconds.to_bits()
        )
        .as_bytes(),
    );
    let mut stats_text = String::new();
    for (name, value) in boot.stats.iter() {
        match value {
            StatValue::Count(v) => stats_text.push_str(&format!("C {name} {v}\n")),
            StatValue::Scalar(v) => {
                stats_text.push_str(&format!("S {name} {:016x}\n", v.to_bits()));
            }
        }
    }
    push_frame(&mut out, stats_text.as_bytes());
    out
}

fn bad(why: &str) -> CheckpointError {
    CheckpointError::Corrupt(why.to_owned())
}

/// Parses a serialized checkpoint, returning its embedded key.
fn deserialize(bytes: &[u8]) -> Result<(String, Checkpoint), CheckpointError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(bad("bad magic"));
    }
    let mut pos = MAGIC.len();

    let header = std::str::from_utf8(read_frame(bytes, &mut pos)?)
        .map_err(|_| bad("header not UTF-8"))?
        .to_owned();
    let mut version = None;
    let mut key = None;
    let mut label = None;
    for line in header.lines() {
        match line.split_once(' ') {
            Some(("version", v)) => version = v.parse::<u32>().ok(),
            Some(("key", v)) => key = Some(v.to_owned()),
            Some(("label", v)) => label = Some(v.to_owned()),
            _ => return Err(bad("unknown header line")),
        }
    }
    if version != Some(FORMAT_VERSION) {
        return Err(bad("unsupported format version"));
    }
    let (Some(key), Some(label)) = (key, label) else {
        return Err(bad("incomplete header"));
    };

    let boot_frame = std::str::from_utf8(read_frame(bytes, &mut pos)?)
        .map_err(|_| bad("boot frame not UTF-8"))?
        .to_owned();
    let mut sim_ticks = None;
    let mut instructions = None;
    let mut host_seconds = None;
    for line in boot_frame.lines() {
        match line.split_once(' ') {
            Some(("sim_ticks", v)) => sim_ticks = v.parse::<u64>().ok(),
            Some(("instructions", v)) => instructions = v.parse::<u64>().ok(),
            Some(("host_seconds", v)) => {
                host_seconds = u64::from_str_radix(v, 16).ok().map(f64::from_bits);
            }
            _ => return Err(bad("unknown boot line")),
        }
    }
    let (Some(sim_ticks), Some(instructions), Some(host_seconds)) =
        (sim_ticks, instructions, host_seconds)
    else {
        return Err(bad("incomplete boot frame"));
    };

    let stats_frame = std::str::from_utf8(read_frame(bytes, &mut pos)?)
        .map_err(|_| bad("stats frame not UTF-8"))?
        .to_owned();
    let mut stats = Stats::new();
    for line in stats_frame.lines() {
        let mut parts = line.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("C"), Some(name), Some(v)) => {
                stats.set_count(name, v.parse().map_err(|_| bad("bad counter"))?);
            }
            (Some("S"), Some(name), Some(v)) => {
                let bits = u64::from_str_radix(v, 16).map_err(|_| bad("bad scalar"))?;
                stats.set_scalar(name, f64::from_bits(bits));
            }
            _ => return Err(bad("unknown stats line")),
        }
    }
    if pos != bytes.len() {
        return Err(bad("trailing bytes after final frame"));
    }

    let boot = SimOutput {
        outcome: crate::compat::BootOutcome::Success,
        sim_ticks,
        instructions,
        host_seconds,
        stats,
    };
    Ok((key, Checkpoint::from_parts(label, boot)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Fidelity;

    fn smoke_config() -> SystemConfig {
        SystemConfig::builder()
            .fidelity(Fidelity::Smoke)
            .build()
            .unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simart-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn key_covers_config_and_fidelity() {
        let smoke = smoke_config();
        let standard = SystemConfig::builder()
            .fidelity(Fidelity::Standard)
            .build()
            .unwrap();
        let more_cores = SystemConfig::builder()
            .fidelity(Fidelity::Smoke)
            .cores(2)
            .build()
            .unwrap();
        assert_eq!(checkpoint_key(&smoke), checkpoint_key(&smoke_config()));
        assert_ne!(checkpoint_key(&smoke), checkpoint_key(&standard));
        assert_ne!(checkpoint_key(&smoke), checkpoint_key(&more_cores));
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let dir = tmp_dir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        let config = smoke_config();
        let checkpoint = config.checkpoint_boot().unwrap();
        let key = store.save(&config, &checkpoint).unwrap();
        assert!(store.path_for(&key).is_file());
        let loaded = store.load(&config).unwrap().expect("artifact exists");
        assert_eq!(&loaded, &checkpoint, "bit-identical round trip");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_artifact_loads_as_none() {
        let dir = tmp_dir("missing");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load(&smoke_config()).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_and_truncated_files_are_rejected() {
        let dir = tmp_dir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        let config = smoke_config();
        let checkpoint = config.checkpoint_boot().unwrap();
        let key = store.save(&config, &checkpoint).unwrap();
        let path = store.path_for(&key);
        let good = fs::read(&path).unwrap();

        // Flip one payload byte: CRC must catch it.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            store.load(&config),
            Err(CheckpointError::Corrupt(_))
        ));

        // Truncate mid-frame: torn files are corrupt, not partial.
        fs::write(&path, &good[..good.len() - 7]).unwrap();
        assert!(matches!(
            store.load(&config),
            Err(CheckpointError::Corrupt(_))
        ));

        // Not a checkpoint at all.
        fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(matches!(
            store.load(&config),
            Err(CheckpointError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_key_is_detected() {
        let dir = tmp_dir("stale");
        let store = CheckpointStore::open(&dir).unwrap();
        let config = smoke_config();
        let other = SystemConfig::builder()
            .fidelity(Fidelity::Smoke)
            .cores(2)
            .build()
            .unwrap();
        // Save the 2-core checkpoint under the 1-core key, simulating
        // an artifact whose inputs changed after it was produced.
        let checkpoint = other.checkpoint_boot().unwrap();
        let bytes = serialize(&checkpoint_key(&other), &checkpoint);
        fs::write(store.path_for(&checkpoint_key(&config)), bytes).unwrap();
        assert!(matches!(
            store.load(&config),
            Err(CheckpointError::KeyMismatch { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_boots_are_not_checkpointable() {
        let dir = tmp_dir("failedboot");
        let store = CheckpointStore::open(&dir).unwrap();
        let config = SystemConfig::builder()
            .fidelity(Fidelity::Smoke)
            .cpu(crate::cpu::CpuKind::AtomicSimple)
            .memory(crate::mem::MemKind::RubyMi)
            .build()
            .unwrap();
        let checkpoint = config.checkpoint_boot().unwrap();
        assert!(!checkpoint.boot().outcome.is_success());
        assert!(matches!(
            store.save(&config, &checkpoint),
            Err(CheckpointError::FailedBoot(_))
        ));
        // boot_or_restore still yields the failed boot, with only the
        // key event (nothing saved, nothing to restore).
        let (ckpt, events) = store.boot_or_restore(&config).unwrap();
        assert!(!ckpt.boot().outcome.is_success());
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], CheckpointEvent::Key(_)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn boot_or_restore_saves_then_restores_then_heals() {
        let dir = tmp_dir("bor");
        let store = CheckpointStore::open(&dir).unwrap();
        let config = smoke_config();
        let key = checkpoint_key(&config);

        let (cold, events) = store.boot_or_restore(&config).unwrap();
        assert_eq!(
            events,
            vec![
                CheckpointEvent::Key(key.clone()),
                CheckpointEvent::Saved(key.clone())
            ]
        );

        let (warm, events) = store.boot_or_restore(&config).unwrap();
        assert_eq!(
            events,
            vec![
                CheckpointEvent::Key(key.clone()),
                CheckpointEvent::Restored(key.clone())
            ]
        );
        assert_eq!(&warm, &cold, "restore is bit-identical to the cold boot");

        // Corrupt the artifact: the store heals it on the next call.
        let path = store.path_for(&key);
        fs::write(&path, b"garbage").unwrap();
        let (healed, events) = store.boot_or_restore(&config).unwrap();
        assert_eq!(
            events,
            vec![
                CheckpointEvent::Key(key.clone()),
                CheckpointEvent::Stale("corrupt".to_owned()),
                CheckpointEvent::Saved(key.clone())
            ]
        );
        assert_eq!(&healed, &cold);
        assert!(store.load(&config).unwrap().is_some(), "artifact re-saved");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn event_rendering_matches_the_lint_grammar() {
        assert_eq!(
            CheckpointEvent::Key("abc".into()).to_string(),
            "checkpoint-key:abc"
        );
        assert_eq!(
            CheckpointEvent::Restored("abc".into()).to_string(),
            "checkpoint-restore:abc"
        );
        assert_eq!(
            CheckpointEvent::Saved("abc".into()).to_string(),
            "checkpoint-save:abc"
        );
        assert_eq!(
            CheckpointEvent::Stale("corrupt".into()).to_string(),
            "checkpoint-stale:corrupt"
        );
    }
}
