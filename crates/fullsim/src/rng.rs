//! Deterministic randomness for simulation.
//!
//! Every stochastic choice in the simulator (address streams, branch
//! directions, failure signatures) draws from a [`DetRng`] seeded by a
//! *stable string fingerprint* of the configuration, so identical
//! configurations always produce identical simulations — the property
//! the paper's reproducibility story depends on.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// FNV-1a 64-bit hash of a byte string. Used for configuration
/// fingerprints (stable across platforms and releases).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A deterministic RNG derived from a textual seed.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Seeds from an arbitrary string (e.g. a config fingerprint).
    pub fn from_label(label: &str) -> DetRng {
        DetRng {
            inner: SmallRng::seed_from_u64(fnv1a(label.as_bytes())),
        }
    }

    /// Seeds from a raw integer.
    pub fn from_seed_u64(seed: u64) -> DetRng {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream for a named component.
    pub fn fork(&self, component: &str) -> DetRng {
        // Mix the component name into a fresh seed rather than cloning
        // state, so sibling components get decorrelated streams.
        let salt = fnv1a(component.as_bytes());
        DetRng {
            inner: SmallRng::seed_from_u64(salt ^ self.base_sample()),
        }
    }

    fn base_sample(&self) -> u64 {
        // Clone so `fork` does not perturb this stream.
        let mut clone = self.inner.clone();
        clone.next_u64()
    }

    /// Next u64.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, probability: f64) -> bool {
        self.unit() < probability
    }

    /// Picks an index according to relative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut draw = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_values() {
        // FNV-1a published test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn same_label_same_stream() {
        let mut a = DetRng::from_label("config-x");
        let mut b = DetRng::from_label("config-x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = DetRng::from_label("config-x");
        let mut b = DetRng::from_label("config-y");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_deterministic_and_decorrelated() {
        let root = DetRng::from_label("root");
        let mut a1 = root.fork("cpu0");
        let mut a2 = root.fork("cpu0");
        let mut b = root.fork("cpu1");
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_does_not_perturb_parent() {
        let mut r1 = DetRng::from_label("p");
        let mut r2 = DetRng::from_label("p");
        let _ = r1.fork("child");
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = DetRng::from_label("w");
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(rng.weighted_index(&weights), 1);
        }
        let mut counts = [0usize; 2];
        let weights = [1.0, 3.0];
        for _ in 0..4000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = DetRng::from_label("r");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
