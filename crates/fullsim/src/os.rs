//! Operating-system images and their performance character.
//!
//! The paper's use-case 1 observes that the *same* benchmark binaryset
//! behaves differently across Ubuntu LTS releases: Ubuntu 20.04 executes
//! more instructions (newer GCC 9.3 codegen vs 18.04's 7.4/7.5) but at
//! higher CPU utilization, netting shorter run times. This module
//! captures that cross-stack effect as an [`OsProfile`] applied when a
//! workload is lowered to instruction streams.

use crate::kernel::KernelVersion;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A user-land disk image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OsImage {
    /// Ubuntu 18.04 LTS server (GCC 7.4 tool-chain, kernel 4.15 line).
    Ubuntu1804,
    /// Ubuntu 20.04 LTS server (GCC 9.3 tool-chain, kernel 5.4 line).
    Ubuntu2004,
}

impl fmt::Display for OsImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsImage::Ubuntu1804 => f.write_str("ubuntu-18.04"),
            OsImage::Ubuntu2004 => f.write_str("ubuntu-20.04"),
        }
    }
}

/// Performance-relevant character of an OS image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsProfile {
    /// Bundled system compiler version.
    pub gcc_version: &'static str,
    /// Multiplier on dynamic instruction count (codegen differences;
    /// newer compilers unroll/vectorize more aggressively here).
    pub inst_factor: f64,
    /// Multiplier on effective CPI (lower = better utilization from
    /// newer runtime libraries and scheduler behaviour).
    pub cpi_factor: f64,
    /// Multiplier on synchronization cost (newer futex/scheduler paths
    /// are cheaper).
    pub sync_factor: f64,
    /// Kernel version the stock image boots.
    pub default_kernel: KernelVersion,
}

impl OsImage {
    /// The image's performance profile.
    pub fn profile(self) -> OsProfile {
        match self {
            OsImage::Ubuntu1804 => OsProfile {
                gcc_version: "7.4",
                inst_factor: 1.0,
                cpi_factor: 1.0,
                sync_factor: 1.0,
                default_kernel: KernelVersion::V4_15,
            },
            OsImage::Ubuntu2004 => OsProfile {
                gcc_version: "9.3",
                // More instructions, but noticeably better utilization —
                // the combination the paper measured.
                inst_factor: 1.12,
                cpi_factor: 0.76,
                sync_factor: 0.62,
                default_kernel: KernelVersion::V5_4,
            },
        }
    }

    /// Extra parallel efficiency some applications gain from the newer
    /// user-land (the paper calls out `blackscholes` and `ferret` as
    /// speeding up most on 20.04).
    pub fn parallel_bonus(self, workload: &str) -> f64 {
        match (self, workload) {
            (OsImage::Ubuntu2004, "blackscholes") => 0.022,
            (OsImage::Ubuntu2004, "ferret") => 0.028,
            (OsImage::Ubuntu2004, _) => 0.006,
            (OsImage::Ubuntu1804, _) => 0.0,
        }
    }

    /// Both LTS images evaluated by the paper's use-case 1.
    pub const ALL: [OsImage; 2] = [OsImage::Ubuntu1804, OsImage::Ubuntu2004];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn focal_runs_more_instructions_faster() {
        let bionic = OsImage::Ubuntu1804.profile();
        let focal = OsImage::Ubuntu2004.profile();
        assert!(
            focal.inst_factor > bionic.inst_factor,
            "20.04 executes more instructions"
        );
        assert!(
            focal.cpi_factor < bionic.cpi_factor,
            "20.04 runs at higher utilization"
        );
        // Net effect: shorter execution time on 20.04.
        assert!(focal.inst_factor * focal.cpi_factor < bionic.inst_factor * bionic.cpi_factor);
    }

    #[test]
    fn default_kernels_match_the_paper() {
        assert_eq!(
            OsImage::Ubuntu1804.profile().default_kernel,
            KernelVersion::V4_15
        );
        assert_eq!(
            OsImage::Ubuntu2004.profile().default_kernel,
            KernelVersion::V5_4
        );
    }

    #[test]
    fn parallel_bonus_highlights_blackscholes_and_ferret() {
        let generic = OsImage::Ubuntu2004.parallel_bonus("dedup");
        assert!(OsImage::Ubuntu2004.parallel_bonus("blackscholes") > generic);
        assert!(OsImage::Ubuntu2004.parallel_bonus("ferret") > generic);
        assert_eq!(OsImage::Ubuntu1804.parallel_bonus("ferret"), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(OsImage::Ubuntu1804.to_string(), "ubuntu-18.04");
        assert_eq!(OsImage::Ubuntu2004.to_string(), "ubuntu-20.04");
    }
}
