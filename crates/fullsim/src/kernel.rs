//! Linux kernel versions and the staged boot model.
//!
//! The boot workload is what the paper's use-case 2 exercises across
//! 480 configurations. Boot proceeds through the canonical stages of a
//! Linux bring-up; each stage contributes instructions whose cost the
//! configured CPU/memory models then determine.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Linux kernel release line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KernelVersion {
    /// v4.4 LTS (2016).
    V4_4,
    /// v4.9 LTS (2016).
    V4_9,
    /// v4.14 LTS (2017).
    V4_14,
    /// v4.15 (Ubuntu 18.04 stock kernel).
    V4_15,
    /// v4.19 LTS (2018).
    V4_19,
    /// v5.4 LTS (2019; Ubuntu 20.04 stock kernel).
    V5_4,
}

impl KernelVersion {
    /// The five LTS kernels crossed by the paper's Figure 8.
    pub const FIGURE8: [KernelVersion; 5] = [
        KernelVersion::V4_4,
        KernelVersion::V4_9,
        KernelVersion::V4_14,
        KernelVersion::V4_19,
        KernelVersion::V5_4,
    ];

    /// Full version string (the specific point releases the paper's
    /// resources ship).
    pub fn release(self) -> &'static str {
        match self {
            KernelVersion::V4_4 => "4.4.186",
            KernelVersion::V4_9 => "4.9.186",
            KernelVersion::V4_14 => "4.14.134",
            KernelVersion::V4_15 => "4.15.18",
            KernelVersion::V4_19 => "4.19.83",
            KernelVersion::V5_4 => "5.4.51",
        }
    }

    /// Relative boot instruction cost (newer kernels do more work during
    /// bring-up).
    pub fn boot_factor(self) -> f64 {
        match self {
            KernelVersion::V4_4 => 1.00,
            KernelVersion::V4_9 => 1.04,
            KernelVersion::V4_14 => 1.09,
            KernelVersion::V4_15 => 1.10,
            KernelVersion::V4_19 => 1.15,
            KernelVersion::V5_4 => 1.22,
        }
    }

    /// Relative cost of futex/scheduler synchronization paths (newer
    /// kernels are cheaper).
    pub fn sync_factor(self) -> f64 {
        match self {
            KernelVersion::V4_4 => 1.15,
            KernelVersion::V4_9 => 1.10,
            KernelVersion::V4_14 => 1.05,
            KernelVersion::V4_15 => 1.03,
            KernelVersion::V4_19 => 1.00,
            KernelVersion::V5_4 => 0.92,
        }
    }
}

impl fmt::Display for KernelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.release())
    }
}

/// How far the system boots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BootKind {
    /// Boot the kernel only, then exit (the paper's "booting only the
    /// Linux kernel").
    KernelOnly,
    /// Boot to runlevel 5 (multi-user) under systemd.
    Systemd,
}

impl fmt::Display for BootKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootKind::KernelOnly => f.write_str("kernel-only"),
            BootKind::Systemd => f.write_str("systemd-runlevel5"),
        }
    }
}

/// The canonical boot stages, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BootStage {
    /// Kernel image decompression.
    Decompress,
    /// Early memory-management bring-up.
    EarlyMm,
    /// Scheduler and SMP initialization.
    SchedInit,
    /// Device/driver probing.
    DriverProbe,
    /// Root filesystem mount.
    RootfsMount,
    /// Init system (systemd) to the multi-user target.
    InitSystem,
}

impl BootStage {
    /// Stages executed for the given boot kind, in order.
    pub fn sequence(kind: BootKind) -> &'static [BootStage] {
        const KERNEL: [BootStage; 5] = [
            BootStage::Decompress,
            BootStage::EarlyMm,
            BootStage::SchedInit,
            BootStage::DriverProbe,
            BootStage::RootfsMount,
        ];
        const FULL: [BootStage; 6] = [
            BootStage::Decompress,
            BootStage::EarlyMm,
            BootStage::SchedInit,
            BootStage::DriverProbe,
            BootStage::RootfsMount,
            BootStage::InitSystem,
        ];
        match kind {
            BootKind::KernelOnly => &KERNEL,
            BootKind::Systemd => &FULL,
        }
    }

    /// Baseline dynamic instructions of the stage, in millions, on a
    /// single core with kernel factor 1.0.
    pub fn base_minsts(self) -> u64 {
        match self {
            BootStage::Decompress => 45,
            BootStage::EarlyMm => 60,
            BootStage::SchedInit => 25,
            BootStage::DriverProbe => 110,
            BootStage::RootfsMount => 70,
            BootStage::InitSystem => 620,
        }
    }

    /// Extra instructions per additional core (SMP bring-up work), in
    /// millions.
    pub fn per_core_minsts(self) -> u64 {
        match self {
            BootStage::SchedInit => 8,
            BootStage::DriverProbe => 2,
            BootStage::InitSystem => 12,
            _ => 0,
        }
    }

    /// Total instructions for this stage under a configuration.
    pub fn insts(self, kernel: KernelVersion, cores: u32) -> u64 {
        let base = self.base_minsts() + self.per_core_minsts() * (cores.saturating_sub(1)) as u64;
        ((base * 1_000_000) as f64 * kernel.boot_factor()) as u64
    }
}

impl fmt::Display for BootStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BootStage::Decompress => "decompress",
            BootStage::EarlyMm => "early-mm",
            BootStage::SchedInit => "sched-init",
            BootStage::DriverProbe => "driver-probe",
            BootStage::RootfsMount => "rootfs-mount",
            BootStage::InitSystem => "init-system",
        };
        f.write_str(s)
    }
}

/// Total boot instructions for a configuration.
pub fn boot_insts(kind: BootKind, kernel: KernelVersion, cores: u32) -> u64 {
    BootStage::sequence(kind)
        .iter()
        .map(|s| s.insts(kernel, cores))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_uses_five_lts_kernels() {
        assert_eq!(KernelVersion::FIGURE8.len(), 5);
        // Ubuntu 18.04's 4.15 is not an LTS line and is not in the set.
        assert!(!KernelVersion::FIGURE8.contains(&KernelVersion::V4_15));
    }

    #[test]
    fn systemd_boot_costs_more_than_kernel_only() {
        let kernel_only = boot_insts(BootKind::KernelOnly, KernelVersion::V5_4, 1);
        let systemd = boot_insts(BootKind::Systemd, KernelVersion::V5_4, 1);
        assert!(systemd > kernel_only * 2, "{systemd} vs {kernel_only}");
    }

    #[test]
    fn newer_kernels_boot_more_instructions() {
        let old = boot_insts(BootKind::Systemd, KernelVersion::V4_4, 1);
        let new = boot_insts(BootKind::Systemd, KernelVersion::V5_4, 1);
        assert!(new > old);
    }

    #[test]
    fn more_cores_mean_more_smp_work() {
        let one = boot_insts(BootKind::Systemd, KernelVersion::V4_19, 1);
        let eight = boot_insts(BootKind::Systemd, KernelVersion::V4_19, 8);
        assert!(eight > one);
        // But the growth is modest (SMP bring-up, not a full re-boot).
        assert!((eight as f64) < one as f64 * 1.3);
    }

    #[test]
    fn release_strings_match_the_resources() {
        assert_eq!(KernelVersion::V4_15.release(), "4.15.18");
        assert_eq!(KernelVersion::V5_4.release(), "5.4.51");
        assert_eq!(KernelVersion::V5_4.to_string(), "v5.4.51");
    }

    #[test]
    fn stage_sequences_are_ordered_prefixes() {
        let short = BootStage::sequence(BootKind::KernelOnly);
        let full = BootStage::sequence(BootKind::Systemd);
        assert_eq!(&full[..short.len()], short);
        assert_eq!(full.last(), Some(&BootStage::InitSystem));
    }

    #[test]
    fn newer_kernels_have_cheaper_sync() {
        assert!(KernelVersion::V5_4.sync_factor() < KernelVersion::V4_4.sync_factor());
    }
}
