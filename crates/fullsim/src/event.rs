//! The discrete-event queue at the heart of the simulator.
//!
//! Events are ordered by tick; ties break by (priority, insertion
//! sequence) so simulation is fully deterministic regardless of how
//! events were scheduled.

use crate::ticks::Tick;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Scheduling priority for events that share a tick (lower runs first).
pub type Priority = i32;

/// An event scheduled on an [`EventQueue`].
#[derive(Debug)]
pub struct Event<T> {
    /// When the event fires.
    pub when: Tick,
    /// Tie-break priority (lower first).
    pub priority: Priority,
    /// Payload delivered to the caller when the event is popped.
    pub payload: T,
    seq: u64,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.when == other.when && self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first.
        other
            .when
            .cmp(&self.when)
            .then_with(|| other.priority.cmp(&self.priority))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use simart_fullsim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(100, "late");
/// q.schedule(10, "early");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.now(), 10);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    now: Tick,
    next_seq: u64,
    processed: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at tick 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time (the tick of the last popped event).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules an event at absolute tick `when` with default priority.
    ///
    /// # Panics
    ///
    /// Panics when scheduling in the past (`when < now`) — a simulator
    /// bug that must never be silently absorbed.
    pub fn schedule(&mut self, when: Tick, payload: T) {
        self.schedule_with_priority(when, 0, payload);
    }

    /// Schedules with an explicit tie-break priority.
    ///
    /// # Panics
    ///
    /// Panics when scheduling in the past.
    pub fn schedule_with_priority(&mut self, when: Tick, priority: Priority, payload: T) {
        assert!(
            when >= self.now,
            "cannot schedule event in the past ({when} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            when,
            priority,
            payload,
            seq,
        });
    }

    /// Schedules `delta` ticks after now.
    pub fn schedule_after(&mut self, delta: Tick, payload: T) {
        let when = self.now.saturating_add(delta);
        self.schedule(when, payload);
    }

    /// Pops the earliest event, advancing simulated time to it.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let event = self.heap.pop()?;
        self.now = event.when;
        self.processed += 1;
        Some(event)
    }

    /// The tick of the next pending event.
    pub fn peek_when(&self) -> Option<Tick> {
        self.heap.peek().map(|e| e.when)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events without advancing time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(q.now(), 30);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_priority_then_insertion() {
        let mut q = EventQueue::new();
        q.schedule_with_priority(5, 1, "second");
        q.schedule_with_priority(5, 0, "first");
        q.schedule_with_priority(5, 1, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(100, "start");
        q.pop();
        q.schedule_after(50, "end");
        assert_eq!(q.peek_when(), Some(150));
    }

    #[test]
    fn clear_keeps_time() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(20, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), 10);
    }
}
