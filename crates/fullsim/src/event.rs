//! The discrete-event queue at the heart of the simulator.
//!
//! Events are ordered by tick; ties break by (priority, insertion
//! sequence) so simulation is fully deterministic regardless of how
//! events were scheduled.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — the default, a **calendar queue** (a hashed
//!   timing wheel with an overflow heap). Schedule and pop are O(1)
//!   amortized at high event rates because an event lands directly in
//!   the bucket for its time window instead of sifting through a heap.
//!   Far-future events that fall beyond the calendar's horizon wait in
//!   an overflow [`BinaryHeap`] and migrate into buckets as simulated
//!   time approaches them.
//! * [`HeapEventQueue`] — the original binary-heap queue, kept as the
//!   O(log n) reference. The property tests in `tests/props.rs` prove
//!   both produce byte-identical event traces, and
//!   `benches/hotpath.rs` uses it as the baseline the calendar queue
//!   must beat.
//!
//! Determinism does not depend on bucket geometry: within a bucket
//! events are kept sorted by the full `(when, priority, seq)` key, and
//! bucket windows partition time, so pop order equals the heap's order
//! exactly — not just statistically.

use crate::ticks::Tick;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Scheduling priority for events that share a tick (lower runs first).
pub type Priority = i32;

/// An event scheduled on an [`EventQueue`].
#[derive(Debug)]
pub struct Event<T> {
    /// When the event fires.
    pub when: Tick,
    /// Tie-break priority (lower first).
    pub priority: Priority,
    /// Payload delivered to the caller when the event is popped.
    pub payload: T,
    seq: u64,
}

impl<T> Event<T> {
    /// The total-order key: time, then priority, then insertion order.
    fn key(&self) -> (Tick, Priority, u64) {
        (self.when, self.priority, self.seq)
    }
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.when == other.when && self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first.
        other.key().cmp(&self.key())
    }
}

/// Smallest number of calendar buckets.
const MIN_BUCKETS: usize = 8;
/// Largest number of calendar buckets.
const MAX_BUCKETS: usize = 1 << 15;

/// A deterministic discrete-event queue (calendar-queue implementation).
///
/// ```
/// use simart_fullsim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(100, "late");
/// q.schedule(10, "early");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.now(), 10);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    /// Calendar buckets; each sorted *descending* by key so the minimum
    /// pops from the tail in O(1).
    buckets: Vec<Vec<Event<T>>>,
    /// Bucket width in ticks (>= 1); adapted to the mean event gap on
    /// resize so one rotation spans roughly the pending horizon.
    width: Tick,
    /// Bucket index whose window starts at `day_start`.
    cursor: usize,
    /// Lower bound (inclusive, width-aligned) of the cursor's window.
    day_start: Tick,
    /// Events beyond the calendar horizon, ordered min-first.
    overflow: BinaryHeap<Event<T>>,
    /// Number of events currently stored in `buckets`.
    in_buckets: usize,
    now: Tick,
    next_seq: u64,
    processed: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at tick 0.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1,
            cursor: 0,
            day_start: 0,
            overflow: BinaryHeap::new(),
            in_buckets: 0,
            now: 0,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time (the tick of the last popped event).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules an event at absolute tick `when` with default priority.
    ///
    /// # Panics
    ///
    /// Panics when scheduling in the past (`when < now`) — a simulator
    /// bug that must never be silently absorbed.
    pub fn schedule(&mut self, when: Tick, payload: T) {
        self.schedule_with_priority(when, 0, payload);
    }

    /// Schedules with an explicit tie-break priority.
    ///
    /// # Panics
    ///
    /// Panics when scheduling in the past.
    pub fn schedule_with_priority(&mut self, when: Tick, priority: Priority, payload: T) {
        assert!(
            when >= self.now,
            "cannot schedule event in the past ({when} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Event {
            when,
            priority,
            payload,
            seq,
        });
        if self.len() > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    /// Schedules `delta` ticks after now.
    pub fn schedule_after(&mut self, delta: Tick, payload: T) {
        let when = self.now.saturating_add(delta);
        self.schedule(when, payload);
    }

    /// Pops the earliest event, advancing simulated time to it.
    pub fn pop(&mut self) -> Option<Event<T>> {
        if self.is_empty() {
            return None;
        }
        loop {
            // If the calendar is empty, jump straight to the overflow
            // minimum instead of sweeping empty windows one by one.
            if self.in_buckets == 0 {
                let min_when = self.overflow.peek().expect("len > 0").when;
                self.day_start = (min_when / self.width) * self.width;
                self.cursor = ((self.day_start / self.width) % self.buckets.len() as u64) as usize;
            }
            // Migrate overflow events that fall inside the current
            // window; they always belong to the cursor's bucket. A
            // window whose end overflows the tick type reaches the end
            // of time and takes everything that is left.
            let window_end = self.day_start.checked_add(self.width);
            while self
                .overflow
                .peek()
                .is_some_and(|e| window_end.is_none_or(|end| e.when < end))
            {
                let event = self.overflow.pop().expect("peeked");
                Self::bucket_insert(&mut self.buckets[self.cursor], event);
                self.in_buckets += 1;
            }
            if let Some(event) = self.buckets[self.cursor].pop() {
                self.in_buckets -= 1;
                self.now = event.when;
                self.processed += 1;
                if self.len() < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
                    self.rebuild(self.buckets.len() / 2);
                }
                return Some(event);
            }
            // Current window exhausted: advance the calendar one day.
            self.cursor = (self.cursor + 1) % self.buckets.len();
            self.day_start = self.day_start.saturating_add(self.width);
        }
    }

    /// The tick of the next pending event.
    pub fn peek_when(&self) -> Option<Tick> {
        let bucket_min = self
            .buckets
            .iter()
            .filter_map(|b| b.last())
            .map(|e| e.key())
            .min();
        let overflow_min = self.overflow.peek().map(Event::key);
        match (bucket_min, overflow_min) {
            (Some(b), Some(o)) => Some(b.min(o).0),
            (Some(b), None) => Some(b.0),
            (None, Some(o)) => Some(o.0),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_buckets + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all pending events without advancing time.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.in_buckets = 0;
    }

    /// First tick strictly beyond the calendar's reach; events at or
    /// past it wait in the overflow heap.
    fn horizon(&self) -> Tick {
        self.day_start
            .saturating_add(self.width.saturating_mul(self.buckets.len() as u64))
    }

    /// Places an event into its calendar bucket or the overflow heap.
    fn insert(&mut self, event: Event<T>) {
        if event.when < self.horizon() {
            let idx = ((event.when / self.width) % self.buckets.len() as u64) as usize;
            Self::bucket_insert(&mut self.buckets[idx], event);
            self.in_buckets += 1;
        } else {
            self.overflow.push(event);
        }
    }

    /// Inserts into a descending-sorted bucket, preserving total order.
    fn bucket_insert(bucket: &mut Vec<Event<T>>, event: Event<T>) {
        let key = event.key();
        let pos = bucket.partition_point(|e| e.key() > key);
        bucket.insert(pos, event);
    }

    /// Redistributes all pending events over `n_buckets` buckets with a
    /// width matched to the mean gap between pending events.
    fn rebuild(&mut self, n_buckets: usize) {
        let mut events: Vec<Event<T>> = Vec::with_capacity(self.len());
        for bucket in &mut self.buckets {
            events.append(bucket);
        }
        events.extend(std::mem::take(&mut self.overflow));
        self.in_buckets = 0;
        self.buckets = (0..n_buckets).map(|_| Vec::new()).collect();
        // Width ~ span / count keeps roughly one event per bucket, the
        // calendar-queue operating point where schedule and pop are O(1).
        let span = match (
            events.iter().map(|e| e.when).min(),
            events.iter().map(|e| e.when).max(),
        ) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 0,
        };
        self.width = (span / (events.len().max(1) as u64)).max(1);
        self.day_start = (self.now / self.width) * self.width;
        self.cursor = ((self.day_start / self.width) % n_buckets as u64) as usize;
        for event in events {
            self.insert(event);
        }
    }
}

/// The original binary-heap event queue, retained as the O(log n)
/// reference implementation.
///
/// `tests/props.rs` drives this and [`EventQueue`] with identical
/// schedules and asserts identical pop traces; `benches/hotpath.rs`
/// contrasts their schedule/pop cost as the pending-event count grows.
#[derive(Debug)]
pub struct HeapEventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    now: Tick,
    next_seq: u64,
    processed: u64,
}

impl<T> Default for HeapEventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HeapEventQueue<T> {
    /// Creates an empty queue at tick 0.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time (the tick of the last popped event).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules an event at absolute tick `when` with default priority.
    ///
    /// # Panics
    ///
    /// Panics when scheduling in the past (`when < now`).
    pub fn schedule(&mut self, when: Tick, payload: T) {
        self.schedule_with_priority(when, 0, payload);
    }

    /// Schedules with an explicit tie-break priority.
    ///
    /// # Panics
    ///
    /// Panics when scheduling in the past.
    pub fn schedule_with_priority(&mut self, when: Tick, priority: Priority, payload: T) {
        assert!(
            when >= self.now,
            "cannot schedule event in the past ({when} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            when,
            priority,
            payload,
            seq,
        });
    }

    /// Schedules `delta` ticks after now.
    pub fn schedule_after(&mut self, delta: Tick, payload: T) {
        let when = self.now.saturating_add(delta);
        self.schedule(when, payload);
    }

    /// Pops the earliest event, advancing simulated time to it.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let event = self.heap.pop()?;
        self.now = event.when;
        self.processed += 1;
        Some(event)
    }

    /// The tick of the next pending event.
    pub fn peek_when(&self) -> Option<Tick> {
        self.heap.peek().map(|e| e.when)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events without advancing time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(q.now(), 30);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_priority_then_insertion() {
        let mut q = EventQueue::new();
        q.schedule_with_priority(5, 1, "second");
        q.schedule_with_priority(5, 0, "first");
        q.schedule_with_priority(5, 1, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(100, "start");
        q.pop();
        q.schedule_after(50, "end");
        assert_eq!(q.peek_when(), Some(150));
    }

    #[test]
    fn clear_keeps_time() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(20, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), 10);
    }

    #[test]
    fn far_future_events_use_the_overflow_heap() {
        let mut q = EventQueue::new();
        q.schedule(u64::MAX, "doomsday");
        q.schedule(u64::MAX - 1, "eve");
        q.schedule(1, "tomorrow");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().payload, "tomorrow");
        assert_eq!(q.pop().unwrap().payload, "eve");
        assert_eq!(q.pop().unwrap().payload, "doomsday");
        assert_eq!(q.now(), u64::MAX);
    }

    #[test]
    fn sparse_picosecond_gaps_pop_in_order() {
        // Boot stages are ~1e12 ticks apart: the calendar must rebase
        // across huge empty spans instead of sweeping windows.
        let mut q = EventQueue::new();
        let mut when = 0u64;
        for stage in 0..16u64 {
            when += 900_000_000_000 + stage * 7_777;
            q.schedule(when, stage);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn grows_and_shrinks_without_losing_events() {
        let mut q = EventQueue::new();
        // Enough events to force several grow rebuilds...
        for i in 0..10_000u64 {
            q.schedule((i * 37) % 4096 + 1, i);
        }
        assert_eq!(q.len(), 10_000);
        // ...then drain, forcing shrink rebuilds on the way down.
        let mut popped = Vec::with_capacity(10_000);
        let mut last = (0, 0, 0);
        while let Some(e) = q.pop() {
            let key = (e.when, e.priority, e.seq);
            assert!(key > last, "pop order regressed: {key:?} after {last:?}");
            last = key;
            popped.push(e.payload);
        }
        popped.sort_unstable();
        assert_eq!(popped, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn matches_heap_queue_trace_exactly() {
        // Interleaved schedule/pop mirror-driving both implementations.
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut step = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..2_000u64 {
            let r = step();
            if r % 3 != 0 || cal.is_empty() {
                let delta = match r % 5 {
                    0 => r % 7,                  // dense ties
                    1 => r % 100_000,            // near future
                    _ => r % 10_000_000_000_000, // far future (overflow)
                };
                let priority = (r % 3) as Priority - 1;
                let when = cal.now() + delta;
                cal.schedule_with_priority(when, priority, round);
                heap.schedule_with_priority(when, priority, round);
            } else {
                let a = cal.pop().map(|e| (e.when, e.priority, e.payload));
                let b = heap.pop().map(|e| (e.when, e.priority, e.payload));
                assert_eq!(a, b, "divergence at round {round}");
                assert_eq!(cal.now(), heap.now());
            }
        }
        while !heap.is_empty() {
            let a = cal.pop().map(|e| (e.when, e.priority, e.payload));
            let b = heap.pop().map(|e| (e.when, e.priority, e.payload));
            assert_eq!(a, b);
        }
        assert!(cal.is_empty());
        assert_eq!(cal.processed(), heap.processed());
    }
}
