//! The thread-pool executor (the `multiprocessing` analogue).

use crate::task::{execute_reporting, Task, TaskHandle, TaskReport};
use crate::{trace, Scheduler};
use crossbeam::channel::{bounded, unbounded, Sender};
use simart_observe as observe;
use std::thread::JoinHandle;

type Job = (Task, Sender<TaskReport>);

/// A fixed pool of worker threads draining a shared queue.
///
/// Dropping the pool signals shutdown and joins the workers; queued
/// tasks still run to completion first.
#[derive(Debug)]
pub struct PoolScheduler {
    queue: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
    queue_trace_id: u64,
}

impl PoolScheduler {
    /// Creates a pool with `size` workers.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> PoolScheduler {
        assert!(size > 0, "a pool needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let queue_trace_id = trace::fresh_id();
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("simart-pool-{i}"))
                    .spawn(move || {
                        while let Ok((task, report_tx)) = rx.recv() {
                            trace::dequeue(queue_trace_id);
                            observe::count("pool.dequeued", 1);
                            execute_reporting(task, report_tx);
                        }
                    })
                    .expect("spawning pool worker")
            })
            .collect();
        PoolScheduler { queue: Some(tx), workers, size, queue_trace_id }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Scheduler for PoolScheduler {
    fn submit(&self, mut task: Task) -> TaskHandle {
        let name = task.name().to_owned();
        let (tx, rx) = bounded(1);
        task.stamp_queued();
        observe::count("pool.enqueued", 1);
        trace::task_submit(task.trace_id);
        trace::enqueue(self.queue_trace_id);
        self.queue
            .as_ref()
            .expect("queue alive until drop")
            .send((task, tx))
            .expect("workers alive until drop");
        TaskHandle { receiver: rx, name }
    }

    fn name(&self) -> &'static str {
        "pool"
    }
}

impl Drop for PoolScheduler {
    fn drop(&mut self) {
        // Closing the channel lets workers drain and exit.
        self.queue.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn runs_tasks_concurrently() {
        let pool = PoolScheduler::new(4);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                pool.submit(Task::new(format!("t{i}"), move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    running.fetch_sub(1, Ordering::SeqCst);
                    Ok(String::new())
                }))
            })
            .collect();
        for handle in handles {
            assert!(handle.wait().state.is_success());
        }
        assert!(peak.load(Ordering::SeqCst) > 1, "tasks overlapped");
        assert!(peak.load(Ordering::SeqCst) <= 4, "bounded by pool size");
    }

    #[test]
    fn drop_drains_queued_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = PoolScheduler::new(2);
            for i in 0..6 {
                let counter = Arc::clone(&counter);
                let _handle = pool.submit(Task::new(format!("t{i}"), move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    Ok(String::new())
                }));
            }
            // Pool dropped here.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = PoolScheduler::new(0);
    }
}
