//! The thread-pool executor (the `multiprocessing` analogue).

use crate::task::{execute_reporting, Task, TaskHandle, TaskReport};
use crate::{trace, Scheduler};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use simart_observe as observe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;

type Job = (Task, Sender<TaskReport>);

/// A fixed pool of worker threads draining a shared queue.
///
/// Dropping the pool signals shutdown and joins the workers; queued
/// tasks still run to completion first. For the broker's
/// discard-on-shutdown semantics instead, call [`Self::shutdown_now`].
#[derive(Debug)]
pub struct PoolScheduler {
    queue: Mutex<Option<Sender<Job>>>,
    /// The pool's own view of the queue, used by [`Self::shutdown_now`]
    /// to drain jobs the workers will never run.
    pending: Receiver<Job>,
    dropped: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
    size: usize,
    queue_trace_id: u64,
}

impl PoolScheduler {
    /// Creates a pool with `size` workers.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> PoolScheduler {
        assert!(size > 0, "a pool needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let queue_trace_id = trace::fresh_id();
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("simart-pool-{i}"))
                    .spawn(move || {
                        while let Ok((task, report_tx)) = rx.recv() {
                            trace::dequeue(queue_trace_id);
                            observe::count("pool.dequeued", 1);
                            execute_reporting(task, report_tx);
                        }
                    })
                    .expect("spawning pool worker")
            })
            .collect();
        PoolScheduler {
            queue: Mutex::new(Some(tx)),
            pending: rx,
            dropped: AtomicU64::new(0),
            workers: Mutex::new(workers),
            size,
            queue_trace_id,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Closes the queue and discards still-queued jobs without running
    /// them (in-progress tasks finish) — the same semantics as
    /// [`BrokerScheduler::shutdown_now`](crate::BrokerScheduler::shutdown_now),
    /// in contrast to the pool's default drop behaviour of draining the
    /// queue to completion. Handles of discarded tasks resolve to
    /// synthesized "scheduler dropped task" failure reports; later
    /// submissions are dropped the same way. Returns the number of
    /// jobs discarded by this call.
    pub fn shutdown_now(&self) -> u64 {
        let _ = self.queue.lock().take();
        let mut discarded = 0u64;
        // Race with workers draining the same queue is fine: each job
        // goes to exactly one side.
        while let Ok((_task, report_tx)) = self.pending.try_recv() {
            drop(report_tx);
            discarded += 1;
        }
        self.dropped.fetch_add(discarded, Ordering::SeqCst);
        discarded
    }

    /// Tasks dropped without execution (shutdown or post-shutdown
    /// submission).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }
}

impl Scheduler for PoolScheduler {
    fn submit(&self, mut task: Task) -> TaskHandle {
        let name = task.name().to_owned();
        let (tx, rx) = bounded(1);
        task.stamp_queued();
        trace::task_submit(task.trace_id);
        match self.queue.lock().as_ref() {
            Some(sender) => {
                observe::count("pool.enqueued", 1);
                trace::enqueue(self.queue_trace_id);
                if sender.send((task, tx)).is_err() {
                    // All receivers gone: degrade to the drop path
                    // instead of panicking.
                    self.dropped.fetch_add(1, Ordering::SeqCst);
                }
            }
            None => {
                // Shut down: drop the report sender so the handle
                // resolves to a synthesized failure.
                self.dropped.fetch_add(1, Ordering::SeqCst);
                drop(tx);
            }
        }
        TaskHandle { receiver: rx, name }
    }

    fn name(&self) -> &'static str {
        "pool"
    }
}

impl Drop for PoolScheduler {
    fn drop(&mut self) {
        // Closing the channel lets workers drain and exit.
        self.queue.get_mut().take();
        for worker in self.workers.get_mut().drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskState;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn runs_tasks_concurrently() {
        let pool = PoolScheduler::new(4);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                pool.submit(Task::new(format!("t{i}"), move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    running.fetch_sub(1, Ordering::SeqCst);
                    Ok(String::new())
                }))
            })
            .collect();
        for handle in handles {
            assert!(handle.wait().state.is_success());
        }
        assert!(peak.load(Ordering::SeqCst) > 1, "tasks overlapped");
        assert!(peak.load(Ordering::SeqCst) <= 4, "bounded by pool size");
    }

    #[test]
    fn drop_drains_queued_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = PoolScheduler::new(2);
            for i in 0..6 {
                let counter = Arc::clone(&counter);
                let _handle = pool.submit(Task::new(format!("t{i}"), move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    Ok(String::new())
                }));
            }
            // Pool dropped here.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn shutdown_now_discards_queued_tasks() {
        let pool = PoolScheduler::new(1);
        let (gate_tx, gate_rx) = unbounded::<()>();
        let first = pool.submit(Task::new("gated", move || {
            let _ = gate_rx.recv();
            Ok("released".to_owned())
        }));
        let queued: Vec<_> = (0..3)
            .map(|i| pool.submit(Task::new(format!("queued-{i}"), || Ok(String::new()))))
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        let discarded = pool.shutdown_now();
        assert_eq!(discarded, 3);
        gate_tx.send(()).unwrap();
        assert!(first.wait().state.is_success(), "in-progress task finishes");
        for handle in queued {
            let report = handle.wait();
            assert_eq!(report.state, TaskState::Failed);
            assert!(report
                .error
                .as_deref()
                .unwrap_or("")
                .contains("scheduler dropped task"));
        }
        // Submissions after shutdown are dropped the same way.
        let late = pool.submit(Task::new("late", || Ok(String::new()))).wait();
        assert_eq!(late.state, TaskState::Failed);
        assert_eq!(pool.dropped(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = PoolScheduler::new(0);
    }
}
