//! Task definitions, handles, and reports.

use crate::fault::FaultInjector;
use crate::retry::RetryPolicy;
use crate::trace;
use crossbeam::channel::{bounded, Receiver, Sender};
use simart_observe as observe;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The work a task performs: returns its textual output or an error
/// message (results proper are written to the database by the closure).
/// `Fn` (not `FnOnce`) so failed attempts can be retried.
pub type TaskFn = Arc<dyn Fn() -> Result<String, String> + Send + Sync + 'static>;

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Completed and returned output.
    Succeeded,
    /// Returned an error (possibly after retries).
    Failed,
    /// Exceeded its timeout and was terminated.
    TimedOut,
    /// Exhausted the broker's redelivery cap (its lease expired or its
    /// worker died on every delivery) and was dead-lettered. Terminal:
    /// the task is never automatically retried or redelivered again.
    Quarantined,
}

impl TaskState {
    /// Whether the task succeeded.
    pub fn is_success(self) -> bool {
        self == TaskState::Succeeded
    }
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskState::Succeeded => f.write_str("succeeded"),
            TaskState::Failed => f.write_str("failed"),
            TaskState::TimedOut => f.write_str("timed-out"),
            TaskState::Quarantined => f.write_str("quarantined"),
        }
    }
}

/// How a single attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttemptDisposition {
    /// The attempt returned output.
    Succeeded,
    /// The attempt returned an error or panicked.
    Errored,
    /// The attempt outlived its deadline.
    TimedOut,
}

impl fmt::Display for AttemptDisposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttemptDisposition::Succeeded => f.write_str("succeeded"),
            AttemptDisposition::Errored => f.write_str("errored"),
            AttemptDisposition::TimedOut => f.write_str("timed-out"),
        }
    }
}

/// One entry of a task's attempt history. Contains only deterministic
/// fields (no wall-clock measurements), so two runs under the same
/// retry policy, seed, and fault plan produce identical histories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub index: u32,
    /// How the attempt ended.
    pub disposition: AttemptDisposition,
    /// Backoff delay scheduled before this attempt (zero for the
    /// first).
    pub delay_before: Duration,
}

/// A schedulable unit of work.
#[derive(Clone)]
pub struct Task {
    pub(crate) name: String,
    pub(crate) work: TaskFn,
    pub(crate) timeout: Option<Duration>,
    pub(crate) policy: RetryPolicy,
    pub(crate) fault: Option<Arc<FaultInjector>>,
    /// Id for race-detector tracepoints (`0` when tracing is compiled
    /// out). Clones share the id: they are the same logical task.
    pub(crate) trace_id: u64,
    /// When the task entered a scheduler queue (zero-sized unless the
    /// `observe` feature is on); feeds the `tasks.queue_wait_us`
    /// histogram.
    pub(crate) queue_stamp: observe::Stamp,
}

impl Task {
    /// Creates a task from a name and its work closure.
    pub fn new(
        name: impl Into<String>,
        work: impl Fn() -> Result<String, String> + Send + Sync + 'static,
    ) -> Task {
        Task {
            name: name.into(),
            work: Arc::new(work),
            timeout: None,
            policy: RetryPolicy::none(),
            fault: None,
            trace_id: trace::fresh_id(),
            queue_stamp: observe::Stamp::now(),
        }
    }

    /// Marks the moment the task was handed to a scheduler; the delta
    /// to execution start is its queue wait. Called by every
    /// scheduler's `submit`.
    pub(crate) fn stamp_queued(&mut self) {
        self.queue_stamp = observe::Stamp::now();
    }

    /// Sets a wall-clock timeout (the paper's framework kills gem5 jobs
    /// that exceed theirs). Takes precedence over the retry policy's
    /// per-attempt deadline.
    pub fn timeout(mut self, timeout: Duration) -> Task {
        self.timeout = Some(timeout);
        self
    }

    /// Allows up to `retries` immediate re-executions after failures
    /// (broker/Celery-style). Timeouts are terminal and never retried.
    /// Sugar for an immediate [`RetryPolicy`] with `retries + 1`
    /// attempts.
    pub fn retries(mut self, retries: u32) -> Task {
        self.policy = self.policy.max_attempts(retries + 1);
        self
    }

    /// Installs a full retry policy (attempts, backoff, jitter,
    /// deadlines), replacing any previous policy or `retries` setting.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Task {
        self.policy = policy;
        self
    }

    /// Attaches a fault injector consulted once per attempt.
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Task {
        self.fault = Some(injector);
        self
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task's retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("name", &self.name)
            .field("timeout", &self.timeout)
            .field("policy", &self.policy)
            .field("fault", &self.fault.is_some())
            .finish_non_exhaustive()
    }
}

/// Final report of a task execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskReport {
    /// Task name.
    pub name: String,
    /// Terminal state.
    pub state: TaskState,
    /// Task output on success.
    pub output: Option<String>,
    /// Error message on failure/timeout.
    pub error: Option<String>,
    /// Number of execution attempts made.
    pub attempts: u32,
    /// Wall-clock duration across all attempts.
    pub duration: Duration,
    /// Whether a watchdogged worker thread was detached (leaked) when
    /// the task timed out. Detached workers keep running until their
    /// work returns; brokers count them in their stats.
    pub detached: bool,
    /// Per-attempt history, in order.
    pub history: Vec<AttemptRecord>,
    /// How many times the broker's supervisor redelivered the task
    /// after a lease expired or its worker died (`0` outside the
    /// broker or when nothing went wrong).
    pub redeliveries: u32,
    /// Supervisor lease events (`"delivery:<n>:<cause>"`), in order.
    /// Empty outside the broker or when no lease was ever recovered.
    pub lease_events: Vec<String>,
}

impl TaskReport {
    /// A synthesized failure report for a task the scheduler dropped
    /// without executing (e.g. a broker shut down with work queued).
    pub(crate) fn dropped_by_scheduler(name: String) -> TaskReport {
        TaskReport {
            name,
            state: TaskState::Failed,
            output: None,
            error: Some("scheduler dropped task without a report".to_owned()),
            attempts: 0,
            duration: Duration::ZERO,
            detached: false,
            history: Vec::new(),
            redeliveries: 0,
            lease_events: Vec::new(),
        }
    }
}

/// Handle to a submitted task.
#[derive(Debug)]
pub struct TaskHandle {
    pub(crate) receiver: Receiver<TaskReport>,
    pub(crate) name: String,
}

impl TaskHandle {
    /// Blocks until the task finishes, returning its report.
    ///
    /// If the scheduler dropped the task without reporting (e.g. it was
    /// shut down with the task still queued), a synthesized
    /// [`TaskState::Failed`] report is returned with zero attempts and
    /// a "scheduler dropped task" error — submitters always get a
    /// report, never a panic.
    pub fn wait(self) -> TaskReport {
        match self.receiver.recv() {
            Ok(report) => report,
            Err(_) => TaskReport::dropped_by_scheduler(self.name),
        }
    }

    /// Non-blocking poll; returns the report when finished.
    pub fn try_wait(&self) -> Option<TaskReport> {
        self.receiver.try_recv().ok()
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Executes one task to completion — retries with backoff, per-attempt
/// and total deadlines, fault injection — and returns its report.
/// Shared by all schedulers.
pub(crate) fn execute(task: Task) -> TaskReport {
    execute_mode(task, false)
}

/// Executes one task under external (lease-based) supervision: no
/// watchdog thread is spawned and neither the task timeout nor the
/// policy's per-attempt deadline is enforced in-process — the broker's
/// supervisor enforces the deadline via the task's lease, so a runaway
/// attempt wedges only its worker thread instead of leaking an
/// unreaped watchdog thread per attempt.
pub(crate) fn execute_supervised(task: Task) -> TaskReport {
    execute_mode(task, true)
}

fn execute_mode(task: Task, supervised: bool) -> TaskReport {
    let Task {
        name,
        work,
        timeout,
        policy,
        fault,
        trace_id,
        queue_stamp,
    } = task;
    queue_stamp.observe_into("tasks.queue_wait_us");
    observe::count("tasks.executed", 1);
    let _task_span = observe::span(|| format!("task:{name}"));
    let attempt_deadline = if supervised {
        None
    } else {
        timeout.or(policy.per_attempt_deadline())
    };
    let started = Instant::now();
    let mut attempts = 0u32;
    let mut history = Vec::new();
    let mut detached = false;
    let mut delay_before = Duration::ZERO;
    let (state, output, error) = loop {
        attempts += 1;
        trace::task_start(trace_id);
        let attempt_work = wrap_with_faults(&work, &fault, &name, attempts);
        let attempt_stamp = observe::Stamp::now();
        let outcome = run_attempt(attempt_work, attempt_deadline);
        attempt_stamp.observe_into("tasks.run_time_us");
        history.push(AttemptRecord {
            index: attempts,
            disposition: match outcome {
                AttemptOutcome::Success(_) => AttemptDisposition::Succeeded,
                AttemptOutcome::Error(_) => AttemptDisposition::Errored,
                AttemptOutcome::TimedOut => AttemptDisposition::TimedOut,
            },
            delay_before,
        });
        match outcome {
            AttemptOutcome::Success(output) => break (TaskState::Succeeded, Some(output), None),
            AttemptOutcome::TimedOut => {
                // The watchdogged worker cannot be killed safely; it is
                // detached and keeps running until its work returns.
                detached = true;
                observe::count("tasks.timeouts", 1);
                break (
                    TaskState::TimedOut,
                    None,
                    Some(format!("task exceeded its timeout of {attempt_deadline:?}")),
                );
            }
            AttemptOutcome::Error(err) => {
                if attempts >= policy.attempts_allowed() {
                    break (TaskState::Failed, None, Some(err));
                }
                let delay = policy.delay_before(attempts + 1);
                if let Some(total) = policy.total_budget() {
                    if started.elapsed() + delay > total {
                        break (
                            TaskState::Failed,
                            None,
                            Some(format!(
                                "{err} (total retry deadline {total:?} exhausted \
                                 after {attempts} attempts)"
                            )),
                        );
                    }
                }
                observe::count("tasks.retries", 1);
                observe::observe_us("tasks.retry_delay_us", delay.as_micros() as u64);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                delay_before = delay;
                trace::task_requeue(trace_id);
            }
        }
    };
    trace::task_finish(trace_id);
    TaskReport {
        name,
        state,
        output,
        error,
        attempts,
        duration: started.elapsed(),
        detached,
        history,
        redeliveries: 0,
        lease_events: Vec::new(),
    }
}

/// Executes one task, reporting through `report_tx`.
pub(crate) fn execute_reporting(task: Task, report_tx: Sender<TaskReport>) {
    // A dropped handle is fine: the result is simply unobserved.
    let _ = report_tx.send(execute(task));
}

/// Wraps the work closure so any injected fault fires *inside* the
/// attempt: injected panics are caught, injected delays are subject to
/// the attempt deadline.
fn wrap_with_faults(
    work: &TaskFn,
    fault: &Option<Arc<FaultInjector>>,
    name: &str,
    attempt: u32,
) -> TaskFn {
    match fault {
        None => Arc::clone(work),
        Some(injector) => {
            let injector = Arc::clone(injector);
            let inner = Arc::clone(work);
            let task_name = name.to_owned();
            Arc::new(move || {
                injector.inject(&task_name, attempt)?;
                inner()
            })
        }
    }
}

enum AttemptOutcome {
    Success(String),
    Error(String),
    TimedOut,
}

fn run_attempt(work: TaskFn, timeout: Option<Duration>) -> AttemptOutcome {
    match timeout {
        None => match run_caught(&work) {
            Ok(output) => AttemptOutcome::Success(output),
            Err(err) => AttemptOutcome::Error(err),
        },
        Some(limit) => {
            // Run the work on a watchdog-observed thread; on timeout the
            // runaway thread is detached (it cannot be force-killed
            // safely) and the task is reported as terminated.
            let (tx, rx) = bounded(1);
            std::thread::spawn(move || {
                let _ = tx.send(run_caught(&work));
            });
            match rx.recv_timeout(limit) {
                Ok(Ok(output)) => AttemptOutcome::Success(output),
                Ok(Err(err)) => AttemptOutcome::Error(err),
                Err(_) => AttemptOutcome::TimedOut,
            }
        }
    }
}

fn run_caught(work: &TaskFn) -> Result<String, String> {
    match catch_unwind(AssertUnwindSafe(|| work())) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            Err(format!("task panicked: {message}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn task_builder_records_options() {
        let task = Task::new("t", || Ok(String::new()))
            .timeout(Duration::from_secs(1))
            .retries(3);
        assert_eq!(task.name(), "t");
        assert_eq!(task.timeout, Some(Duration::from_secs(1)));
        assert_eq!(task.policy().attempts_allowed(), 4);
        assert!(format!("{task:?}").contains("\"t\""));
    }

    #[test]
    fn state_display() {
        assert_eq!(TaskState::Succeeded.to_string(), "succeeded");
        assert_eq!(TaskState::TimedOut.to_string(), "timed-out");
        assert!(TaskState::Succeeded.is_success());
        assert!(!TaskState::Failed.is_success());
    }

    #[test]
    fn execute_reporting_success_path() {
        let (tx, rx) = bounded(1);
        execute_reporting(Task::new("ok", || Ok("done".to_owned())), tx);
        let report = rx.recv().unwrap();
        assert!(report.state.is_success());
        assert_eq!(report.output.as_deref(), Some("done"));
        assert!(report.error.is_none());
        assert!(!report.detached);
        assert_eq!(
            report.history,
            vec![AttemptRecord {
                index: 1,
                disposition: AttemptDisposition::Succeeded,
                delay_before: Duration::ZERO,
            }]
        );
    }

    #[test]
    fn retries_rerun_until_success() {
        let counter = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&counter);
        let task = Task::new("flaky", move || {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".to_owned())
            } else {
                Ok("recovered".to_owned())
            }
        })
        .retries(5);
        let (tx, rx) = bounded(1);
        execute_reporting(task, tx);
        let report = rx.recv().unwrap();
        assert!(report.state.is_success());
        assert_eq!(report.attempts, 3);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        assert_eq!(report.history.len(), 3);
        assert_eq!(report.history[2].disposition, AttemptDisposition::Succeeded);
    }

    #[test]
    fn retries_exhaust_to_failure() {
        let task = Task::new("hopeless", || Err("always".to_owned())).retries(2);
        let (tx, rx) = bounded(1);
        execute_reporting(task, tx);
        let report = rx.recv().unwrap();
        assert_eq!(report.state, TaskState::Failed);
        assert_eq!(report.attempts, 3);
        assert!(report
            .history
            .iter()
            .all(|a| a.disposition == AttemptDisposition::Errored));
    }

    #[test]
    fn timeouts_are_not_retried() {
        let counter = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&counter);
        let task = Task::new("slow", move || {
            seen.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_secs(10));
            Ok(String::new())
        })
        .timeout(Duration::from_millis(30))
        .retries(5);
        let (tx, rx) = bounded(1);
        execute_reporting(task, tx);
        let report = rx.recv().unwrap();
        assert_eq!(report.state, TaskState::TimedOut);
        assert_eq!(report.attempts, 1);
        assert!(report.detached, "timed-out watchdog worker is detached");
    }

    #[test]
    fn dropped_handle_does_not_panic_worker() {
        let (tx, rx) = bounded(1);
        drop(rx);
        execute_reporting(Task::new("orphan", || Ok(String::new())), tx);
    }

    #[test]
    fn wait_on_dropped_scheduler_returns_failed_report() {
        let (tx, rx) = bounded::<TaskReport>(1);
        let handle = TaskHandle {
            receiver: rx,
            name: "ghost".to_owned(),
        };
        drop(tx);
        let report = handle.wait();
        assert_eq!(report.state, TaskState::Failed);
        assert_eq!(report.attempts, 0);
        assert!(report
            .error
            .as_deref()
            .unwrap_or("")
            .contains("scheduler dropped task"));
    }

    #[test]
    fn backoff_delays_are_honored() {
        let policy = RetryPolicy::fixed(Duration::from_millis(25)).max_attempts(3);
        let task = Task::new("backoff", || Err("always".to_owned())).retry_policy(policy);
        let started = Instant::now();
        let report = execute(task);
        assert_eq!(report.state, TaskState::Failed);
        assert_eq!(report.attempts, 3);
        assert!(
            started.elapsed() >= Duration::from_millis(50),
            "two backoff sleeps"
        );
        assert_eq!(report.history[0].delay_before, Duration::ZERO);
        assert_eq!(report.history[1].delay_before, Duration::from_millis(25));
        assert_eq!(report.history[2].delay_before, Duration::from_millis(25));
    }

    #[test]
    fn total_deadline_stops_retrying() {
        let policy = RetryPolicy::fixed(Duration::from_millis(40))
            .max_attempts(100)
            .total_deadline(Duration::from_millis(60));
        let task = Task::new("budgeted", || Err("always".to_owned())).retry_policy(policy);
        let report = execute(task);
        assert_eq!(report.state, TaskState::Failed);
        assert!(report.attempts < 100, "deadline cut retries short");
        assert!(report.error.as_deref().unwrap_or("").contains("deadline"));
    }

    #[test]
    fn policy_attempt_deadline_applies_without_task_timeout() {
        let task = Task::new("slow", || {
            std::thread::sleep(Duration::from_secs(10));
            Ok(String::new())
        })
        .retry_policy(RetryPolicy::none().attempt_deadline(Duration::from_millis(30)));
        let report = execute(task);
        assert_eq!(report.state, TaskState::TimedOut);
        assert!(report.detached);
    }

    #[test]
    fn injected_spurious_errors_are_retried() {
        // Seed chosen so the injector fires on some attempts; error
        // rate 1.0 makes every attempt fail via injection.
        let injector = Arc::new(FaultInjector::new(1).errors(1.0));
        let task = Task::new("faulted", || Ok("real work".to_owned()))
            .fault_injector(Arc::clone(&injector))
            .retries(2);
        let report = execute(task);
        assert_eq!(report.state, TaskState::Failed);
        assert_eq!(report.attempts, 3);
        assert_eq!(injector.injected_errors(), 3);
        assert!(report
            .error
            .as_deref()
            .unwrap_or("")
            .contains("injected fault"));
    }

    #[test]
    fn injected_panics_are_contained_and_retried() {
        let injector = Arc::new(FaultInjector::new(2).panics(1.0));
        let task = Task::new("panicky", || Ok(String::new()))
            .fault_injector(Arc::clone(&injector))
            .retries(1);
        let report = execute(task);
        assert_eq!(report.state, TaskState::Failed);
        assert_eq!(report.attempts, 2);
        assert_eq!(injector.injected_panics(), 2);
        assert!(report.error.as_deref().unwrap_or("").contains("panic"));
    }

    #[test]
    fn supervised_execution_leaves_deadlines_to_the_lease() {
        // Under supervision no watchdog thread runs: a task slower than
        // its timeout completes normally (the broker's lease, not the
        // executor, decides when it is overdue).
        let task = Task::new("slowish", || {
            std::thread::sleep(Duration::from_millis(60));
            Ok("late but fine".to_owned())
        })
        .timeout(Duration::from_millis(10));
        let report = execute_supervised(task);
        assert!(report.state.is_success());
        assert!(!report.detached);
        assert_eq!(report.redeliveries, 0);
        assert!(report.lease_events.is_empty());
    }

    #[test]
    fn fault_histories_are_reproducible() {
        let run = |seed: u64| {
            let injector = Arc::new(FaultInjector::new(seed).errors(0.5));
            let task = Task::new("replay", || Ok("ok".to_owned()))
                .fault_injector(injector)
                .retries(8);
            execute(task).history
        };
        assert_eq!(run(1234), run(1234));
    }
}
