//! Task definitions, handles, and reports.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The work a task performs: returns its textual output or an error
/// message (results proper are written to the database by the closure).
/// `Fn` (not `FnOnce`) so failed attempts can be retried.
pub type TaskFn = Arc<dyn Fn() -> Result<String, String> + Send + Sync + 'static>;

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Completed and returned output.
    Succeeded,
    /// Returned an error (possibly after retries).
    Failed,
    /// Exceeded its timeout and was terminated.
    TimedOut,
}

impl TaskState {
    /// Whether the task succeeded.
    pub fn is_success(self) -> bool {
        self == TaskState::Succeeded
    }
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskState::Succeeded => f.write_str("succeeded"),
            TaskState::Failed => f.write_str("failed"),
            TaskState::TimedOut => f.write_str("timed-out"),
        }
    }
}

/// A schedulable unit of work.
#[derive(Clone)]
pub struct Task {
    pub(crate) name: String,
    pub(crate) work: TaskFn,
    pub(crate) timeout: Option<Duration>,
    pub(crate) max_retries: u32,
}

impl Task {
    /// Creates a task from a name and its work closure.
    pub fn new(
        name: impl Into<String>,
        work: impl Fn() -> Result<String, String> + Send + Sync + 'static,
    ) -> Task {
        Task { name: name.into(), work: Arc::new(work), timeout: None, max_retries: 0 }
    }

    /// Sets a wall-clock timeout (the paper's framework kills gem5 jobs
    /// that exceed theirs).
    pub fn timeout(mut self, timeout: Duration) -> Task {
        self.timeout = Some(timeout);
        self
    }

    /// Allows up to `retries` re-executions after failures
    /// (broker/Celery-style). Timeouts are terminal and never retried.
    pub fn retries(mut self, retries: u32) -> Task {
        self.max_retries = retries;
        self
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("name", &self.name)
            .field("timeout", &self.timeout)
            .field("max_retries", &self.max_retries)
            .finish_non_exhaustive()
    }
}

/// Final report of a task execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskReport {
    /// Task name.
    pub name: String,
    /// Terminal state.
    pub state: TaskState,
    /// Task output on success.
    pub output: Option<String>,
    /// Error message on failure/timeout.
    pub error: Option<String>,
    /// Number of execution attempts made.
    pub attempts: u32,
    /// Wall-clock duration across all attempts.
    pub duration: Duration,
}

/// Handle to a submitted task.
#[derive(Debug)]
pub struct TaskHandle {
    pub(crate) receiver: Receiver<TaskReport>,
    pub(crate) name: String,
}

impl TaskHandle {
    /// Blocks until the task finishes, returning its report.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler dropped the task without reporting — a
    /// scheduler bug, not a task failure.
    pub fn wait(self) -> TaskReport {
        self.receiver
            .recv()
            .unwrap_or_else(|_| panic!("scheduler dropped task {:?} without a report", self.name))
    }

    /// Non-blocking poll; returns the report when finished.
    pub fn try_wait(&self) -> Option<TaskReport> {
        self.receiver.try_recv().ok()
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Executes one task (with retries and timeout), reporting through
/// `report_tx`. Shared by all schedulers.
pub(crate) fn execute_reporting(task: Task, report_tx: Sender<TaskReport>) {
    let Task { name, work, timeout, max_retries } = task;
    let started = Instant::now();
    let mut attempts = 0;
    let (state, output, error) = loop {
        attempts += 1;
        match run_attempt(Arc::clone(&work), timeout) {
            AttemptOutcome::Success(output) => break (TaskState::Succeeded, Some(output), None),
            AttemptOutcome::Error(err) => {
                if attempts > max_retries {
                    break (TaskState::Failed, None, Some(err));
                }
            }
            AttemptOutcome::TimedOut => {
                break (
                    TaskState::TimedOut,
                    None,
                    Some(format!("task exceeded its timeout of {timeout:?}")),
                )
            }
        }
    };
    let report =
        TaskReport { name, state, output, error, attempts, duration: started.elapsed() };
    // A dropped handle is fine: the result is simply unobserved.
    let _ = report_tx.send(report);
}

enum AttemptOutcome {
    Success(String),
    Error(String),
    TimedOut,
}

fn run_attempt(work: TaskFn, timeout: Option<Duration>) -> AttemptOutcome {
    match timeout {
        None => match run_caught(&work) {
            Ok(output) => AttemptOutcome::Success(output),
            Err(err) => AttemptOutcome::Error(err),
        },
        Some(limit) => {
            // Run the work on a watchdog-observed thread; on timeout the
            // runaway thread is detached (it cannot be force-killed
            // safely) and the task is reported as terminated.
            let (tx, rx) = bounded(1);
            std::thread::spawn(move || {
                let _ = tx.send(run_caught(&work));
            });
            match rx.recv_timeout(limit) {
                Ok(Ok(output)) => AttemptOutcome::Success(output),
                Ok(Err(err)) => AttemptOutcome::Error(err),
                Err(_) => AttemptOutcome::TimedOut,
            }
        }
    }
}

fn run_caught(work: &TaskFn) -> Result<String, String> {
    match catch_unwind(AssertUnwindSafe(|| work())) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            Err(format!("task panicked: {message}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn task_builder_records_options() {
        let task = Task::new("t", || Ok(String::new()))
            .timeout(Duration::from_secs(1))
            .retries(3);
        assert_eq!(task.name(), "t");
        assert_eq!(task.timeout, Some(Duration::from_secs(1)));
        assert_eq!(task.max_retries, 3);
        assert!(format!("{task:?}").contains("\"t\""));
    }

    #[test]
    fn state_display() {
        assert_eq!(TaskState::Succeeded.to_string(), "succeeded");
        assert_eq!(TaskState::TimedOut.to_string(), "timed-out");
        assert!(TaskState::Succeeded.is_success());
        assert!(!TaskState::Failed.is_success());
    }

    #[test]
    fn execute_reporting_success_path() {
        let (tx, rx) = bounded(1);
        execute_reporting(Task::new("ok", || Ok("done".to_owned())), tx);
        let report = rx.recv().unwrap();
        assert!(report.state.is_success());
        assert_eq!(report.output.as_deref(), Some("done"));
        assert!(report.error.is_none());
    }

    #[test]
    fn retries_rerun_until_success() {
        let counter = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&counter);
        let task = Task::new("flaky", move || {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".to_owned())
            } else {
                Ok("recovered".to_owned())
            }
        })
        .retries(5);
        let (tx, rx) = bounded(1);
        execute_reporting(task, tx);
        let report = rx.recv().unwrap();
        assert!(report.state.is_success());
        assert_eq!(report.attempts, 3);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retries_exhaust_to_failure() {
        let task = Task::new("hopeless", || Err("always".to_owned())).retries(2);
        let (tx, rx) = bounded(1);
        execute_reporting(task, tx);
        let report = rx.recv().unwrap();
        assert_eq!(report.state, TaskState::Failed);
        assert_eq!(report.attempts, 3);
    }

    #[test]
    fn timeouts_are_not_retried() {
        let counter = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&counter);
        let task = Task::new("slow", move || {
            seen.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_secs(10));
            Ok(String::new())
        })
        .timeout(Duration::from_millis(30))
        .retries(5);
        let (tx, rx) = bounded(1);
        execute_reporting(task, tx);
        let report = rx.recv().unwrap();
        assert_eq!(report.state, TaskState::TimedOut);
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn dropped_handle_does_not_panic_worker() {
        let (tx, rx) = bounded(1);
        drop(rx);
        execute_reporting(Task::new("orphan", || Ok(String::new())), tx);
    }
}
