//! The broker/worker executor (the Celery analogue).
//!
//! Tasks flow through a named broker queue; detached workers register
//! with the broker and pull work. The structure mirrors a distributed
//! Celery deployment collapsed into one process: the queue carries task
//! metadata + payload, workers ack by reporting, and per-queue
//! statistics are observable while the system runs.

use crate::task::{execute, Task, TaskHandle, TaskReport};
use crate::{trace, Scheduler};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use simart_observe as observe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = (Task, Sender<TaskReport>);

#[derive(Debug, Default)]
struct BrokerStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    dropped: AtomicU64,
    detached_workers: AtomicU64,
}

/// A broker queue with attached worker threads.
#[derive(Debug)]
pub struct BrokerScheduler {
    queue: Mutex<Option<Sender<Job>>>,
    /// The broker's own view of the queue, used by [`shutdown_now`]
    /// (`BrokerScheduler::shutdown_now`) to drain jobs the workers will
    /// never run.
    pending: Receiver<Job>,
    stats: Arc<BrokerStats>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    queue_trace_id: u64,
}

impl BrokerScheduler {
    /// Starts a broker with `workers` attached worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> BrokerScheduler {
        assert!(workers > 0, "a broker needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let stats = Arc::new(BrokerStats::default());
        let queue_trace_id = trace::fresh_id();
        let handles = (0..workers)
            .map(|i| Self::spawn_worker(i, rx.clone(), Arc::clone(&stats), queue_trace_id))
            .collect();
        BrokerScheduler {
            queue: Mutex::new(Some(tx)),
            pending: rx,
            stats,
            workers: Mutex::new(handles),
            worker_count: workers,
            queue_trace_id,
        }
    }

    fn spawn_worker(
        index: usize,
        rx: Receiver<Job>,
        stats: Arc<BrokerStats>,
        queue_trace_id: u64,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name(format!("simart-broker-worker-{index}"))
            .spawn(move || {
                while let Ok((task, report_tx)) = rx.recv() {
                    trace::dequeue(queue_trace_id);
                    observe::count("broker.dequeued", 1);
                    // Broker-to-worker handoff latency (the task's own
                    // queue stamp keeps ticking until `execute`).
                    if let Some(us) = task.queue_stamp.elapsed_us() {
                        observe::observe_us("broker.queue_latency_us", us);
                    }
                    let report = execute(task);
                    if report.detached {
                        stats.detached_workers.fetch_add(1, Ordering::SeqCst);
                    }
                    // Count before delivering the report: a waiter that
                    // observes the report must also observe the count.
                    stats.completed.fetch_add(1, Ordering::SeqCst);
                    let _ = report_tx.send(report);
                }
            })
            .expect("spawning broker worker")
    }

    /// Closes the queue and discards still-queued jobs without running
    /// them (in-progress tasks finish). Handles of discarded tasks
    /// resolve to synthesized "scheduler dropped task" failure reports;
    /// later submissions are dropped the same way. Returns the number
    /// of jobs discarded by this call.
    pub fn shutdown_now(&self) -> u64 {
        let _ = self.queue.lock().take();
        let mut discarded = 0u64;
        // Race with workers draining the same queue is fine: each job
        // goes to exactly one side.
        while let Ok((_task, report_tx)) = self.pending.try_recv() {
            drop(report_tx);
            discarded += 1;
        }
        self.stats.dropped.fetch_add(discarded, Ordering::SeqCst);
        discarded
    }

    /// Number of attached workers.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.stats.submitted.load(Ordering::SeqCst)
    }

    /// Tasks completed so far.
    pub fn completed(&self) -> u64 {
        self.stats.completed.load(Ordering::SeqCst)
    }

    /// Tasks dropped without execution (shutdown or post-shutdown
    /// submission).
    pub fn dropped(&self) -> u64 {
        self.stats.dropped.load(Ordering::SeqCst)
    }

    /// Worker threads detached (leaked) by task timeouts. Each
    /// timed-out task leaves one runaway worker thread behind; this
    /// counter makes the leak observable instead of silent.
    pub fn detached_workers(&self) -> u64 {
        self.stats.detached_workers.load(Ordering::SeqCst)
    }

    /// Tasks currently queued or running.
    pub fn in_flight(&self) -> u64 {
        self.submitted().saturating_sub(self.completed() + self.dropped())
    }
}

impl Scheduler for BrokerScheduler {
    fn submit(&self, mut task: Task) -> TaskHandle {
        let name = task.name().to_owned();
        let (tx, rx) = bounded(1);
        self.stats.submitted.fetch_add(1, Ordering::SeqCst);
        task.stamp_queued();
        trace::task_submit(task.trace_id);
        match self.queue.lock().as_ref() {
            Some(sender) => {
                observe::count("broker.enqueued", 1);
                trace::enqueue(self.queue_trace_id);
                sender.send((task, tx)).expect("workers alive until drop");
            }
            None => {
                // Shut down: drop the report sender so the handle
                // resolves to a synthesized failure.
                self.stats.dropped.fetch_add(1, Ordering::SeqCst);
                drop(tx);
            }
        }
        TaskHandle { receiver: rx, name }
    }

    fn name(&self) -> &'static str {
        "broker"
    }
}

impl Drop for BrokerScheduler {
    fn drop(&mut self) {
        self.queue.get_mut().take();
        for worker in self.workers.get_mut().drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskState;
    use std::time::Duration;

    #[test]
    fn tracks_in_flight_counts() {
        let broker = BrokerScheduler::new(2);
        assert_eq!(broker.workers(), 2);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                broker.submit(Task::new(format!("t{i}"), || {
                    std::thread::sleep(Duration::from_millis(20));
                    Ok(String::new())
                }))
            })
            .collect();
        assert_eq!(broker.submitted(), 4);
        for handle in handles {
            handle.wait();
        }
        assert_eq!(broker.completed(), 4);
        assert_eq!(broker.in_flight(), 0);
    }

    #[test]
    fn retries_flow_through_broker() {
        let broker = BrokerScheduler::new(2);
        let tries = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&tries);
        let report = broker
            .submit(
                Task::new("flaky", move || {
                    if seen.fetch_add(1, Ordering::SeqCst) == 0 {
                        Err("first attempt fails".to_owned())
                    } else {
                        Ok("second attempt works".to_owned())
                    }
                })
                .retries(2),
            )
            .wait();
        assert!(report.state.is_success());
        assert_eq!(report.attempts, 2);
    }

    #[test]
    fn shutdown_drops_queued_tasks_with_failure_reports() {
        let broker = BrokerScheduler::new(1);
        // Gate the single worker on the first task so the rest stay
        // queued while we shut down.
        let (gate_tx, gate_rx) = unbounded::<()>();
        let first = broker.submit(Task::new("gated", move || {
            let _ = gate_rx.recv();
            Ok("released".to_owned())
        }));
        let queued: Vec<_> = (0..3)
            .map(|i| broker.submit(Task::new(format!("queued-{i}"), || Ok(String::new()))))
            .collect();
        // Give the worker time to pick up the gated task.
        std::thread::sleep(Duration::from_millis(50));
        let discarded = broker.shutdown_now();
        assert_eq!(discarded, 3, "the three queued tasks are discarded");
        assert_eq!(broker.dropped(), 3);
        gate_tx.send(()).unwrap();
        let report = first.wait();
        assert!(report.state.is_success(), "in-progress task finishes");
        for handle in queued {
            let report = handle.wait();
            assert_eq!(report.state, TaskState::Failed);
            assert_eq!(report.attempts, 0);
            assert!(report
                .error
                .as_deref()
                .unwrap_or("")
                .contains("scheduler dropped task"));
        }
        // Submissions after shutdown are dropped the same way.
        let late = broker.submit(Task::new("late", || Ok(String::new()))).wait();
        assert_eq!(late.state, TaskState::Failed);
        assert_eq!(broker.dropped(), 4);
    }

    #[test]
    fn timed_out_tasks_count_detached_workers() {
        let broker = BrokerScheduler::new(2);
        let report = broker
            .submit(
                Task::new("runaway", || {
                    std::thread::sleep(Duration::from_millis(300));
                    Ok(String::new())
                })
                .timeout(Duration::from_millis(30)),
            )
            .wait();
        assert_eq!(report.state, TaskState::TimedOut);
        assert!(report.detached);
        assert_eq!(broker.detached_workers(), 1);
        // A well-behaved task leaves the counter alone.
        let ok = broker.submit(Task::new("fine", || Ok(String::new()))).wait();
        assert!(ok.state.is_success());
        assert_eq!(broker.detached_workers(), 1);
        // Let the runaway worker finish before the test exits.
        std::thread::sleep(Duration::from_millis(300));
    }
}
