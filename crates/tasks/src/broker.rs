//! The broker/worker executor (the Celery analogue).
//!
//! Tasks flow through a named broker queue; workers register with the
//! broker and pull work. The structure mirrors a distributed Celery
//! deployment collapsed into one process: the queue carries task
//! metadata + payload, workers ack by reporting, and per-queue
//! statistics are observable while the system runs.
//!
//! # Supervision
//!
//! Every dequeued job carries a *lease*: a deadline of the task's
//! timeout plus a grace period, owned by the worker that dequeued it.
//! A supervisor thread ticks on a heartbeat
//! ([`SupervisorConfig::heartbeat`]) and each tick:
//!
//! 1. **reaps** detached worker threads that have since finished
//!    (joining them, so the live-detached gauge returns to zero);
//! 2. **respawns** workers that died holding a lease (e.g. a simulated
//!    SIGKILL via [`Fault::WorkerKill`]), recovering their leases
//!    immediately;
//! 3. **expires** leases past their deadline: the presumed-wedged
//!    worker is detached (moved to the reap list, a replacement
//!    spawned — up to [`SupervisorConfig::max_detached`]) and the task
//!    is *redelivered* to the queue, up to
//!    [`SupervisorConfig::max_redeliveries`] times, after which it is
//!    dead-lettered with [`TaskState::Quarantined`].
//!
//! Exactly one report is ever delivered per submitted task
//! (first-report-wins: a detached straggler that eventually finishes
//! after its task was redelivered either wins the race — at-least-once
//! semantics — or its stale report is discarded).
//!
//! With the default config (`max_redeliveries: 0`) an expired lease is
//! reported as [`TaskState::TimedOut`] at once, matching the classic
//! watchdog behaviour — but unlike the watchdog, the wedged thread is
//! reaped once it finishes instead of leaking forever.

use crate::fault::Fault;
use crate::supervise::SupervisorConfig;
use crate::task::{execute_supervised, Task, TaskHandle, TaskReport, TaskState};
use crate::{trace, Scheduler};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use simart_observe as observe;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A queued delivery of a task. Redeliveries share `job_id`,
/// `reported`, and the report channel with the original submission.
struct JobEnvelope {
    task: Task,
    report_tx: Sender<TaskReport>,
    /// First-report-wins guard: whoever swaps this to `true` delivers
    /// the single report for this job.
    reported: Arc<AtomicBool>,
    job_id: u64,
    /// 1-based delivery number (1 = original submission).
    delivery: u32,
    /// Supervisor lease events accumulated across deliveries.
    lease_events: Vec<String>,
    first_enqueued: Instant,
}

/// Flags shared between a worker thread and the supervisor.
#[derive(Default)]
struct WorkerFlags {
    /// Set by the supervisor when it presumes the worker wedged and
    /// replaces it; the worker exits its loop after its current job.
    detached: AtomicBool,
    /// Set by the worker on clean loop exit (queue closed or detached
    /// hand-off). A finished thread without this flag died abruptly.
    graceful: AtomicBool,
}

/// One position in the worker pool. Respawns bump `generation` so
/// leases can tell the worker that owned them from its replacement.
struct WorkerSlot {
    handle: Option<JoinHandle<()>>,
    flags: Arc<WorkerFlags>,
    generation: u64,
}

/// An in-flight delivery, owned by a worker, watched by the supervisor.
struct Lease {
    task: Task,
    report_tx: Sender<TaskReport>,
    reported: Arc<AtomicBool>,
    delivery: u32,
    /// `dequeue time + timeout + grace`; `None` for tasks without a
    /// timeout (recovered only if their worker dies).
    deadline: Option<Instant>,
    slot: usize,
    generation: u64,
    lease_events: Vec<String>,
    first_enqueued: Instant,
}

#[derive(Debug, Default)]
struct BrokerStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    dropped: AtomicU64,
    dead_lettered: AtomicU64,
    detached_workers: AtomicU64,
    redelivered: AtomicU64,
    lease_expirations: AtomicU64,
    worker_respawns: AtomicU64,
    detached_reaped: AtomicU64,
}

/// Mutable supervision state, behind one lock.
struct SupervisionState {
    slots: Vec<WorkerSlot>,
    leases: HashMap<u64, Lease>,
    /// Detached (presumed-wedged) worker threads awaiting reap.
    detached: Vec<JoinHandle<()>>,
    next_generation: u64,
    /// Set by `shutdown_now` / `Drop`: stops respawns and redelivery.
    shutdown: bool,
}

/// State shared between the scheduler handle, workers, and supervisor.
struct Shared {
    stats: BrokerStats,
    config: SupervisorConfig,
    queue: Mutex<Option<Sender<JobEnvelope>>>,
    /// The broker's own view of the queue: used by `shutdown_now` to
    /// drain jobs the workers will never run, and by respawned workers.
    pending: Receiver<JobEnvelope>,
    state: Mutex<SupervisionState>,
    next_job: AtomicU64,
    queue_trace_id: u64,
}

/// A broker queue with attached worker threads and a supervisor.
pub struct BrokerScheduler {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
    /// Dropping this sender stops the supervisor loop.
    stop: Option<Sender<()>>,
    worker_count: usize,
}

impl BrokerScheduler {
    /// Starts a broker with `workers` attached worker threads and the
    /// default [`SupervisorConfig`] (no redelivery — classic watchdog
    /// semantics, plus detached-thread reaping and worker respawn).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> BrokerScheduler {
        Self::with_config(workers, SupervisorConfig::default())
    }

    /// Starts a broker with an explicit supervision config.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_config(workers: usize, config: SupervisorConfig) -> BrokerScheduler {
        assert!(workers > 0, "a broker needs at least one worker");
        let (tx, rx) = unbounded::<JobEnvelope>();
        let shared = Arc::new(Shared {
            stats: BrokerStats::default(),
            config,
            queue: Mutex::new(Some(tx)),
            pending: rx,
            state: Mutex::new(SupervisionState {
                slots: Vec::with_capacity(workers),
                leases: HashMap::new(),
                detached: Vec::new(),
                next_generation: 0,
                shutdown: false,
            }),
            next_job: AtomicU64::new(1),
            queue_trace_id: trace::fresh_id(),
        });
        {
            let mut st = shared.state.lock();
            for slot in 0..workers {
                let flags = Arc::new(WorkerFlags::default());
                let handle = spawn_worker(&shared, slot, 0, Arc::clone(&flags));
                st.slots.push(WorkerSlot {
                    handle: Some(handle),
                    flags,
                    generation: 0,
                });
            }
        }
        let (stop_tx, stop_rx) = bounded::<()>(0);
        let supervisor = spawn_supervisor(Arc::clone(&shared), stop_rx);
        BrokerScheduler {
            shared,
            supervisor: Some(supervisor),
            stop: Some(stop_tx),
            worker_count: workers,
        }
    }

    /// Closes the queue and discards still-queued jobs without running
    /// them (in-progress tasks finish). Handles of discarded tasks
    /// resolve to synthesized "scheduler dropped task" failure reports;
    /// later submissions are dropped the same way, and expired leases
    /// are no longer redelivered. Returns the number of jobs discarded
    /// by this call.
    pub fn shutdown_now(&self) -> u64 {
        self.shared.state.lock().shutdown = true;
        let _ = self.shared.queue.lock().take();
        let mut discarded = 0u64;
        // Race with workers draining the same queue is fine: each job
        // goes to exactly one side.
        while let Ok(envelope) = self.shared.pending.try_recv() {
            drop(envelope); // drops report_tx → synthesized failure
            discarded += 1;
        }
        self.shared
            .stats
            .dropped
            .fetch_add(discarded, Ordering::SeqCst);
        discarded
    }

    /// Number of attached workers (the configured pool size; the
    /// supervisor holds the pool at this size across deaths).
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.shared.stats.submitted.load(Ordering::SeqCst)
    }

    /// Tasks completed so far (a report from an actual execution was
    /// delivered).
    pub fn completed(&self) -> u64 {
        self.shared.stats.completed.load(Ordering::SeqCst)
    }

    /// Tasks dropped without execution (shutdown or post-shutdown
    /// submission).
    pub fn dropped(&self) -> u64 {
        self.shared.stats.dropped.load(Ordering::SeqCst)
    }

    /// Tasks dead-lettered by the supervisor (lease expired or worker
    /// died, with no redelivery allowed or the cap exhausted).
    pub fn dead_lettered(&self) -> u64 {
        self.shared.stats.dead_lettered.load(Ordering::SeqCst)
    }

    /// Worker threads detached by lease expirations, cumulatively.
    /// Unlike the live gauge ([`Self::detached_live`]) this never
    /// decreases; it counts how often the broker had to presume a
    /// worker wedged.
    pub fn detached_workers(&self) -> u64 {
        self.shared.stats.detached_workers.load(Ordering::SeqCst)
    }

    /// Detached worker threads currently alive (not yet reaped). The
    /// supervisor joins finished detached threads each heartbeat, so
    /// this returns to zero once wedged work unwinds.
    pub fn detached_live(&self) -> u64 {
        self.shared.state.lock().detached.len() as u64
    }

    /// Tasks redelivered after a lease expiration or worker death.
    pub fn redelivered(&self) -> u64 {
        self.shared.stats.redelivered.load(Ordering::SeqCst)
    }

    /// Leases that expired (task outlived timeout + grace).
    pub fn lease_expirations(&self) -> u64 {
        self.shared.stats.lease_expirations.load(Ordering::SeqCst)
    }

    /// Replacement workers spawned by the supervisor.
    pub fn worker_respawns(&self) -> u64 {
        self.shared.stats.worker_respawns.load(Ordering::SeqCst)
    }

    /// Detached worker threads joined (reaped) by the supervisor.
    pub fn detached_reaped(&self) -> u64 {
        self.shared.stats.detached_reaped.load(Ordering::SeqCst)
    }

    /// Tasks currently queued or running.
    pub fn in_flight(&self) -> u64 {
        self.submitted()
            .saturating_sub(self.completed() + self.dropped() + self.dead_lettered())
    }
}

impl fmt::Debug for BrokerScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerScheduler")
            .field("workers", &self.worker_count)
            .field("config", &self.shared.config)
            .field("submitted", &self.submitted())
            .field("completed", &self.completed())
            .field("dropped", &self.dropped())
            .field("dead_lettered", &self.dead_lettered())
            .field("in_flight", &self.in_flight())
            .finish_non_exhaustive()
    }
}

impl Scheduler for BrokerScheduler {
    fn submit(&self, mut task: Task) -> TaskHandle {
        let name = task.name().to_owned();
        let (tx, rx) = bounded(1);
        self.shared.stats.submitted.fetch_add(1, Ordering::SeqCst);
        task.stamp_queued();
        trace::task_submit(task.trace_id);
        let envelope = JobEnvelope {
            task,
            report_tx: tx,
            reported: Arc::new(AtomicBool::new(false)),
            job_id: self.shared.next_job.fetch_add(1, Ordering::SeqCst),
            delivery: 1,
            lease_events: Vec::new(),
            first_enqueued: Instant::now(),
        };
        match self.shared.queue.lock().as_ref() {
            Some(sender) => {
                observe::count("broker.enqueued", 1);
                trace::enqueue(self.shared.queue_trace_id);
                if sender.send(envelope).is_err() {
                    // All receivers gone (queue torn down mid-send):
                    // degrade to the drop path instead of panicking.
                    // The returned envelope — report sender included —
                    // is dropped, so the handle resolves to a
                    // synthesized failure.
                    self.shared.stats.dropped.fetch_add(1, Ordering::SeqCst);
                }
            }
            None => {
                // Shut down: drop the report sender so the handle
                // resolves to a synthesized failure.
                self.shared.stats.dropped.fetch_add(1, Ordering::SeqCst);
                drop(envelope);
            }
        }
        TaskHandle { receiver: rx, name }
    }

    fn name(&self) -> &'static str {
        "broker"
    }
}

impl Drop for BrokerScheduler {
    fn drop(&mut self) {
        self.shared.state.lock().shutdown = true;
        let _ = self.shared.queue.lock().take();
        // Disconnecting the stop channel ends the supervisor loop.
        self.stop.take();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        // Collect handles first, then join without holding the state
        // lock (workers lock it to register/complete leases).
        let (workers, detached) = {
            let mut st = self.shared.state.lock();
            let workers: Vec<_> = st
                .slots
                .iter_mut()
                .filter_map(|slot| slot.handle.take())
                .collect();
            (workers, std::mem::take(&mut st.detached))
        };
        for worker in workers {
            let _ = worker.join();
        }
        // Detached threads may be wedged in arbitrarily long work and
        // their reports are already suppressed; dropping their handles
        // (instead of joining) keeps Drop from blocking on them.
        drop(detached);
    }
}

fn spawn_worker(
    shared: &Arc<Shared>,
    slot: usize,
    generation: u64,
    flags: Arc<WorkerFlags>,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("simart-broker-worker-{slot}-g{generation}"))
        .spawn(move || worker_loop(&shared, slot, generation, &flags))
        .expect("spawning broker worker")
}

fn worker_loop(shared: &Arc<Shared>, slot: usize, generation: u64, flags: &Arc<WorkerFlags>) {
    while let Ok(envelope) = shared.pending.recv() {
        trace::dequeue(shared.queue_trace_id);
        observe::count("broker.dequeued", 1);
        if envelope.reported.load(Ordering::SeqCst) {
            // A stale redelivery: the job was already reported (e.g. a
            // detached straggler finished first). Discard silently.
            if flags.detached.load(Ordering::SeqCst) {
                break;
            }
            continue;
        }
        // Broker-to-worker handoff latency (the task's own queue stamp
        // keeps ticking until `execute`).
        if let Some(us) = envelope.task.queue_stamp.elapsed_us() {
            observe::observe_us("broker.queue_latency_us", us);
        }
        // Take the lease before consulting worker faults, so a killed
        // worker leaves a lease behind for the supervisor to recover.
        register_lease(shared, &envelope, slot, generation);
        let worker_fault = envelope
            .task
            .fault
            .as_ref()
            .and_then(|inj| inj.take_worker_fault(envelope.task.name(), envelope.delivery));
        match worker_fault {
            Some(Fault::WorkerKill) => {
                // Simulated SIGKILL: die holding the lease, without
                // setting the graceful flag.
                return;
            }
            Some(Fault::WorkerStall(stall)) => std::thread::sleep(stall),
            _ => {}
        }
        let mut report = execute_supervised(envelope.task.clone());
        // Completion: release the lease (only our own delivery — a
        // redelivered copy may have re-registered under the same id).
        {
            let mut st = shared.state.lock();
            if st
                .leases
                .get(&envelope.job_id)
                .is_some_and(|lease| lease.delivery == envelope.delivery)
            {
                st.leases.remove(&envelope.job_id);
            }
        }
        if !envelope.reported.swap(true, Ordering::SeqCst) {
            report.redeliveries = envelope.delivery - 1;
            report.lease_events = envelope.lease_events.clone();
            // Count before delivering the report: a waiter that
            // observes the report must also observe the count.
            shared.stats.completed.fetch_add(1, Ordering::SeqCst);
            let _ = envelope.report_tx.send(report);
        }
        if flags.detached.load(Ordering::SeqCst) {
            // The supervisor presumed this worker wedged and already
            // spawned a replacement; exit so the slot has one owner.
            break;
        }
    }
    flags.graceful.store(true, Ordering::SeqCst);
}

fn register_lease(shared: &Shared, envelope: &JobEnvelope, slot: usize, generation: u64) {
    trace::lease_grant(envelope.task.trace_id);
    let deadline = envelope
        .task
        .timeout
        .map(|timeout| Instant::now() + timeout + shared.config.grace);
    shared.state.lock().leases.insert(
        envelope.job_id,
        Lease {
            task: envelope.task.clone(),
            report_tx: envelope.report_tx.clone(),
            reported: Arc::clone(&envelope.reported),
            delivery: envelope.delivery,
            deadline,
            slot,
            generation,
            lease_events: envelope.lease_events.clone(),
            first_enqueued: envelope.first_enqueued,
        },
    );
}

fn spawn_supervisor(shared: Arc<Shared>, stop: Receiver<()>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("simart-broker-supervisor".to_owned())
        .spawn(move || {
            while let Err(RecvTimeoutError::Timeout) = stop.recv_timeout(shared.config.heartbeat) {
                supervise_tick(&shared);
            }
        })
        .expect("spawning broker supervisor")
}

/// One supervisor heartbeat: reap, respawn, expire.
fn supervise_tick(shared: &Arc<Shared>) {
    let _tick_span = observe::span(|| "supervisor.tick".to_owned());
    let mut st = shared.state.lock();
    reap_detached(shared, &mut st);
    recover_dead_workers(shared, &mut st);
    expire_leases(shared, &mut st);
}

fn reap_detached(shared: &Shared, st: &mut SupervisionState) {
    let mut alive = Vec::with_capacity(st.detached.len());
    for handle in st.detached.drain(..) {
        if handle.is_finished() {
            let _ = handle.join();
            shared.stats.detached_reaped.fetch_add(1, Ordering::SeqCst);
            observe::count("broker.detached_reaped", 1);
        } else {
            alive.push(handle);
        }
    }
    st.detached = alive;
    observe::gauge("broker.detached_live", st.detached.len() as i64);
}

fn recover_dead_workers(shared: &Arc<Shared>, st: &mut SupervisionState) {
    for slot_idx in 0..st.slots.len() {
        let died = {
            let slot = &st.slots[slot_idx];
            slot.handle.as_ref().is_some_and(JoinHandle::is_finished)
                && !slot.flags.graceful.load(Ordering::SeqCst)
        };
        if !died {
            continue;
        }
        let dead_generation = st.slots[slot_idx].generation;
        if let Some(handle) = st.slots[slot_idx].handle.take() {
            let _ = handle.join();
        }
        if !st.shutdown {
            respawn(shared, st, slot_idx);
        }
        // Whatever lease the dead worker held dies with it: recover it
        // now instead of waiting out its deadline.
        let orphaned: Vec<u64> = st
            .leases
            .iter()
            .filter(|(_, lease)| lease.slot == slot_idx && lease.generation == dead_generation)
            .map(|(job_id, _)| *job_id)
            .collect();
        for job_id in orphaned {
            if let Some(lease) = st.leases.remove(&job_id) {
                recover_lease(shared, st, job_id, lease, "worker-died");
            }
        }
    }
}

fn expire_leases(shared: &Arc<Shared>, st: &mut SupervisionState) {
    let now = Instant::now();
    let expired: Vec<u64> = st
        .leases
        .iter()
        .filter(|(_, lease)| lease.deadline.is_some_and(|deadline| now >= deadline))
        .map(|(job_id, _)| *job_id)
        .collect();
    for job_id in expired {
        let Some(lease) = st.leases.remove(&job_id) else {
            continue;
        };
        shared
            .stats
            .lease_expirations
            .fetch_add(1, Ordering::SeqCst);
        observe::count("broker.lease_expirations", 1);
        // The owning worker is presumed wedged in the leased task.
        // Detach it and spawn a replacement — unless the live-detached
        // cap is reached, in which case fail fast (the pool degrades
        // rather than leaking more threads).
        let owner_current = st.slots[lease.slot].generation == lease.generation && !st.shutdown;
        if owner_current && st.detached.len() >= shared.config.max_detached {
            dead_letter(shared, lease, "detached-cap");
            continue;
        }
        if owner_current {
            detach_and_respawn(shared, st, lease.slot);
        }
        recover_lease(shared, st, job_id, lease, "lease-expired");
    }
}

/// Moves a slot's worker to the detached reap list and spawns its
/// replacement.
fn detach_and_respawn(shared: &Arc<Shared>, st: &mut SupervisionState, slot_idx: usize) {
    let slot = &mut st.slots[slot_idx];
    slot.flags.detached.store(true, Ordering::SeqCst);
    if let Some(handle) = slot.handle.take() {
        st.detached.push(handle);
    }
    shared.stats.detached_workers.fetch_add(1, Ordering::SeqCst);
    observe::gauge("broker.detached_live", st.detached.len() as i64);
    respawn(shared, st, slot_idx);
}

/// Spawns a fresh worker into a slot (new generation, fresh flags).
fn respawn(shared: &Arc<Shared>, st: &mut SupervisionState, slot_idx: usize) {
    st.next_generation += 1;
    let generation = st.next_generation;
    let flags = Arc::new(WorkerFlags::default());
    let handle = spawn_worker(shared, slot_idx, generation, Arc::clone(&flags));
    st.slots[slot_idx] = WorkerSlot {
        handle: Some(handle),
        flags,
        generation,
    };
    shared.stats.worker_respawns.fetch_add(1, Ordering::SeqCst);
    observe::count("broker.worker_respawns", 1);
}

/// Redelivers a recovered lease if the cap and queue allow, otherwise
/// dead-letters it.
fn recover_lease(
    shared: &Shared,
    _st: &mut SupervisionState,
    job_id: u64,
    mut lease: Lease,
    cause: &str,
) {
    trace::lease_revoke(lease.task.trace_id);
    lease
        .lease_events
        .push(format!("delivery:{}:{}", lease.delivery, cause));
    let redeliveries_so_far = lease.delivery - 1;
    let sender = shared.queue.lock().clone();
    let Some(sender) = sender else {
        return dead_letter(shared, lease, cause);
    };
    if redeliveries_so_far >= shared.config.max_redeliveries {
        return dead_letter(shared, lease, cause);
    }
    shared.stats.redelivered.fetch_add(1, Ordering::SeqCst);
    observe::count("broker.redelivered", 1);
    trace::task_requeue(lease.task.trace_id);
    trace::enqueue(shared.queue_trace_id);
    let envelope = JobEnvelope {
        task: lease.task,
        report_tx: lease.report_tx,
        reported: lease.reported,
        job_id,
        delivery: lease.delivery + 1,
        lease_events: lease.lease_events,
        first_enqueued: lease.first_enqueued,
    };
    if let Err(failed) = sender.send(envelope) {
        // Queue closed between the clone and the send: dead-letter the
        // envelope we got back instead.
        let envelope = failed.0;
        dead_letter(
            shared,
            Lease {
                task: envelope.task,
                report_tx: envelope.report_tx,
                reported: envelope.reported,
                delivery: envelope.delivery - 1,
                deadline: None,
                slot: 0,
                generation: 0,
                lease_events: envelope.lease_events,
                first_enqueued: envelope.first_enqueued,
            },
            cause,
        );
    }
}

/// Synthesizes the terminal report for a lease that cannot be
/// redelivered (first-report-wins, like any other delivery).
fn dead_letter(shared: &Shared, lease: Lease, cause: &str) {
    shared.stats.dead_lettered.fetch_add(1, Ordering::SeqCst);
    let redeliveries = lease.delivery - 1;
    let (state, detached, error) = match cause {
        "detached-cap" => (
            TaskState::TimedOut,
            false,
            format!(
                "task lease expired but the detached-worker cap ({}) is reached; \
                 failing fast without redelivery",
                shared.config.max_detached
            ),
        ),
        _ if redeliveries > 0 => (
            TaskState::Quarantined,
            false,
            format!(
                "task quarantined: redelivery cap ({}) exhausted after {} deliveries \
                 (last cause: {cause})",
                shared.config.max_redeliveries, lease.delivery
            ),
        ),
        "worker-died" => (
            TaskState::Failed,
            false,
            "worker died holding the task lease; no redeliveries allowed".to_owned(),
        ),
        _ => (
            TaskState::TimedOut,
            true,
            format!(
                "task lease expired (timeout {:?} + grace {:?}); no redeliveries allowed",
                lease.task.timeout, shared.config.grace
            ),
        ),
    };
    let report = TaskReport {
        name: lease.task.name().to_owned(),
        state,
        output: None,
        error: Some(error),
        attempts: 0,
        duration: lease.first_enqueued.elapsed(),
        detached,
        history: Vec::new(),
        redeliveries,
        lease_events: lease.lease_events,
    };
    if !lease.reported.swap(true, Ordering::SeqCst) {
        let _ = lease.report_tx.send(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjector;
    use std::time::Duration;

    /// Config with tight timings for tests that exercise supervision.
    fn quick(max_redeliveries: u32) -> SupervisorConfig {
        SupervisorConfig {
            heartbeat: Duration::from_millis(10),
            grace: Duration::from_millis(40),
            max_redeliveries,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn tracks_in_flight_counts() {
        let broker = BrokerScheduler::new(2);
        assert_eq!(broker.workers(), 2);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                broker.submit(Task::new(format!("t{i}"), || {
                    std::thread::sleep(Duration::from_millis(20));
                    Ok(String::new())
                }))
            })
            .collect();
        assert_eq!(broker.submitted(), 4);
        for handle in handles {
            handle.wait();
        }
        assert_eq!(broker.completed(), 4);
        assert_eq!(broker.in_flight(), 0);
    }

    #[test]
    fn retries_flow_through_broker() {
        let broker = BrokerScheduler::new(2);
        let tries = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&tries);
        let report = broker
            .submit(
                Task::new("flaky", move || {
                    if seen.fetch_add(1, Ordering::SeqCst) == 0 {
                        Err("first attempt fails".to_owned())
                    } else {
                        Ok("second attempt works".to_owned())
                    }
                })
                .retries(2),
            )
            .wait();
        assert!(report.state.is_success());
        assert_eq!(report.attempts, 2);
    }

    #[test]
    fn shutdown_drops_queued_tasks_with_failure_reports() {
        let broker = BrokerScheduler::new(1);
        // Gate the single worker on the first task so the rest stay
        // queued while we shut down.
        let (gate_tx, gate_rx) = unbounded::<()>();
        let first = broker.submit(Task::new("gated", move || {
            let _ = gate_rx.recv();
            Ok("released".to_owned())
        }));
        let queued: Vec<_> = (0..3)
            .map(|i| broker.submit(Task::new(format!("queued-{i}"), || Ok(String::new()))))
            .collect();
        // Give the worker time to pick up the gated task.
        std::thread::sleep(Duration::from_millis(50));
        let discarded = broker.shutdown_now();
        assert_eq!(discarded, 3, "the three queued tasks are discarded");
        assert_eq!(broker.dropped(), 3);
        gate_tx.send(()).unwrap();
        let report = first.wait();
        assert!(report.state.is_success(), "in-progress task finishes");
        for handle in queued {
            let report = handle.wait();
            assert_eq!(report.state, TaskState::Failed);
            assert_eq!(report.attempts, 0);
            assert!(report
                .error
                .as_deref()
                .unwrap_or("")
                .contains("scheduler dropped task"));
        }
        // Submissions after shutdown are dropped the same way.
        let late = broker
            .submit(Task::new("late", || Ok(String::new())))
            .wait();
        assert_eq!(late.state, TaskState::Failed);
        assert_eq!(broker.dropped(), 4);
    }

    #[test]
    fn timed_out_tasks_count_detached_workers() {
        let broker = BrokerScheduler::new(2);
        let report = broker
            .submit(
                Task::new("runaway", || {
                    std::thread::sleep(Duration::from_millis(300));
                    Ok(String::new())
                })
                .timeout(Duration::from_millis(30)),
            )
            .wait();
        assert_eq!(report.state, TaskState::TimedOut);
        assert!(report.detached);
        assert_eq!(broker.detached_workers(), 1);
        assert_eq!(broker.lease_expirations(), 1);
        // A well-behaved task leaves the counter alone.
        let ok = broker
            .submit(Task::new("fine", || Ok(String::new())))
            .wait();
        assert!(ok.state.is_success());
        assert_eq!(broker.detached_workers(), 1);
        // Let the runaway worker finish before the test exits.
        std::thread::sleep(Duration::from_millis(300));
    }

    #[test]
    fn detached_workers_are_reaped_once_they_finish() {
        let broker = BrokerScheduler::with_config(1, quick(0));
        let report = broker
            .submit(
                Task::new("briefly-wedged", || {
                    std::thread::sleep(Duration::from_millis(150));
                    Ok(String::new())
                })
                .timeout(Duration::from_millis(20)),
            )
            .wait();
        assert_eq!(report.state, TaskState::TimedOut);
        assert_eq!(broker.detached_workers(), 1);
        assert!(broker.worker_respawns() >= 1);
        // Once the wedged work unwinds, the supervisor joins the thread
        // and the live gauge returns to zero.
        let deadline = Instant::now() + Duration::from_secs(5);
        while broker.detached_live() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(broker.detached_live(), 0, "detached thread was reaped");
        assert_eq!(broker.detached_reaped(), 1);
        // The pool is back at strength: a fresh task still runs.
        let ok = broker
            .submit(Task::new("after", || Ok(String::new())))
            .wait();
        assert!(ok.state.is_success());
    }

    #[test]
    fn expired_leases_are_redelivered_up_to_cap() {
        let broker = BrokerScheduler::with_config(1, quick(2));
        // Wedges on the first delivery only; redelivery succeeds.
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let report = broker
            .submit(
                Task::new("wedge-once", move || {
                    if seen.fetch_add(1, Ordering::SeqCst) == 0 {
                        std::thread::sleep(Duration::from_millis(250));
                    }
                    Ok("recovered".to_owned())
                })
                .timeout(Duration::from_millis(20)),
            )
            .wait();
        assert!(
            report.state.is_success(),
            "redelivered task succeeds: {report:?}"
        );
        assert_eq!(report.redeliveries, 1);
        assert_eq!(
            report.lease_events,
            vec!["delivery:1:lease-expired".to_owned()]
        );
        assert_eq!(broker.redelivered(), 1);
        assert_eq!(broker.lease_expirations(), 1);
        // Let the wedged first delivery unwind before the test exits.
        std::thread::sleep(Duration::from_millis(250));
    }

    #[test]
    fn exhausted_redeliveries_are_quarantined() {
        let broker = BrokerScheduler::with_config(2, quick(1));
        let report = broker
            .submit(
                Task::new("always-wedged", || {
                    std::thread::sleep(Duration::from_millis(400));
                    Ok(String::new())
                })
                .timeout(Duration::from_millis(20)),
            )
            .wait();
        assert_eq!(report.state, TaskState::Quarantined);
        assert_eq!(report.redeliveries, 1);
        assert_eq!(
            report.lease_events,
            vec![
                "delivery:1:lease-expired".to_owned(),
                "delivery:2:lease-expired".to_owned()
            ]
        );
        assert!(report
            .error
            .as_deref()
            .unwrap_or("")
            .contains("redelivery cap"));
        assert_eq!(broker.dead_lettered(), 1);
        assert_eq!(broker.in_flight(), 0);
        // Let both wedged deliveries unwind before the test exits.
        std::thread::sleep(Duration::from_millis(450));
    }

    #[test]
    fn killed_workers_are_respawned_and_tasks_redelivered() {
        // Kill the worker on the first delivery only.
        let injector = Arc::new(FaultInjector::new(9).worker_kills(1.0).worker_kill_limit(1));
        let broker = BrokerScheduler::with_config(1, quick(1));
        let report = broker
            .submit(
                Task::new("victim", || Ok("survived".to_owned()))
                    .fault_injector(Arc::clone(&injector))
                    .timeout(Duration::from_secs(5)),
            )
            .wait();
        assert!(
            report.state.is_success(),
            "redelivered after kill: {report:?}"
        );
        assert_eq!(report.redeliveries, 1);
        assert_eq!(
            report.lease_events,
            vec!["delivery:1:worker-died".to_owned()]
        );
        assert_eq!(injector.injected_kills(), 1);
        assert!(broker.worker_respawns() >= 1);
        assert_eq!(broker.redelivered(), 1);
        // The pool healed: more work still runs.
        let ok = broker
            .submit(Task::new("after-kill", || Ok(String::new())))
            .wait();
        assert!(ok.state.is_success());
    }

    #[test]
    fn injected_delay_past_timeout_expires_the_lease() {
        // Satellite: a delayed attempt that exceeds the timeout must
        // produce TimedOut plus one lease expiration — not a hung
        // wait(). delays(1.0, ..) guarantees the injected delay fires;
        // assert the drawn magnitude actually exceeds the timeout so
        // the test cannot silently weaken.
        let injector = Arc::new(FaultInjector::new(21).delays(1.0, Duration::from_millis(400)));
        match injector.fault_for("delayed", 1) {
            Some(Fault::Delay(d)) => {
                assert!(
                    d > Duration::from_millis(30),
                    "seed must draw a long delay, got {d:?}"
                )
            }
            other => panic!("expected a delay fault, got {other:?}"),
        }
        let broker = BrokerScheduler::with_config(1, quick(0));
        let report = broker
            .submit(
                Task::new("delayed", || Ok(String::new()))
                    .fault_injector(Arc::clone(&injector))
                    .timeout(Duration::from_millis(30)),
            )
            .wait();
        assert_eq!(report.state, TaskState::TimedOut);
        assert!(report.detached);
        assert_eq!(broker.lease_expirations(), 1);
        // Let the delayed delivery unwind before the test exits.
        std::thread::sleep(Duration::from_millis(450));
    }

    #[test]
    fn detached_cap_fails_fast_instead_of_leaking() {
        let config = SupervisorConfig {
            heartbeat: Duration::from_millis(10),
            grace: Duration::from_millis(20),
            max_redeliveries: 0,
            max_detached: 1,
        };
        let broker = BrokerScheduler::with_config(2, config);
        let wedge = |name: &str| {
            broker.submit(
                Task::new(name.to_owned(), || {
                    std::thread::sleep(Duration::from_millis(300));
                    Ok(String::new())
                })
                .timeout(Duration::from_millis(20)),
            )
        };
        let first = wedge("wedge-1").wait();
        assert_eq!(first.state, TaskState::TimedOut);
        assert_eq!(broker.detached_workers(), 1);
        // The second wedge hits the cap: fail fast, no extra detach.
        let second = wedge("wedge-2").wait();
        assert_eq!(second.state, TaskState::TimedOut);
        assert!(second
            .error
            .as_deref()
            .unwrap_or("")
            .contains("detached-worker cap"));
        assert_eq!(
            broker.detached_workers(),
            1,
            "no second detach past the cap"
        );
        std::thread::sleep(Duration::from_millis(350));
    }
}
