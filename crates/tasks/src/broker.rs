//! The broker/worker executor (the Celery analogue).
//!
//! Tasks flow through a named broker queue; detached workers register
//! with the broker and pull work. The structure mirrors a distributed
//! Celery deployment collapsed into one process: the queue carries task
//! metadata + payload, workers ack by reporting, and per-queue
//! statistics are observable while the system runs.

use crate::task::{execute_reporting, Task, TaskHandle, TaskReport};
use crate::Scheduler;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = (Task, Sender<TaskReport>);

#[derive(Debug, Default)]
struct BrokerStats {
    submitted: AtomicU64,
    completed: AtomicU64,
}

/// A broker queue with attached worker threads.
#[derive(Debug)]
pub struct BrokerScheduler {
    queue: Option<Sender<Job>>,
    stats: Arc<BrokerStats>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
}

impl BrokerScheduler {
    /// Starts a broker with `workers` attached worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> BrokerScheduler {
        assert!(workers > 0, "a broker needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let stats = Arc::new(BrokerStats::default());
        let handles = (0..workers)
            .map(|i| Self::spawn_worker(i, rx.clone(), Arc::clone(&stats)))
            .collect();
        BrokerScheduler {
            queue: Some(tx),
            stats,
            workers: Mutex::new(handles),
            worker_count: workers,
        }
    }

    fn spawn_worker(
        index: usize,
        rx: Receiver<Job>,
        stats: Arc<BrokerStats>,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name(format!("simart-broker-worker-{index}"))
            .spawn(move || {
                while let Ok((task, report_tx)) = rx.recv() {
                    execute_reporting(task, report_tx);
                    stats.completed.fetch_add(1, Ordering::SeqCst);
                }
            })
            .expect("spawning broker worker")
    }

    /// Number of attached workers.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.stats.submitted.load(Ordering::SeqCst)
    }

    /// Tasks completed so far.
    pub fn completed(&self) -> u64 {
        self.stats.completed.load(Ordering::SeqCst)
    }

    /// Tasks currently queued or running.
    pub fn in_flight(&self) -> u64 {
        self.submitted().saturating_sub(self.completed())
    }
}

impl Scheduler for BrokerScheduler {
    fn submit(&self, task: Task) -> TaskHandle {
        let name = task.name().to_owned();
        let (tx, rx) = bounded(1);
        self.stats.submitted.fetch_add(1, Ordering::SeqCst);
        self.queue
            .as_ref()
            .expect("queue alive until drop")
            .send((task, tx))
            .expect("workers alive until drop");
        TaskHandle { receiver: rx, name }
    }

    fn name(&self) -> &'static str {
        "broker"
    }
}

impl Drop for BrokerScheduler {
    fn drop(&mut self) {
        self.queue.take();
        for worker in self.workers.get_mut().drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn tracks_in_flight_counts() {
        let broker = BrokerScheduler::new(2);
        assert_eq!(broker.workers(), 2);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                broker.submit(Task::new(format!("t{i}"), || {
                    std::thread::sleep(Duration::from_millis(20));
                    Ok(String::new())
                }))
            })
            .collect();
        assert_eq!(broker.submitted(), 4);
        for handle in handles {
            handle.wait();
        }
        assert_eq!(broker.completed(), 4);
        assert_eq!(broker.in_flight(), 0);
    }

    #[test]
    fn retries_flow_through_broker() {
        let broker = BrokerScheduler::new(2);
        let tries = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&tries);
        let report = broker
            .submit(
                Task::new("flaky", move || {
                    if seen.fetch_add(1, Ordering::SeqCst) == 0 {
                        Err("first attempt fails".to_owned())
                    } else {
                        Ok("second attempt works".to_owned())
                    }
                })
                .retries(2),
            )
            .wait();
        assert!(report.state.is_success());
        assert_eq!(report.attempts, 2);
    }
}
