//! Pluggable worker transports for the remote scheduler.
//!
//! The [`crate::remote`] coordinator speaks the CRC-framed wire
//! protocol of [`crate::wire`] over a byte stream per worker. This
//! module abstracts *which* byte stream:
//!
//! * [`TransportKind::Pipe`] — the original stdin/stdout pipe pair of
//!   a spawned child process. A lost pipe means a dead process, so
//!   there is no reconnect: supervision reaps and respawns.
//! * [`TransportKind::Tcp`] — the coordinator binds a loopback
//!   listener and workers dial in (`simart worker --connect
//!   HOST:PORT`). The connection can die while the process lives, so
//!   the Hello handshake carries a session token and a worker that
//!   loses its connection redials with capped exponential backoff and
//!   resumes its session under the same lease.
//!
//! Determinism under chaos rides on top: [`ChaosWriter`] and
//! [`ChaosReader`] wrap a connection's halves and replay the
//! [`FaultInjector`]'s seeded network-fault
//! stream — injected latency, byte corruption, silent one-way
//! partitions, connection resets, and arbitrary read re-chunking —
//! so a `--partition-rate` campaign reproduces its exact fault
//! schedule from `--seed`.

use crate::fault::{FaultInjector, NetFault};
use crate::remote::WorkerCommand;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::Child;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable carrying the session token a TCP worker
/// presents in its [`Hello`](crate::wire::Message::Hello) so the
/// coordinator can match the connection to its slot (and a
/// reconnecting worker to its previous session).
pub const WORKER_SESSION_ENV: &str = "SIMART_WORKER_SESSION";

/// Which byte stream the remote scheduler runs the wire protocol
/// over. See the module docs for the behavioral differences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// stdin/stdout pipes of the spawned worker process (the
    /// original, default transport).
    #[default]
    Pipe,
    /// A loopback TCP listener workers dial into, with session-resume
    /// reconnects.
    Tcp,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Pipe => f.write_str("pipe"),
            TransportKind::Tcp => f.write_str("tcp"),
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<TransportKind, String> {
        match s {
            "pipe" => Ok(TransportKind::Pipe),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!("unknown transport `{other}` (expected pipe|tcp)")),
        }
    }
}

/// A connected worker byte stream: a reader half for the coordinator's
/// per-worker reader thread and a writer half for dispatch frames.
/// `stream` is the severing capability: present for TCP (so the
/// coordinator can set read timeouts and force-shutdown the socket),
/// absent for pipes.
pub(crate) struct Duplex {
    pub(crate) reader: Box<dyn Read + Send>,
    pub(crate) writer: Box<dyn Write + Send>,
    pub(crate) stream: Option<TcpStream>,
}

/// Coordinator-side transport: how worker processes are launched and
/// how their byte streams arrive.
pub(crate) trait Transport: Send + Sync {
    /// The bound listener address, when there is one to advertise.
    fn listen_addr(&self) -> Option<SocketAddr>;

    /// Launches a worker process for `session`. Pipe transports
    /// return the connected duplex immediately; joining transports
    /// return `None` and the connection arrives later via
    /// [`Transport::poll_join`].
    fn spawn(&self, command: &WorkerCommand, session: u64) -> io::Result<(Child, Option<Duplex>)>;

    /// Non-blocking poll for a newly joined connection (TCP accept).
    fn poll_join(&self) -> Option<Duplex>;

    /// Whether connections join out-of-band (and may rejoin after a
    /// loss) rather than being bound to the process at spawn.
    fn joins(&self) -> bool;

    /// Closes the listener: no further joins are accepted and the
    /// bound port is released.
    fn close(&self);
}

/// Builds the transport for `kind`, binding the TCP listener up front
/// so spawn-time workers already have an address to dial.
pub(crate) fn make_transport(kind: TransportKind) -> io::Result<Box<dyn Transport>> {
    match kind {
        TransportKind::Pipe => Ok(Box::new(PipeTransport)),
        TransportKind::Tcp => {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            listener.set_nonblocking(true)?;
            let addr = listener.local_addr()?;
            Ok(Box::new(TcpTransport {
                listener: Mutex::new(Some(listener)),
                addr,
            }))
        }
    }
}

/// The original transport: worker stdin/stdout pipes. Connection
/// lifetime equals process lifetime, so `poll_join` never yields.
pub(crate) struct PipeTransport;

impl Transport for PipeTransport {
    fn listen_addr(&self) -> Option<SocketAddr> {
        None
    }

    fn spawn(&self, command: &WorkerCommand, _session: u64) -> io::Result<(Child, Option<Duplex>)> {
        let mut child = command.spawn_piped()?;
        let stdin = child.stdin.take().expect("worker stdin is piped");
        let stdout = child.stdout.take().expect("worker stdout is piped");
        Ok((
            child,
            Some(Duplex {
                reader: Box::new(stdout),
                writer: Box::new(stdin),
                stream: None,
            }),
        ))
    }

    fn poll_join(&self) -> Option<Duplex> {
        None
    }

    fn joins(&self) -> bool {
        false
    }

    fn close(&self) {}
}

/// Loopback TCP transport: workers dial the bound listener and
/// (re)join with a session token.
pub(crate) struct TcpTransport {
    listener: Mutex<Option<TcpListener>>,
    addr: SocketAddr,
}

impl Transport for TcpTransport {
    fn listen_addr(&self) -> Option<SocketAddr> {
        Some(self.addr)
    }

    fn spawn(&self, command: &WorkerCommand, session: u64) -> io::Result<(Child, Option<Duplex>)> {
        let child = command.spawn_connected(&self.addr.to_string(), session)?;
        Ok((child, None))
    }

    fn poll_join(&self) -> Option<Duplex> {
        let guard = self
            .listener
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let listener = guard.as_ref()?;
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let reader = stream.try_clone().ok()?;
                let writer = stream.try_clone().ok()?;
                Some(Duplex {
                    reader: Box::new(reader),
                    writer: Box::new(writer),
                    stream: Some(stream),
                })
            }
            Err(_) => None,
        }
    }

    fn joins(&self) -> bool {
        true
    }

    fn close(&self) {
        self.listener
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
    }
}

/// Deterministic chaos on the coordinator's *write* half of a worker
/// connection. Bytes are buffered until `flush` — the coordinator
/// writes exactly one frame per `write_all` + `flush` pair — and each
/// flushed frame consults the injector's seeded network stream:
///
/// * [`NetFault::Latency`] sleeps before sending (frame delay);
/// * [`NetFault::Corrupt`] flips one bit mid-frame (the worker's CRC
///   check reads it as a torn frame);
/// * [`NetFault::Partition`] silently drops the frame (a one-way
///   partition: the write "succeeds" but nothing arrives);
/// * [`NetFault::Reset`] severs the underlying socket and fails the
///   write (connection reset; the worker redials and resumes).
///
/// The draw counter is the session's *lifetime* frame number — shared
/// across every connection of the session via [`share_frames`] — so
/// the fault schedule is a pure function of `(seed, session, frame)`
/// and a reconnect continues the stream instead of replaying it. (A
/// counter that restarted at zero per connection would make a fault
/// drawn for frame 0 doom the session's handshake on every redial.)
///
/// [`share_frames`]: ChaosWriter::share_frames
pub struct ChaosWriter<W: Write> {
    inner: W,
    /// Socket to shut down on an injected reset (`None` in tests that
    /// chaos a plain buffer).
    sever: Option<TcpStream>,
    injector: Arc<FaultInjector>,
    session: u64,
    frames: Arc<AtomicU64>,
    buf: Vec<u8>,
    dead: bool,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner`, drawing faults from `injector`'s network stream
    /// for `session`. `sever` is the socket to kill on a reset.
    pub fn new(
        inner: W,
        sever: Option<TcpStream>,
        injector: Arc<FaultInjector>,
        session: u64,
    ) -> ChaosWriter<W> {
        ChaosWriter {
            inner,
            sever,
            injector,
            session,
            frames: Arc::new(AtomicU64::new(0)),
            buf: Vec::new(),
            dead: false,
        }
    }

    /// Draws frame numbers from `frames` instead of a private counter,
    /// so successive connections of one session continue the session's
    /// fault stream across reconnects.
    pub fn share_frames(mut self, frames: &Arc<AtomicU64>) -> ChaosWriter<W> {
        self.frames = Arc::clone(frames);
        self
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection reset",
            ));
        }
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection reset",
            ));
        }
        if self.buf.is_empty() {
            return self.inner.flush();
        }
        let frame = self.frames.fetch_add(1, Ordering::SeqCst);
        match self.injector.take_net_fault(self.session, frame) {
            Some(NetFault::Latency(delay)) => std::thread::sleep(delay),
            Some(NetFault::Corrupt) => {
                let mid = self.buf.len() / 2;
                self.buf[mid] ^= 0x40;
            }
            Some(NetFault::Partition) => {
                // One-way partition: the frame vanishes in flight but
                // the local write appears to succeed.
                self.buf.clear();
                return Ok(());
            }
            Some(NetFault::Reset) => {
                self.buf.clear();
                self.dead = true;
                if let Some(stream) = self.sever.as_ref() {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: connection reset",
                ));
            }
            None => {}
        }
        let bytes = std::mem::take(&mut self.buf);
        self.inner.write_all(&bytes)?;
        self.inner.flush()
    }
}

/// Deterministic re-chunking on the coordinator's *read* half: each
/// `read` is capped to a seeded length from the injector's chunk
/// stream, so frames arrive split at arbitrary byte boundaries and
/// the [`FrameDecoder`](crate::wire::FrameDecoder)'s buffering is
/// exercised exactly the same way on every same-seed run.
pub struct ChaosReader<R: Read> {
    inner: R,
    injector: Arc<FaultInjector>,
    session: u64,
    reads: u64,
}

impl<R: Read> ChaosReader<R> {
    /// Wraps `inner`, drawing chunk lengths from `injector`'s network
    /// stream for `session`.
    pub fn new(inner: R, injector: Arc<FaultInjector>, session: u64) -> ChaosReader<R> {
        ChaosReader {
            inner,
            injector,
            session,
            reads: 0,
        }
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let read = self.reads;
        self.reads += 1;
        let cap = self.injector.net_chunk_len(self.session, read, buf.len());
        self.inner.read(&mut buf[..cap])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{FrameDecoder, Message};
    use std::time::Duration;

    fn frame() -> Vec<u8> {
        Message::Drain.to_frame()
    }

    #[test]
    fn transport_kind_parses_and_displays() {
        assert_eq!(
            "pipe".parse::<TransportKind>().unwrap(),
            TransportKind::Pipe
        );
        assert_eq!("tcp".parse::<TransportKind>().unwrap(), TransportKind::Tcp);
        assert!("carrier-pigeon".parse::<TransportKind>().is_err());
        assert_eq!(TransportKind::Tcp.to_string(), "tcp");
        assert_eq!(TransportKind::default(), TransportKind::Pipe);
    }

    #[test]
    fn tcp_transport_accepts_joins_until_closed() {
        let transport = make_transport(TransportKind::Tcp).unwrap();
        let addr = transport.listen_addr().unwrap();
        assert!(transport.joins());
        assert!(transport.poll_join().is_none(), "no one dialed yet");
        let client = TcpStream::connect(addr).unwrap();
        let duplex = loop {
            if let Some(duplex) = transport.poll_join() {
                break duplex;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert!(duplex.stream.is_some(), "tcp duplex carries its socket");
        drop(client);
        transport.close();
        assert!(transport.poll_join().is_none());
        assert!(
            TcpStream::connect(addr).is_err(),
            "closed listener released the port"
        );
    }

    #[test]
    fn chaos_partition_drops_exactly_the_drawn_frames() {
        // Rate 1.0: every frame partitions — writes succeed, nothing
        // arrives.
        let injector = Arc::new(FaultInjector::new(11).net_partitions(1.0));
        let mut sink = Vec::new();
        {
            let mut writer = ChaosWriter::new(&mut sink, None, Arc::clone(&injector), 5);
            for _ in 0..4 {
                writer.write_all(&frame()).unwrap();
                writer.flush().unwrap();
            }
        }
        assert!(sink.is_empty(), "partitioned frames never arrive");
        assert_eq!(injector.injected_partitions(), 4);
    }

    #[test]
    fn chaos_corruption_breaks_the_crc_not_the_stream() {
        let injector = Arc::new(FaultInjector::new(11).net_corruption(1.0));
        let mut sink = Vec::new();
        {
            let mut writer = ChaosWriter::new(&mut sink, None, Arc::clone(&injector), 5);
            writer.write_all(&frame()).unwrap();
            writer.flush().unwrap();
        }
        assert_eq!(sink.len(), frame().len(), "corrupt frames still arrive");
        let mut decoder = FrameDecoder::new();
        decoder.feed(&sink);
        assert!(
            decoder.next_frame().is_err(),
            "one flipped bit fails the CRC"
        );
        assert_eq!(injector.injected_corruptions(), 1);
    }

    #[test]
    fn chaos_reset_severs_the_writer() {
        let injector = Arc::new(FaultInjector::new(11).net_resets(1.0));
        let mut sink = Vec::new();
        let mut writer = ChaosWriter::new(&mut sink, None, Arc::clone(&injector), 5);
        writer.write_all(&frame()).unwrap();
        assert!(writer.flush().is_err(), "reset fails the flush");
        assert!(
            writer.write_all(&frame()).is_err(),
            "a reset connection stays dead"
        );
        assert_eq!(injector.injected_resets(), 1);
    }

    #[test]
    fn shared_frame_counter_survives_reconnects() {
        // Find a seed where the session's frame 0 draws a partition
        // but frame 1 draws nothing: the first handshake frame is
        // doomed exactly once.
        let session = 3;
        let injector = (0u64..)
            .find_map(|seed| {
                let probe = FaultInjector::new(seed).net_partitions(0.5);
                (matches!(probe.take_net_fault(session, 0), Some(NetFault::Partition))
                    && probe.take_net_fault(session, 1).is_none())
                .then(|| Arc::new(FaultInjector::new(seed).net_partitions(0.5)))
            })
            .unwrap();
        let frames = Arc::new(AtomicU64::new(0));
        let mut sink = Vec::new();
        {
            let mut writer = ChaosWriter::new(&mut sink, None, Arc::clone(&injector), session)
                .share_frames(&frames);
            writer.write_all(&frame()).unwrap();
            writer.flush().unwrap();
        }
        assert!(sink.is_empty(), "frame 0 partitions");
        // Reconnect: a fresh writer sharing the counter draws frame 1,
        // so the retried frame goes through instead of replaying the
        // doomed draw forever.
        let mut sink = Vec::new();
        {
            let mut writer = ChaosWriter::new(&mut sink, None, Arc::clone(&injector), session)
                .share_frames(&frames);
            writer.write_all(&frame()).unwrap();
            writer.flush().unwrap();
        }
        assert_eq!(sink.len(), frame().len(), "the retry is not doomed");
        assert_eq!(frames.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn chaos_reader_rechunks_deterministically() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let chunks_of = |seed: u64| {
            let injector = Arc::new(FaultInjector::new(seed).net_partitions(0.1));
            let mut reader = ChaosReader::new(&payload[..], injector, 9);
            let mut out = Vec::new();
            let mut sizes = Vec::new();
            let mut buf = [0u8; 1024];
            loop {
                let n = reader.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                sizes.push(n);
                out.extend_from_slice(&buf[..n]);
            }
            (out, sizes)
        };
        let (out_a, sizes_a) = chunks_of(41);
        let (out_b, sizes_b) = chunks_of(41);
        let (_, sizes_c) = chunks_of(42);
        assert_eq!(out_a, payload, "re-chunking never loses bytes");
        assert_eq!(out_a, out_b, "same seed, same bytes");
        assert_eq!(sizes_a, sizes_b, "same seed, same chunk schedule");
        assert_ne!(sizes_a, sizes_c, "different seed, different schedule");
        assert!(
            sizes_a.iter().any(|&n| n < 1024),
            "chunking actually splits reads"
        );
    }
}
