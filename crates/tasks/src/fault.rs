//! Deterministic fault injection for exercising retry and recovery
//! paths.
//!
//! A [`FaultInjector`] is attached to tasks (see
//! [`Task::fault_injector`](crate::Task::fault_injector)) and consulted
//! once per attempt. Whether a fault fires — and which kind — is a pure
//! function of `(seed, task name, attempt)`, so a failing campaign can
//! be replayed exactly: same seed, same faults, same attempt histories.
//!
//! Three fault kinds cover the failure modes the schedulers must
//! survive: panics (caught and converted to task failures), spurious
//! errors (retried under the task's [`RetryPolicy`](crate::RetryPolicy)),
//! and injected delays (which push slow tasks into their deadlines).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A single injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The attempt panics (callers catch it and report a failure).
    Panic,
    /// The attempt returns an error without running the real work.
    SpuriousError,
    /// The attempt is delayed before the real work runs.
    Delay(Duration),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Panic => f.write_str("panic"),
            Fault::SpuriousError => f.write_str("spurious error"),
            Fault::Delay(d) => write!(f, "delay({d:?})"),
        }
    }
}

/// Deterministic, seeded fault injector.
///
/// Rates are probabilities in [0, 1] per attempt; they are evaluated in
/// the order panic → error → delay from a single uniform draw, so the
/// combined rate is their sum (clamped at 1).
pub struct FaultInjector {
    seed: u64,
    panic_rate: f64,
    error_rate: f64,
    delay_rate: f64,
    max_delay: Duration,
    injected_panics: AtomicU64,
    injected_errors: AtomicU64,
    injected_delays: AtomicU64,
}

impl FaultInjector {
    /// An injector that never fires; enable fault kinds with the
    /// builder methods.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            seed,
            panic_rate: 0.0,
            error_rate: 0.0,
            delay_rate: 0.0,
            max_delay: Duration::ZERO,
            injected_panics: AtomicU64::new(0),
            injected_errors: AtomicU64::new(0),
            injected_delays: AtomicU64::new(0),
        }
    }

    /// Panics a fraction `rate` of attempts.
    pub fn panics(mut self, rate: f64) -> FaultInjector {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fails a fraction `rate` of attempts with a spurious error.
    pub fn errors(mut self, rate: f64) -> FaultInjector {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Delays a fraction `rate` of attempts by up to `max_delay`.
    pub fn delays(mut self, rate: f64, max_delay: Duration) -> FaultInjector {
        self.delay_rate = rate.clamp(0.0, 1.0);
        self.max_delay = max_delay;
        self
    }

    /// The injector's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault (if any) for this `(task, attempt)` pair. Pure: equal
    /// inputs on equal seeds give equal answers, and calling it does
    /// not count as an injection.
    pub fn fault_for(&self, task: &str, attempt: u32) -> Option<Fault> {
        let stream = self.seed ^ fnv1a(task.as_bytes());
        let category = unit_draw(stream, u64::from(attempt) << 1);
        let panic_edge = self.panic_rate;
        let error_edge = panic_edge + self.error_rate;
        let delay_edge = error_edge + self.delay_rate;
        if category < panic_edge {
            Some(Fault::Panic)
        } else if category < error_edge {
            Some(Fault::SpuriousError)
        } else if category < delay_edge {
            let magnitude = unit_draw(stream, (u64::from(attempt) << 1) | 1);
            Some(Fault::Delay(Duration::from_secs_f64(
                self.max_delay.as_secs_f64() * magnitude,
            )))
        } else {
            None
        }
    }

    /// Applies the fault for this attempt, if any: sleeps on a delay,
    /// returns `Err` on a spurious error, and panics on a panic fault.
    /// Injections are counted in the observability counters.
    pub fn inject(&self, task: &str, attempt: u32) -> Result<(), String> {
        match self.fault_for(task, attempt) {
            None => Ok(()),
            Some(Fault::Delay(delay)) => {
                self.injected_delays.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(delay);
                Ok(())
            }
            Some(Fault::SpuriousError) => {
                self.injected_errors.fetch_add(1, Ordering::SeqCst);
                Err(format!("injected fault: spurious error ({task} attempt {attempt})"))
            }
            Some(Fault::Panic) => {
                self.injected_panics.fetch_add(1, Ordering::SeqCst);
                panic!("injected fault: panic ({task} attempt {attempt})");
            }
        }
    }

    /// Panics injected so far.
    pub fn injected_panics(&self) -> u64 {
        self.injected_panics.load(Ordering::SeqCst)
    }

    /// Spurious errors injected so far.
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors.load(Ordering::SeqCst)
    }

    /// Delays injected so far.
    pub fn injected_delays(&self) -> u64 {
        self.injected_delays.load(Ordering::SeqCst)
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.injected_panics() + self.injected_errors() + self.injected_delays()
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed)
            .field("panic_rate", &self.panic_rate)
            .field("error_rate", &self.error_rate)
            .field("delay_rate", &self.delay_rate)
            .field("max_delay", &self.max_delay)
            .field("injected_total", &self.injected_total())
            .finish()
    }
}

/// FNV-1a over the task name, mixing it into the per-task stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Deterministic draw in [0, 1): SplitMix64 finalizer over
/// `(stream, counter)`.
fn unit_draw(stream: u64, counter: u64) -> f64 {
    let mut z = stream ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_fire() {
        let injector = FaultInjector::new(1);
        for attempt in 1..100 {
            assert_eq!(injector.fault_for("any", attempt), None);
        }
        assert_eq!(injector.injected_total(), 0);
    }

    #[test]
    fn full_panic_rate_always_fires() {
        let injector = FaultInjector::new(2).panics(1.0);
        for attempt in 1..20 {
            assert_eq!(injector.fault_for("t", attempt), Some(Fault::Panic));
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultInjector::new(99).panics(0.2).errors(0.3).delays(0.2, Duration::from_millis(50));
        let b = FaultInjector::new(99).panics(0.2).errors(0.3).delays(0.2, Duration::from_millis(50));
        let c = FaultInjector::new(100).panics(0.2).errors(0.3).delays(0.2, Duration::from_millis(50));
        let plan = |inj: &FaultInjector| -> Vec<Option<Fault>> {
            (1..64).map(|attempt| inj.fault_for("task-x", attempt)).collect()
        };
        assert_eq!(plan(&a), plan(&b));
        assert_ne!(plan(&a), plan(&c));
    }

    #[test]
    fn decisions_vary_by_task_name() {
        let injector = FaultInjector::new(7).errors(0.5);
        let by_task = |name: &str| -> Vec<bool> {
            (1..64).map(|attempt| injector.fault_for(name, attempt).is_some()).collect()
        };
        assert_ne!(by_task("run-a"), by_task("run-b"));
    }

    #[test]
    fn spurious_errors_are_returned_and_counted() {
        let injector = FaultInjector::new(3).errors(1.0);
        let result = injector.inject("t", 1);
        assert!(result.unwrap_err().contains("injected fault"));
        assert_eq!(injector.injected_errors(), 1);
        assert_eq!(injector.injected_total(), 1);
    }

    #[test]
    fn panic_faults_panic_and_are_counted() {
        let injector = FaultInjector::new(4).panics(1.0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = injector.inject("t", 1);
        }));
        assert!(caught.is_err());
        assert_eq!(injector.injected_panics(), 1);
    }

    #[test]
    fn delay_faults_sleep_within_bound() {
        let injector = FaultInjector::new(5).delays(1.0, Duration::from_millis(10));
        match injector.fault_for("t", 1) {
            Some(Fault::Delay(d)) => assert!(d <= Duration::from_millis(10)),
            other => panic!("expected a delay fault, got {other:?}"),
        }
        assert!(injector.inject("t", 1).is_ok());
        assert_eq!(injector.injected_delays(), 1);
    }

    #[test]
    fn rates_partition_the_unit_interval() {
        let injector =
            FaultInjector::new(11).panics(0.25).errors(0.25).delays(0.25, Duration::from_millis(1));
        let mut counts = [0u32; 4];
        for attempt in 1..=400 {
            match injector.fault_for("mix", attempt) {
                Some(Fault::Panic) => counts[0] += 1,
                Some(Fault::SpuriousError) => counts[1] += 1,
                Some(Fault::Delay(_)) => counts[2] += 1,
                None => counts[3] += 1,
            }
        }
        // Each category should land near 100 of 400 draws.
        for count in counts {
            assert!((40..=160).contains(&count), "skewed draw distribution: {counts:?}");
        }
    }
}
