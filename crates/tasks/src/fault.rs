//! Deterministic fault injection for exercising retry and recovery
//! paths.
//!
//! A [`FaultInjector`] is attached to tasks (see
//! [`Task::fault_injector`](crate::Task::fault_injector)) and consulted
//! once per attempt. Whether a fault fires — and which kind — is a pure
//! function of `(seed, task name, attempt)`, so a failing campaign can
//! be replayed exactly: same seed, same faults, same attempt histories.
//!
//! Three fault kinds cover the failure modes the schedulers must
//! survive: panics (caught and converted to task failures), spurious
//! errors (retried under the task's [`RetryPolicy`](crate::RetryPolicy)),
//! and injected delays (which push slow tasks into their deadlines).
//!
//! A second family of *worker* faults ([`Fault::WorkerStall`] and
//! [`Fault::WorkerKill`]) models the execution environment rather than
//! the task payload: a stalled or killed worker thread. These are drawn
//! from a separate deterministic stream keyed by `(seed, task name,
//! delivery)` so enabling them never perturbs the per-attempt fault
//! plan, and they are only interpreted by the broker's supervision
//! layer ([`BrokerScheduler`](crate::BrokerScheduler)).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A single injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The attempt panics (callers catch it and report a failure).
    Panic,
    /// The attempt returns an error without running the real work.
    SpuriousError,
    /// The attempt is delayed before the real work runs.
    Delay(Duration),
    /// The worker thread stalls for the given duration while holding
    /// its task lease (the task itself is untouched).
    WorkerStall(Duration),
    /// The worker thread dies abruptly while holding its task lease,
    /// as if SIGKILLed; the lease dangles until a supervisor recovers
    /// it.
    WorkerKill,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Panic => f.write_str("panic"),
            Fault::SpuriousError => f.write_str("spurious error"),
            Fault::Delay(d) => write!(f, "delay({d:?})"),
            Fault::WorkerStall(d) => write!(f, "worker-stall({d:?})"),
            Fault::WorkerKill => f.write_str("worker-kill"),
        }
    }
}

/// A single injected network fault, applied per frame by the chaos
/// transport wrapper (`transport::ChaosTransport`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The frame is delayed in flight by the given duration.
    Latency(Duration),
    /// One byte of the frame is flipped in flight (the CRC layer
    /// detects it and the connection is dropped).
    Corrupt,
    /// The frame is silently dropped — a one-way partition: the sender
    /// believes it went out, the receiver never sees it, and only
    /// heartbeat loss reveals the split.
    Partition,
    /// The connection is severed after the frame is dropped, as if the
    /// peer's host reset the TCP stream; reconnecting transports dial
    /// back in with backoff.
    Reset,
}

impl fmt::Display for NetFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetFault::Latency(d) => write!(f, "net-latency({d:?})"),
            NetFault::Corrupt => f.write_str("net-corrupt"),
            NetFault::Partition => f.write_str("net-partition"),
            NetFault::Reset => f.write_str("net-reset"),
        }
    }
}

/// Deterministic, seeded fault injector.
///
/// Rates are probabilities in [0, 1] per attempt; they are evaluated in
/// the order panic → error → delay from a single uniform draw, so the
/// combined rate is their sum (clamped at 1).
pub struct FaultInjector {
    seed: u64,
    panic_rate: f64,
    error_rate: f64,
    delay_rate: f64,
    max_delay: Duration,
    stall_rate: f64,
    max_stall: Duration,
    kill_rate: f64,
    kill_limit: u64,
    net_latency_rate: f64,
    max_net_latency: Duration,
    net_corrupt_rate: f64,
    net_partition_rate: f64,
    net_reset_rate: f64,
    injected_panics: AtomicU64,
    injected_errors: AtomicU64,
    injected_delays: AtomicU64,
    injected_stalls: AtomicU64,
    injected_kills: AtomicU64,
    injected_latencies: AtomicU64,
    injected_corruptions: AtomicU64,
    injected_partitions: AtomicU64,
    injected_resets: AtomicU64,
}

impl FaultInjector {
    /// An injector that never fires; enable fault kinds with the
    /// builder methods.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            seed,
            panic_rate: 0.0,
            error_rate: 0.0,
            delay_rate: 0.0,
            max_delay: Duration::ZERO,
            stall_rate: 0.0,
            max_stall: Duration::ZERO,
            kill_rate: 0.0,
            kill_limit: u64::MAX,
            net_latency_rate: 0.0,
            max_net_latency: Duration::ZERO,
            net_corrupt_rate: 0.0,
            net_partition_rate: 0.0,
            net_reset_rate: 0.0,
            injected_panics: AtomicU64::new(0),
            injected_errors: AtomicU64::new(0),
            injected_delays: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
            injected_kills: AtomicU64::new(0),
            injected_latencies: AtomicU64::new(0),
            injected_corruptions: AtomicU64::new(0),
            injected_partitions: AtomicU64::new(0),
            injected_resets: AtomicU64::new(0),
        }
    }

    /// Panics a fraction `rate` of attempts.
    pub fn panics(mut self, rate: f64) -> FaultInjector {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fails a fraction `rate` of attempts with a spurious error.
    pub fn errors(mut self, rate: f64) -> FaultInjector {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Delays a fraction `rate` of attempts by up to `max_delay`.
    pub fn delays(mut self, rate: f64, max_delay: Duration) -> FaultInjector {
        self.delay_rate = rate.clamp(0.0, 1.0);
        self.max_delay = max_delay;
        self
    }

    /// Stalls a fraction `rate` of worker deliveries by up to
    /// `max_stall`.
    pub fn worker_stalls(mut self, rate: f64, max_stall: Duration) -> FaultInjector {
        self.stall_rate = rate.clamp(0.0, 1.0);
        self.max_stall = max_stall;
        self
    }

    /// Kills the worker on a fraction `rate` of deliveries.
    pub fn worker_kills(mut self, rate: f64) -> FaultInjector {
        self.kill_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Caps the total number of worker kills this injector will apply
    /// (default: unlimited). The plan ([`Self::worker_fault_for`]) is
    /// unaffected; the cap only gates [`Self::take_worker_fault`],
    /// which lets chaos tests kill a worker exactly once and then let
    /// the redelivered task succeed.
    pub fn worker_kill_limit(mut self, limit: u64) -> FaultInjector {
        self.kill_limit = limit;
        self
    }

    /// Delays a fraction `rate` of frames in flight by up to
    /// `max_latency`.
    pub fn net_latency(mut self, rate: f64, max_latency: Duration) -> FaultInjector {
        self.net_latency_rate = rate.clamp(0.0, 1.0);
        self.max_net_latency = max_latency;
        self
    }

    /// Flips a byte in a fraction `rate` of frames in flight.
    pub fn net_corruption(mut self, rate: f64) -> FaultInjector {
        self.net_corrupt_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Silently drops a fraction `rate` of frames (one-way partition).
    pub fn net_partitions(mut self, rate: f64) -> FaultInjector {
        self.net_partition_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Severs the connection on a fraction `rate` of frames.
    pub fn net_resets(mut self, rate: f64) -> FaultInjector {
        self.net_reset_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// The injector's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any network fault kind is enabled (lets transports skip
    /// the chaos wrapper entirely when the answer is no).
    pub fn net_faults_enabled(&self) -> bool {
        self.net_latency_rate > 0.0
            || self.net_corrupt_rate > 0.0
            || self.net_partition_rate > 0.0
            || self.net_reset_rate > 0.0
    }

    /// The fault (if any) for this `(task, attempt)` pair. Pure: equal
    /// inputs on equal seeds give equal answers, and calling it does
    /// not count as an injection.
    pub fn fault_for(&self, task: &str, attempt: u32) -> Option<Fault> {
        let stream = self.seed ^ fnv1a(task.as_bytes());
        let category = unit_draw(stream, u64::from(attempt) << 1);
        let panic_edge = self.panic_rate;
        let error_edge = panic_edge + self.error_rate;
        let delay_edge = error_edge + self.delay_rate;
        if category < panic_edge {
            Some(Fault::Panic)
        } else if category < error_edge {
            Some(Fault::SpuriousError)
        } else if category < delay_edge {
            let magnitude = unit_draw(stream, (u64::from(attempt) << 1) | 1);
            Some(Fault::Delay(Duration::from_secs_f64(
                self.max_delay.as_secs_f64() * magnitude,
            )))
        } else {
            None
        }
    }

    /// Applies the fault for this attempt, if any: sleeps on a delay,
    /// returns `Err` on a spurious error, and panics on a panic fault.
    /// Injections are counted in the observability counters.
    pub fn inject(&self, task: &str, attempt: u32) -> Result<(), String> {
        match self.fault_for(task, attempt) {
            None => Ok(()),
            Some(Fault::Delay(delay)) => {
                self.injected_delays.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(delay);
                Ok(())
            }
            Some(Fault::SpuriousError) => {
                self.injected_errors.fetch_add(1, Ordering::SeqCst);
                Err(format!(
                    "injected fault: spurious error ({task} attempt {attempt})"
                ))
            }
            Some(Fault::Panic) => {
                self.injected_panics.fetch_add(1, Ordering::SeqCst);
                panic!("injected fault: panic ({task} attempt {attempt})");
            }
            // Worker faults come only from `worker_fault_for` / the
            // broker's `take_worker_fault` path, never `fault_for`.
            Some(Fault::WorkerStall(_) | Fault::WorkerKill) => {
                unreachable!("fault_for never returns worker faults")
            }
        }
    }

    /// The worker fault (if any) for this `(task, delivery)` pair.
    /// Pure, like [`Self::fault_for`], and drawn from a separate
    /// stream: enabling worker faults never changes which per-attempt
    /// faults fire. Only ever returns [`Fault::WorkerStall`] or
    /// [`Fault::WorkerKill`].
    pub fn worker_fault_for(&self, task: &str, delivery: u32) -> Option<Fault> {
        let stream = self.seed ^ fnv1a(task.as_bytes()) ^ WORKER_STREAM_SALT;
        let category = unit_draw(stream, u64::from(delivery) << 1);
        let stall_edge = self.stall_rate;
        let kill_edge = stall_edge + self.kill_rate;
        if category < stall_edge {
            let magnitude = unit_draw(stream, (u64::from(delivery) << 1) | 1);
            Some(Fault::WorkerStall(Duration::from_secs_f64(
                self.max_stall.as_secs_f64() * magnitude,
            )))
        } else if category < kill_edge {
            Some(Fault::WorkerKill)
        } else {
            None
        }
    }

    /// Claims the worker fault for this delivery, counting it and
    /// applying the kill budget ([`Self::worker_kill_limit`]). Returns
    /// the fault for the *caller* to act on (the injector cannot kill
    /// the calling thread itself); a kill past the budget is reported
    /// as `None`.
    pub fn take_worker_fault(&self, task: &str, delivery: u32) -> Option<Fault> {
        match self.worker_fault_for(task, delivery) {
            Some(Fault::WorkerStall(stall)) => {
                self.injected_stalls.fetch_add(1, Ordering::SeqCst);
                Some(Fault::WorkerStall(stall))
            }
            Some(Fault::WorkerKill) => {
                let limit = self.kill_limit;
                let claimed = self
                    .injected_kills
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |kills| {
                        (kills < limit).then_some(kills + 1)
                    })
                    .is_ok();
                claimed.then_some(Fault::WorkerKill)
            }
            _ => None,
        }
    }

    /// The network fault (if any) for the `frame`-th frame of worker
    /// session `session`. Pure, like [`Self::fault_for`], and drawn
    /// from a third stream salted away from both the attempt and the
    /// worker streams: enabling network chaos never changes which task
    /// or worker faults fire. Rates are evaluated in the order
    /// latency → corrupt → partition → reset from one uniform draw.
    pub fn net_fault_for(&self, session: u64, frame: u64) -> Option<NetFault> {
        let stream = self.seed ^ mix(session) ^ NET_STREAM_SALT;
        let category = unit_draw(stream, frame << 1);
        let latency_edge = self.net_latency_rate;
        let corrupt_edge = latency_edge + self.net_corrupt_rate;
        let partition_edge = corrupt_edge + self.net_partition_rate;
        let reset_edge = partition_edge + self.net_reset_rate;
        if category < latency_edge {
            let magnitude = unit_draw(stream, (frame << 1) | 1);
            Some(NetFault::Latency(Duration::from_secs_f64(
                self.max_net_latency.as_secs_f64() * magnitude,
            )))
        } else if category < corrupt_edge {
            Some(NetFault::Corrupt)
        } else if category < partition_edge {
            Some(NetFault::Partition)
        } else if category < reset_edge {
            Some(NetFault::Reset)
        } else {
            None
        }
    }

    /// Claims the network fault for this frame, counting it. Returns
    /// the fault for the transport wrapper to act on.
    pub fn take_net_fault(&self, session: u64, frame: u64) -> Option<NetFault> {
        let fault = self.net_fault_for(session, frame);
        match fault {
            Some(NetFault::Latency(_)) => {
                self.injected_latencies.fetch_add(1, Ordering::SeqCst);
            }
            Some(NetFault::Corrupt) => {
                self.injected_corruptions.fetch_add(1, Ordering::SeqCst);
            }
            Some(NetFault::Partition) => {
                self.injected_partitions.fetch_add(1, Ordering::SeqCst);
            }
            Some(NetFault::Reset) => {
                self.injected_resets.fetch_add(1, Ordering::SeqCst);
            }
            None => {}
        }
        fault
    }

    /// Deterministic read-chunk size in `[1, max]` for the `read`-th
    /// read of worker session `session` — the chaos transport uses it
    /// to re-chunk the byte stream at arbitrary boundaries, modelling
    /// TCP segmentation. Pure, from the network stream.
    pub fn net_chunk_len(&self, session: u64, read: u64, max: usize) -> usize {
        if max <= 1 {
            return max;
        }
        let stream = self.seed ^ mix(session) ^ NET_STREAM_SALT;
        let draw = unit_draw(stream, CHUNK_COUNTER_BASE | read);
        1 + (draw * (max as f64 - 1.0)) as usize
    }

    /// Panics injected so far.
    pub fn injected_panics(&self) -> u64 {
        self.injected_panics.load(Ordering::SeqCst)
    }

    /// Spurious errors injected so far.
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors.load(Ordering::SeqCst)
    }

    /// Delays injected so far.
    pub fn injected_delays(&self) -> u64 {
        self.injected_delays.load(Ordering::SeqCst)
    }

    /// Worker stalls injected so far.
    pub fn injected_stalls(&self) -> u64 {
        self.injected_stalls.load(Ordering::SeqCst)
    }

    /// Worker kills injected so far (never exceeds the kill limit).
    pub fn injected_kills(&self) -> u64 {
        self.injected_kills.load(Ordering::SeqCst)
    }

    /// Frame latencies injected so far.
    pub fn injected_latencies(&self) -> u64 {
        self.injected_latencies.load(Ordering::SeqCst)
    }

    /// Frame corruptions injected so far.
    pub fn injected_corruptions(&self) -> u64 {
        self.injected_corruptions.load(Ordering::SeqCst)
    }

    /// Frame drops (one-way partitions) injected so far.
    pub fn injected_partitions(&self) -> u64 {
        self.injected_partitions.load(Ordering::SeqCst)
    }

    /// Connection resets injected so far.
    pub fn injected_resets(&self) -> u64 {
        self.injected_resets.load(Ordering::SeqCst)
    }

    /// Total faults injected so far, worker and network faults
    /// included.
    pub fn injected_total(&self) -> u64 {
        self.injected_panics()
            + self.injected_errors()
            + self.injected_delays()
            + self.injected_stalls()
            + self.injected_kills()
            + self.injected_latencies()
            + self.injected_corruptions()
            + self.injected_partitions()
            + self.injected_resets()
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed)
            .field("panic_rate", &self.panic_rate)
            .field("error_rate", &self.error_rate)
            .field("delay_rate", &self.delay_rate)
            .field("max_delay", &self.max_delay)
            .field("injected_total", &self.injected_total())
            .finish()
    }
}

/// Salt separating the worker-fault stream from the per-attempt fault
/// stream for the same `(seed, task)` pair.
const WORKER_STREAM_SALT: u64 = 0x574F_524B_4552_2121; // "WORKER!!"

/// Salt separating the network-fault stream from both other streams.
const NET_STREAM_SALT: u64 = 0x4E45_5457_4F52_4B21; // "NETWORK!"

/// High bit separating chunk-size draws from frame-fault draws within
/// the network stream (frame counters stay far below 2^63).
const CHUNK_COUNTER_BASE: u64 = 1 << 63;

/// SplitMix64 finalizer: spreads a session token over the whole u64
/// space before it is xored into the stream seed (tokens are small
/// sequential integers, which would otherwise collide with the
/// task-name hash space only trivially perturbed).
fn mix(value: u64) -> u64 {
    let mut z = value.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the task name, mixing it into the per-task stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Deterministic draw in [0, 1): SplitMix64 finalizer over
/// `(stream, counter)`.
fn unit_draw(stream: u64, counter: u64) -> f64 {
    let mut z = stream ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_fire() {
        let injector = FaultInjector::new(1);
        for attempt in 1..100 {
            assert_eq!(injector.fault_for("any", attempt), None);
        }
        assert_eq!(injector.injected_total(), 0);
    }

    #[test]
    fn full_panic_rate_always_fires() {
        let injector = FaultInjector::new(2).panics(1.0);
        for attempt in 1..20 {
            assert_eq!(injector.fault_for("t", attempt), Some(Fault::Panic));
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultInjector::new(99)
            .panics(0.2)
            .errors(0.3)
            .delays(0.2, Duration::from_millis(50));
        let b = FaultInjector::new(99)
            .panics(0.2)
            .errors(0.3)
            .delays(0.2, Duration::from_millis(50));
        let c = FaultInjector::new(100)
            .panics(0.2)
            .errors(0.3)
            .delays(0.2, Duration::from_millis(50));
        let plan = |inj: &FaultInjector| -> Vec<Option<Fault>> {
            (1..64)
                .map(|attempt| inj.fault_for("task-x", attempt))
                .collect()
        };
        assert_eq!(plan(&a), plan(&b));
        assert_ne!(plan(&a), plan(&c));
    }

    #[test]
    fn decisions_vary_by_task_name() {
        let injector = FaultInjector::new(7).errors(0.5);
        let by_task = |name: &str| -> Vec<bool> {
            (1..64)
                .map(|attempt| injector.fault_for(name, attempt).is_some())
                .collect()
        };
        assert_ne!(by_task("run-a"), by_task("run-b"));
    }

    #[test]
    fn spurious_errors_are_returned_and_counted() {
        let injector = FaultInjector::new(3).errors(1.0);
        let result = injector.inject("t", 1);
        assert!(result.unwrap_err().contains("injected fault"));
        assert_eq!(injector.injected_errors(), 1);
        assert_eq!(injector.injected_total(), 1);
    }

    #[test]
    fn panic_faults_panic_and_are_counted() {
        let injector = FaultInjector::new(4).panics(1.0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = injector.inject("t", 1);
        }));
        assert!(caught.is_err());
        assert_eq!(injector.injected_panics(), 1);
    }

    #[test]
    fn delay_faults_sleep_within_bound() {
        let injector = FaultInjector::new(5).delays(1.0, Duration::from_millis(10));
        match injector.fault_for("t", 1) {
            Some(Fault::Delay(d)) => assert!(d <= Duration::from_millis(10)),
            other => panic!("expected a delay fault, got {other:?}"),
        }
        assert!(injector.inject("t", 1).is_ok());
        assert_eq!(injector.injected_delays(), 1);
    }

    #[test]
    fn worker_faults_use_a_separate_stream() {
        let plain = FaultInjector::new(42)
            .errors(0.4)
            .delays(0.3, Duration::from_millis(5));
        let with_worker = FaultInjector::new(42)
            .errors(0.4)
            .delays(0.3, Duration::from_millis(5))
            .worker_stalls(0.5, Duration::from_millis(5))
            .worker_kills(0.5);
        // Enabling worker faults must not perturb the attempt plan.
        for attempt in 1..64 {
            assert_eq!(
                plain.fault_for("t", attempt),
                with_worker.fault_for("t", attempt)
            );
        }
        // And attempt-only injectors never produce worker faults.
        for delivery in 1..64 {
            assert_eq!(plain.worker_fault_for("t", delivery), None);
        }
    }

    #[test]
    fn worker_kill_limit_caps_take_but_not_the_plan() {
        let injector = FaultInjector::new(6).worker_kills(1.0).worker_kill_limit(1);
        assert_eq!(injector.worker_fault_for("t", 1), Some(Fault::WorkerKill));
        assert_eq!(injector.worker_fault_for("t", 2), Some(Fault::WorkerKill));
        assert_eq!(injector.take_worker_fault("t", 1), Some(Fault::WorkerKill));
        assert_eq!(injector.take_worker_fault("t", 2), None);
        assert_eq!(injector.injected_kills(), 1);
    }

    #[test]
    fn worker_stalls_are_deterministic_and_bounded() {
        let a = FaultInjector::new(8).worker_stalls(1.0, Duration::from_millis(20));
        let b = FaultInjector::new(8).worker_stalls(1.0, Duration::from_millis(20));
        for delivery in 1..32 {
            let fault = a.worker_fault_for("t", delivery);
            assert_eq!(fault, b.worker_fault_for("t", delivery));
            match fault {
                Some(Fault::WorkerStall(d)) => assert!(d <= Duration::from_millis(20)),
                other => panic!("expected a stall, got {other:?}"),
            }
        }
        assert!(a.take_worker_fault("t", 1).is_some());
        assert_eq!(a.injected_stalls(), 1);
        assert_eq!(a.injected_total(), 1);
    }

    #[test]
    fn net_faults_use_a_third_stream() {
        let plain = FaultInjector::new(42)
            .errors(0.4)
            .worker_kills(0.5)
            .worker_stalls(0.2, Duration::from_millis(5));
        let with_net = FaultInjector::new(42)
            .errors(0.4)
            .worker_kills(0.5)
            .worker_stalls(0.2, Duration::from_millis(5))
            .net_latency(0.2, Duration::from_millis(5))
            .net_corruption(0.2)
            .net_partitions(0.2)
            .net_resets(0.2);
        // Enabling network chaos must not perturb the attempt plan or
        // the worker-fault plan.
        for n in 1..64 {
            assert_eq!(plain.fault_for("t", n), with_net.fault_for("t", n));
            assert_eq!(
                plain.worker_fault_for("t", n),
                with_net.worker_fault_for("t", n)
            );
        }
        // And injectors without network rates never produce net faults.
        for frame in 0..64 {
            assert_eq!(plain.net_fault_for(1, frame), None);
        }
        assert!(!plain.net_faults_enabled());
        assert!(with_net.net_faults_enabled());
    }

    #[test]
    fn net_faults_are_deterministic_per_seed_and_session() {
        let a = FaultInjector::new(9).net_partitions(0.3).net_resets(0.3);
        let b = FaultInjector::new(9).net_partitions(0.3).net_resets(0.3);
        let c = FaultInjector::new(10).net_partitions(0.3).net_resets(0.3);
        let plan = |inj: &FaultInjector, session: u64| -> Vec<Option<NetFault>> {
            (0..64)
                .map(|frame| inj.net_fault_for(session, frame))
                .collect()
        };
        assert_eq!(plan(&a, 1), plan(&b, 1));
        assert_ne!(plan(&a, 1), plan(&c, 1));
        assert_ne!(plan(&a, 1), plan(&a, 2), "sessions draw distinct streams");
    }

    #[test]
    fn taking_net_faults_counts_them() {
        let injector = FaultInjector::new(12)
            .net_latency(0.25, Duration::from_millis(2))
            .net_corruption(0.25)
            .net_partitions(0.25)
            .net_resets(0.25);
        for frame in 0..400 {
            let took = injector.take_net_fault(3, frame);
            assert_eq!(took, injector.net_fault_for(3, frame));
            if let Some(NetFault::Latency(d)) = took {
                assert!(d <= Duration::from_millis(2));
            }
        }
        assert!(injector.injected_latencies() > 0);
        assert!(injector.injected_corruptions() > 0);
        assert!(injector.injected_partitions() > 0);
        assert!(injector.injected_resets() > 0);
        assert_eq!(
            injector.injected_total(),
            injector.injected_latencies()
                + injector.injected_corruptions()
                + injector.injected_partitions()
                + injector.injected_resets()
        );
    }

    #[test]
    fn chunk_lengths_are_bounded_deterministic_and_varied() {
        let a = FaultInjector::new(13).net_partitions(0.1);
        let b = FaultInjector::new(13).net_partitions(0.1);
        let mut distinct = std::collections::HashSet::new();
        for read in 0..256 {
            let len = a.net_chunk_len(5, read, 512);
            assert_eq!(len, b.net_chunk_len(5, read, 512));
            assert!((1..=512).contains(&len));
            distinct.insert(len);
        }
        assert!(distinct.len() > 16, "chunk sizes should spread");
        assert_eq!(a.net_chunk_len(5, 0, 1), 1);
        assert_eq!(a.net_chunk_len(5, 0, 0), 0);
    }

    #[test]
    fn rates_partition_the_unit_interval() {
        let injector = FaultInjector::new(11)
            .panics(0.25)
            .errors(0.25)
            .delays(0.25, Duration::from_millis(1));
        let mut counts = [0u32; 4];
        for attempt in 1..=400 {
            match injector.fault_for("mix", attempt) {
                Some(Fault::Panic) => counts[0] += 1,
                Some(Fault::SpuriousError) => counts[1] += 1,
                Some(Fault::Delay(_)) => counts[2] += 1,
                Some(Fault::WorkerStall(_) | Fault::WorkerKill) => {
                    panic!("attempt stream never yields worker faults")
                }
                None => counts[3] += 1,
            }
        }
        // Each category should land near 100 of 400 draws.
        for count in counts {
            assert!(
                (40..=160).contains(&count),
                "skewed draw distribution: {counts:?}"
            );
        }
    }
}
