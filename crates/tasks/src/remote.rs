//! Crash-isolated multi-process task execution: the remote scheduler.
//!
//! [`RemoteScheduler`] is the process-level sibling of
//! [`BrokerScheduler`](crate::BrokerScheduler). Where the broker runs
//! worker *threads* in the coordinator's address space, the remote
//! scheduler spawns worker *processes* (the hidden `simart worker`
//! subcommand) and speaks the CRC-framed wire protocol of
//! [`crate::wire`] over each child's stdin/stdout pipes. A segfaulting
//! or SIGKILLed simulation can therefore never take the coordinator
//! down — the deployment shape of the paper's Celery workers.
//!
//! The delivery contract is the broker's supervision contract,
//! verbatim:
//!
//! * every dispatched job holds a *lease* (task timeout + grace);
//! * a worker whose PID dies, whose heartbeats stop, or whose lease
//!   expires is killed and respawned with a bumped generation;
//! * the job is re-delivered up to
//!   [`SupervisorConfig::max_redeliveries`] times, with
//!   first-report-wins dedup, and dead-lettered as
//!   [`TaskState::Quarantined`] once the cap is exhausted;
//! * lease history rides along in the report as
//!   `"delivery:<n>:<cause>"` events.
//!
//! On top of that contract: bounded-queue backpressure on submit
//! (blocking with a deadline, [`SubmitError`] on shutdown) and
//! work-stealing between idle workers. Chaos is literal here — a
//! [`FaultInjector`] with a kill rate makes the coordinator SIGKILL
//! real worker PIDs at dispatch time.
//!
//! Because a process boundary cannot ship closures, remote tasks are
//! [`RemoteTaskSpec`]s: a handler *kind* resolved by the worker's
//! [`HandlerRegistry`] plus an opaque string payload. The worker side
//! of the protocol is [`worker_main`].

use crate::fault::{Fault, FaultInjector};
use crate::supervise::SupervisorConfig;
use crate::task::{AttemptDisposition, AttemptRecord, TaskHandle, TaskReport, TaskState};
use crate::trace;
use crate::wire::{FrameDecoder, Message, PROTOCOL_VERSION};
use crossbeam::channel::{bounded, Sender};
use simart_observe as observe;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a worker process is launched. The program must run
/// [`worker_main`] and speak the wire protocol on stdin/stdout
/// (stderr is inherited, so worker logs land in the coordinator's
/// stderr).
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A command launching `program` with no arguments.
    pub fn new(program: impl Into<PathBuf>) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
        }
    }

    /// Appends a command-line argument.
    pub fn arg(mut self, arg: impl Into<String>) -> WorkerCommand {
        self.args.push(arg.into());
        self
    }

    /// Sets an environment variable for the worker process.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> WorkerCommand {
        self.envs.push((key.into(), value.into()));
        self
    }

    fn command(&self) -> Command {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        for (key, value) in &self.envs {
            cmd.env(key, value);
        }
        cmd
    }
}

/// Tuning for a [`RemoteScheduler`].
#[derive(Clone)]
pub struct RemoteConfig {
    /// The broker supervision contract: heartbeat cadence, lease
    /// grace, redelivery cap. `max_detached` is unused — remote
    /// workers are killed, never detached.
    pub supervisor: SupervisorConfig,
    /// Bound on queued (not yet dispatched) jobs; submits beyond it
    /// block until space frees or `submit_deadline` passes.
    pub queue_capacity: usize,
    /// How long a backpressured submit may block before returning
    /// [`SubmitError::Backpressure`].
    pub submit_deadline: Duration,
    /// How long a draining shutdown waits for in-flight and queued
    /// work before abandoning the remainder.
    pub drain_deadline: Duration,
    /// Chaos injector consulted once per dispatch; a
    /// [`Fault::WorkerKill`] draw SIGKILLs the worker's real PID.
    pub fault: Option<Arc<FaultInjector>>,
}

impl Default for RemoteConfig {
    fn default() -> RemoteConfig {
        RemoteConfig {
            supervisor: SupervisorConfig::default(),
            queue_capacity: 256,
            submit_deadline: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(60),
            fault: None,
        }
    }
}

impl fmt::Debug for RemoteConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteConfig")
            .field("supervisor", &self.supervisor)
            .field("queue_capacity", &self.queue_capacity)
            .field("submit_deadline", &self.submit_deadline)
            .field("drain_deadline", &self.drain_deadline)
            .field("fault", &self.fault.is_some())
            .finish()
    }
}

/// A unit of work submittable across the process boundary: a handler
/// `kind` (resolved in the worker's [`HandlerRegistry`]) plus an
/// opaque payload string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteTaskSpec {
    /// Task name, for reports and provenance.
    pub name: String,
    /// Handler kind the worker resolves.
    pub kind: String,
    /// Opaque serialized input handed to the handler.
    pub payload: String,
    /// Wall-clock timeout enforced by the coordinator's lease (the
    /// worker is SIGKILLed once timeout + grace passes).
    pub timeout: Option<Duration>,
}

impl RemoteTaskSpec {
    /// Creates a spec with no timeout.
    pub fn new(
        name: impl Into<String>,
        kind: impl Into<String>,
        payload: impl Into<String>,
    ) -> RemoteTaskSpec {
        RemoteTaskSpec {
            name: name.into(),
            kind: kind.into(),
            payload: payload.into(),
            timeout: None,
        }
    }

    /// Sets the lease-enforced timeout.
    pub fn timeout(mut self, timeout: Duration) -> RemoteTaskSpec {
        self.timeout = Some(timeout);
        self
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue stayed full past the submit deadline.
    Backpressure,
    /// The scheduler is shutting down and accepts no new work.
    Shutdown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Backpressure => {
                f.write_str("remote queue full: backpressure deadline exceeded")
            }
            SubmitError::Shutdown => f.write_str("remote scheduler is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Lifecycle notifications for dispatch provenance (consumed by the
/// experiment layer to journal `remote-dispatch`/`remote-ack` events
/// onto runs). Hooks run on coordinator threads while internal state
/// is locked: keep them quick and never call back into the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteEvent {
    /// A job was written to a worker's pipe.
    Dispatched {
        /// Task name.
        task: String,
        /// 1-based delivery number.
        delivery: u32,
        /// Generation of the worker it went to.
        generation: u64,
        /// The worker's OS PID.
        pid: u32,
    },
    /// A worker's result was accepted (first report wins).
    Acked {
        /// Task name.
        task: String,
        /// Delivery number that reported.
        delivery: u32,
        /// Generation that reported.
        generation: u64,
    },
    /// A recovered lease was queued for another delivery.
    Redelivered {
        /// Task name.
        task: String,
        /// The delivery whose lease was revoked.
        delivery: u32,
        /// Revocation cause (`worker-died`, `heartbeat-lost`,
        /// `lease-expired`, `torn-frame`).
        cause: String,
    },
    /// The task was dead-lettered (cap exhausted or unrecoverable).
    DeadLettered {
        /// Task name.
        task: String,
        /// Final revocation cause.
        cause: String,
    },
}

/// Counters snapshot from [`RemoteScheduler::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteStats {
    /// Live worker slots.
    pub workers: usize,
    /// Jobs accepted by `submit`.
    pub submitted: u64,
    /// Results delivered to handles.
    pub completed: u64,
    /// Jobs discarded at shutdown without a report.
    pub dropped: u64,
    /// Jobs dead-lettered (quarantined / failed / timed out by the
    /// supervisor).
    pub dead_lettered: u64,
    /// Lease recoveries that led to another delivery.
    pub redelivered: u64,
    /// Worker processes respawned after death or a wedge.
    pub respawns: u64,
    /// Hard frame/decode errors on worker pipes.
    pub frame_errors: u64,
    /// Real SIGKILLs sent by the chaos injector.
    pub chaos_kills: u64,
    /// Jobs stolen from a busy worker's queue by an idle one.
    pub steals: u64,
    /// Jobs queued but not yet dispatched.
    pub backlog: usize,
    /// Jobs dispatched and awaiting a result (live leases).
    pub in_flight: usize,
}

struct StatCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    dropped: AtomicU64,
    dead_lettered: AtomicU64,
    redelivered: AtomicU64,
    respawns: AtomicU64,
    frame_errors: AtomicU64,
    chaos_kills: AtomicU64,
    steals: AtomicU64,
}

impl StatCounters {
    fn new() -> StatCounters {
        StatCounters {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            dead_lettered: AtomicU64::new(0),
            redelivered: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            frame_errors: AtomicU64::new(0),
            chaos_kills: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }
}

type EventHook = Arc<dyn Fn(&RemoteEvent) + Send + Sync>;

struct RemoteJob {
    spec: RemoteTaskSpec,
    report_tx: Sender<TaskReport>,
    reported: Arc<AtomicBool>,
    job_id: u64,
    /// 1-based delivery number (redeliveries = delivery - 1).
    delivery: u32,
    lease_events: Vec<String>,
    first_enqueued: Instant,
    trace_id: u64,
}

struct RemoteLease {
    job: RemoteJob,
    deadline: Option<Instant>,
}

struct Slot {
    generation: u64,
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    pid: u32,
    /// Handshake complete (Hello seen, HelloAck sent).
    ready: bool,
    /// Drain sent or Bye received: reap without respawn.
    exiting: bool,
    busy: Option<u64>,
    last_seen: Instant,
    queue: VecDeque<RemoteJob>,
    reader: Option<JoinHandle<()>>,
}

struct CoordState {
    slots: Vec<Slot>,
    leases: HashMap<u64, RemoteLease>,
    retired_readers: Vec<JoinHandle<()>>,
    next_job: u64,
    next_generation: u64,
    /// Queued-but-undispatched jobs across all slot queues.
    backlog: usize,
    /// No new submits accepted.
    shutdown: bool,
    /// No more respawns (shutdown is reaping).
    abandoned: bool,
    /// Children reaped and threads joined; terminal.
    reaped: bool,
    drained_clean: bool,
}

struct Shared {
    command: WorkerCommand,
    config: RemoteConfig,
    state: Mutex<CoordState>,
    /// Signalled when queue space frees, leases resolve, or shutdown
    /// progresses — submitters and the draining shutdown wait here.
    space: Condvar,
    stopping: AtomicBool,
    stats: StatCounters,
    hook: Mutex<Option<EventHook>>,
    queue_trace: u64,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, CoordState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Process-level scheduler: spawns crash-isolated worker processes and
/// delivers [`RemoteTaskSpec`]s to them over the wire protocol under
/// the broker's lease/supervision contract. See the module docs.
pub struct RemoteScheduler {
    shared: Arc<Shared>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl RemoteScheduler {
    /// Spawns `workers` worker processes with default configuration.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure if no worker process could be
    /// started at all.
    pub fn new(command: WorkerCommand, workers: usize) -> std::io::Result<RemoteScheduler> {
        RemoteScheduler::with_config(command, workers, RemoteConfig::default())
    }

    /// Spawns `workers` worker processes under `config`.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure if no worker process could be
    /// started at all.
    pub fn with_config(
        command: WorkerCommand,
        workers: usize,
        config: RemoteConfig,
    ) -> std::io::Result<RemoteScheduler> {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            command,
            config,
            state: Mutex::new(CoordState {
                slots: Vec::new(),
                leases: HashMap::new(),
                retired_readers: Vec::new(),
                next_job: 0,
                next_generation: 0,
                backlog: 0,
                shutdown: false,
                abandoned: false,
                reaped: false,
                drained_clean: true,
            }),
            space: Condvar::new(),
            stopping: AtomicBool::new(false),
            stats: StatCounters::new(),
            hook: Mutex::new(None),
            queue_trace: trace::fresh_id(),
        });
        let mut spawn_error = None;
        {
            let mut st = shared.lock();
            for index in 0..workers {
                st.next_generation += 1;
                let generation = st.next_generation;
                match spawn_process(&shared, index, generation) {
                    Ok((child, stdin, pid, reader)) => st.slots.push(Slot {
                        generation,
                        child: Some(child),
                        stdin: Some(stdin),
                        pid,
                        ready: false,
                        exiting: false,
                        busy: None,
                        last_seen: Instant::now(),
                        queue: VecDeque::new(),
                        reader: Some(reader),
                    }),
                    Err(err) => {
                        spawn_error = Some(err);
                        st.slots.push(dead_slot(generation));
                    }
                }
            }
        }
        if shared.lock().slots.iter().all(|s| s.child.is_none()) {
            return Err(
                spawn_error.unwrap_or_else(|| std::io::Error::other("no worker process started"))
            );
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervise_loop(&shared))
        };
        Ok(RemoteScheduler {
            shared,
            supervisor: Mutex::new(Some(supervisor)),
        })
    }

    /// Submits a spec, blocking while the bounded queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Backpressure`] when the queue stays full past
    /// the configured deadline; [`SubmitError::Shutdown`] after
    /// shutdown began.
    pub fn submit(&self, spec: RemoteTaskSpec) -> Result<TaskHandle, SubmitError> {
        let name = spec.name.clone();
        let (report_tx, receiver) = bounded(1);
        let deadline = Instant::now() + self.shared.config.submit_deadline;
        let mut st = self.shared.lock();
        loop {
            if st.shutdown {
                return Err(SubmitError::Shutdown);
            }
            if st.backlog < self.shared.config.queue_capacity {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                observe::count("broker.remote_backpressure_timeouts", 1);
                return Err(SubmitError::Backpressure);
            }
            let (guard, _) = self
                .shared
                .space
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
        st.next_job += 1;
        let job_id = st.next_job;
        let trace_id = trace::fresh_id();
        trace::task_submit(trace_id);
        self.shared.stats.submitted.fetch_add(1, Ordering::SeqCst);
        observe::count("broker.remote_submitted", 1);
        let job = RemoteJob {
            spec,
            report_tx,
            reported: Arc::new(AtomicBool::new(false)),
            job_id,
            delivery: 1,
            lease_events: Vec::new(),
            first_enqueued: Instant::now(),
            trace_id,
        };
        enqueue_job(&self.shared, &mut st, job);
        pump(&self.shared, &mut st);
        Ok(TaskHandle { receiver, name })
    }

    /// Installs the lifecycle event hook (replacing any previous one).
    /// See [`RemoteEvent`] for the constraints hooks must observe.
    pub fn set_event_hook(&self, hook: impl Fn(&RemoteEvent) + Send + Sync + 'static) {
        *self.shared.hook.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::new(hook));
    }

    /// Gracefully drains: refuses new submits, waits (up to the drain
    /// deadline) for queued and in-flight work to finish — the
    /// supervisor keeps respawning and redelivering during the wait —
    /// then sends every worker `Drain`, closes its stdin, and reaps
    /// all child PIDs. Returns `true` when everything completed (no
    /// work was abandoned).
    pub fn shutdown(&self) -> bool {
        let mut st = self.shared.lock();
        if st.reaped {
            return st.drained_clean;
        }
        st.shutdown = true;
        let deadline = Instant::now() + self.shared.config.drain_deadline;
        while (st.backlog > 0 || !st.leases.is_empty()) && Instant::now() < deadline {
            let (guard, _) = self
                .shared
                .space
                .wait_timeout(st, Duration::from_millis(20))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
        let clean = st.backlog == 0 && st.leases.is_empty();
        st.drained_clean = clean;
        st.abandoned = true;
        discard_pending(&self.shared, &mut st);
        for slot in &mut st.slots {
            if let Some(stdin) = slot.stdin.as_mut() {
                let _ = stdin
                    .write_all(&Message::Drain.to_frame())
                    .and_then(|()| stdin.flush());
            }
            // Closing stdin makes even a worker that missed the Drain
            // frame exit on EOF.
            slot.stdin = None;
            slot.exiting = true;
        }
        drop(st);
        self.reap_children(Duration::from_secs(5));
        self.stop_supervisor();
        clean
    }

    /// Abandons immediately: discards queued jobs, drops in-flight
    /// leases (their handles synthesize "scheduler dropped task"
    /// reports), SIGKILLs every worker, and reaps all child PIDs.
    /// Returns how many queued jobs were discarded — the side-by-side
    /// contrast to the draining [`RemoteScheduler::shutdown`].
    pub fn shutdown_now(&self) -> u64 {
        let mut st = self.shared.lock();
        if st.reaped {
            return 0;
        }
        st.shutdown = true;
        st.abandoned = true;
        st.drained_clean = st.backlog == 0 && st.leases.is_empty();
        let discarded = discard_pending(&self.shared, &mut st);
        for slot in &mut st.slots {
            if let Some(child) = slot.child.as_mut() {
                let _ = child.kill();
            }
            slot.stdin = None;
            slot.exiting = true;
        }
        drop(st);
        self.shared.space.notify_all();
        self.reap_children(Duration::ZERO);
        self.stop_supervisor();
        discarded
    }

    /// Current counters.
    pub fn stats(&self) -> RemoteStats {
        let st = self.shared.lock();
        let s = &self.shared.stats;
        RemoteStats {
            workers: st.slots.iter().filter(|slot| slot.child.is_some()).count(),
            submitted: s.submitted.load(Ordering::SeqCst),
            completed: s.completed.load(Ordering::SeqCst),
            dropped: s.dropped.load(Ordering::SeqCst),
            dead_lettered: s.dead_lettered.load(Ordering::SeqCst),
            redelivered: s.redelivered.load(Ordering::SeqCst),
            respawns: s.respawns.load(Ordering::SeqCst),
            frame_errors: s.frame_errors.load(Ordering::SeqCst),
            chaos_kills: s.chaos_kills.load(Ordering::SeqCst),
            steals: s.steals.load(Ordering::SeqCst),
            backlog: st.backlog,
            in_flight: st.leases.len(),
        }
    }

    /// OS PIDs of the currently live worker processes (for tests that
    /// kill them or assert they were reaped).
    pub fn worker_pids(&self) -> Vec<u32> {
        let st = self.shared.lock();
        st.slots
            .iter()
            .filter(|s| s.child.is_some())
            .map(|s| s.pid)
            .collect()
    }

    /// Waits for every child PID to exit, force-killing any still
    /// alive after `grace`, then joins reader threads. Leaves no
    /// zombies behind.
    fn reap_children(&self, grace: Duration) {
        let (children, readers) = {
            let mut st = self.shared.lock();
            let children: Vec<Child> = st.slots.iter_mut().filter_map(|s| s.child.take()).collect();
            let mut readers: Vec<JoinHandle<()>> = st
                .slots
                .iter_mut()
                .filter_map(|s| s.reader.take())
                .collect();
            readers.append(&mut st.retired_readers);
            (children, readers)
        };
        for mut child in children {
            let deadline = Instant::now() + grace;
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() >= deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                    Err(_) => break,
                }
            }
        }
        for reader in readers {
            let _ = reader.join();
        }
        self.shared.lock().reaped = true;
        self.shared.space.notify_all();
    }

    fn stop_supervisor(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        let handle = self
            .supervisor
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for RemoteScheduler {
    fn drop(&mut self) {
        let reaped = self.shared.lock().reaped;
        if !reaped {
            self.shutdown();
        }
    }
}

impl fmt::Debug for RemoteScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteScheduler")
            .field("stats", &self.stats())
            .finish()
    }
}

fn dead_slot(generation: u64) -> Slot {
    Slot {
        generation,
        child: None,
        stdin: None,
        pid: 0,
        ready: false,
        exiting: false,
        busy: None,
        last_seen: Instant::now(),
        queue: VecDeque::new(),
        reader: None,
    }
}

fn emit(shared: &Shared, event: RemoteEvent) {
    let hook = shared
        .hook
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    if let Some(hook) = hook {
        hook(&event);
    }
}

fn spawn_process(
    shared: &Arc<Shared>,
    slot_idx: usize,
    generation: u64,
) -> std::io::Result<(Child, ChildStdin, u32, JoinHandle<()>)> {
    let mut child = shared.command.command().spawn()?;
    let stdin = child.stdin.take().expect("worker stdin is piped");
    let stdout = child.stdout.take().expect("worker stdout is piped");
    let pid = child.id();
    let reader = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || reader_loop(&shared, slot_idx, generation, stdout))
    };
    Ok((child, stdin, pid, reader))
}

/// Per-worker reader thread: pumps the worker's stdout through the
/// frame decoder until EOF or a hard decode error.
fn reader_loop(shared: &Arc<Shared>, slot_idx: usize, generation: u64, mut stdout: ChildStdout) {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 8192];
    loop {
        let n = match stdout.read(&mut buf) {
            Ok(0) | Err(_) => return, // EOF: supervisor reaps and respawns
            Ok(n) => n,
        };
        decoder.feed(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(None) => break,
                Ok(Some(payload)) => match Message::decode(&payload) {
                    Ok(message) => handle_message(shared, slot_idx, generation, message),
                    Err(err) => {
                        on_frame_error(shared, slot_idx, generation, &err.to_string());
                        return;
                    }
                },
                Err(err) => {
                    on_frame_error(shared, slot_idx, generation, &err.to_string());
                    return;
                }
            }
        }
    }
}

fn handle_message(shared: &Arc<Shared>, slot_idx: usize, generation: u64, message: Message) {
    match message {
        Message::Hello { protocol, pid } => {
            let mut st = shared.lock();
            if st.slots[slot_idx].generation != generation {
                return; // stale reader of a replaced worker
            }
            if protocol != PROTOCOL_VERSION {
                eprintln!(
                    "simart-tasks: worker pid {pid} speaks protocol {protocol}, \
                     coordinator speaks {PROTOCOL_VERSION}; dropping it"
                );
                let slot = &mut st.slots[slot_idx];
                slot.exiting = true; // reap without respawn: same binary would loop
                if let Some(child) = slot.child.as_mut() {
                    let _ = child.kill();
                }
                return;
            }
            let heartbeat_ms = (shared.config.supervisor.heartbeat.as_millis() as u64).max(1);
            let ack = Message::HelloAck {
                generation,
                heartbeat_ms,
            };
            let slot = &mut st.slots[slot_idx];
            slot.last_seen = Instant::now();
            let sent = match slot.stdin.as_mut() {
                Some(stdin) => stdin
                    .write_all(&ack.to_frame())
                    .and_then(|()| stdin.flush())
                    .is_ok(),
                None => false,
            };
            if sent {
                slot.ready = true;
                pump(shared, &mut st);
            }
        }
        Message::Heartbeat { .. } => {
            observe::count("broker.remote_heartbeats", 1);
            let mut st = shared.lock();
            if st.slots[slot_idx].generation == generation {
                st.slots[slot_idx].last_seen = Instant::now();
            }
        }
        Message::TaskResult {
            job,
            delivery,
            generation: reporter_gen,
            ok,
            output,
            error,
        } => {
            let mut st = shared.lock();
            // First report wins, whatever generation it came from: a
            // stale worker finishing after redelivery still resolves
            // the job; the duplicate later report finds no lease.
            if let Some(lease) = st.leases.remove(&job) {
                deliver_ack(
                    shared,
                    lease,
                    delivery as u32,
                    reporter_gen,
                    ok,
                    output,
                    error,
                );
            }
            if st.slots[slot_idx].generation == generation {
                if st.slots[slot_idx].busy == Some(job) {
                    st.slots[slot_idx].busy = None;
                }
                st.slots[slot_idx].last_seen = Instant::now();
                pump(shared, &mut st);
            }
            shared.space.notify_all();
        }
        Message::Bye { .. } => {
            let mut st = shared.lock();
            if st.slots[slot_idx].generation == generation {
                st.slots[slot_idx].exiting = true;
                st.slots[slot_idx].ready = false;
            }
        }
        // Coordinator-bound streams never carry these legitimately.
        Message::HelloAck { .. } | Message::Dispatch { .. } | Message::Drain => {}
    }
}

/// Accepted result → task report (first-report-wins).
fn deliver_ack(
    shared: &Arc<Shared>,
    lease: RemoteLease,
    delivery: u32,
    reporter_gen: u64,
    ok: bool,
    output: String,
    error: String,
) {
    let job = lease.job;
    observe::count("broker.remote_acks", 1);
    trace::remote_ack(job.trace_id);
    trace::task_finish(job.trace_id);
    emit(
        shared,
        RemoteEvent::Acked {
            task: job.spec.name.clone(),
            delivery,
            generation: reporter_gen,
        },
    );
    let report = TaskReport {
        name: job.spec.name.clone(),
        state: if ok {
            TaskState::Succeeded
        } else {
            TaskState::Failed
        },
        output: if ok { Some(output) } else { None },
        error: if ok { None } else { Some(error) },
        attempts: 1,
        duration: job.first_enqueued.elapsed(),
        detached: false,
        history: vec![AttemptRecord {
            index: job.delivery,
            disposition: if ok {
                AttemptDisposition::Succeeded
            } else {
                AttemptDisposition::Errored
            },
            delay_before: Duration::ZERO,
        }],
        redeliveries: job.delivery - 1,
        lease_events: job.lease_events,
    };
    if !job.reported.swap(true, Ordering::SeqCst) {
        let _ = job.report_tx.send(report);
        shared.stats.completed.fetch_add(1, Ordering::SeqCst);
    }
}

/// Satellite: a torn or corrupt frame must never wedge the
/// coordinator. Log it, kill + reap the worker, revoke its lease
/// (redelivering the task), and respawn — the pipe-level mirror of
/// the journal's torn-tail tolerance.
fn on_frame_error(shared: &Arc<Shared>, slot_idx: usize, generation: u64, why: &str) {
    shared.stats.frame_errors.fetch_add(1, Ordering::SeqCst);
    observe::count("broker.remote_frame_errors", 1);
    let mut st = shared.lock();
    if st.slots[slot_idx].generation != generation {
        return;
    }
    eprintln!(
        "simart-tasks: remote worker pid {} wrote a corrupt frame ({why}); \
         killing and respawning it",
        st.slots[slot_idx].pid
    );
    recycle_slot(shared, &mut st, slot_idx, "torn-frame");
    pump(shared, &mut st);
    shared.space.notify_all();
}

/// Kills, reaps, and (unless abandoned) respawns a slot's worker,
/// recovering any lease it held with the given cause.
fn recycle_slot(shared: &Arc<Shared>, st: &mut CoordState, slot_idx: usize, cause: &str) {
    if let Some(child) = st.slots[slot_idx].child.as_mut() {
        let _ = child.kill();
    }
    if let Some(mut child) = st.slots[slot_idx].child.take() {
        let _ = child.wait(); // immediate after SIGKILL; reaps the PID
    }
    st.slots[slot_idx].stdin = None;
    st.slots[slot_idx].ready = false;
    let busy = st.slots[slot_idx].busy.take();
    if let Some(job_id) = busy {
        if let Some(lease) = st.leases.remove(&job_id) {
            recover_lease(shared, st, lease, cause);
        }
    }
    if !st.abandoned {
        respawn_slot(shared, st, slot_idx);
    }
}

fn respawn_slot(shared: &Arc<Shared>, st: &mut CoordState, slot_idx: usize) {
    if let Some(old_reader) = st.slots[slot_idx].reader.take() {
        // May be the calling thread itself (frame-error path), so it
        // is joined later from the shutdown path, never here.
        st.retired_readers.push(old_reader);
    }
    st.next_generation += 1;
    let generation = st.next_generation;
    match spawn_process(shared, slot_idx, generation) {
        Ok((child, stdin, pid, reader)) => {
            let slot = &mut st.slots[slot_idx];
            slot.generation = generation;
            slot.child = Some(child);
            slot.stdin = Some(stdin);
            slot.pid = pid;
            slot.ready = false;
            slot.exiting = false;
            slot.busy = None;
            slot.last_seen = Instant::now();
            slot.reader = Some(reader);
            shared.stats.respawns.fetch_add(1, Ordering::SeqCst);
            observe::count("broker.remote_respawns", 1);
        }
        Err(err) => {
            eprintln!("simart-tasks: failed to respawn remote worker: {err}");
            st.slots[slot_idx].generation = generation;
        }
    }
}

/// Broker-contract lease recovery: record the `delivery:<n>:<cause>`
/// event, then redeliver (cap permitting) or dead-letter.
fn recover_lease(shared: &Arc<Shared>, st: &mut CoordState, mut lease: RemoteLease, cause: &str) {
    trace::lease_revoke(lease.job.trace_id);
    lease
        .job
        .lease_events
        .push(format!("delivery:{}:{}", lease.job.delivery, cause));
    let cap = shared.config.supervisor.max_redeliveries;
    let redeliveries_so_far = lease.job.delivery - 1;
    if redeliveries_so_far >= cap {
        dead_letter(shared, st, lease.job, cause);
        return;
    }
    shared.stats.redelivered.fetch_add(1, Ordering::SeqCst);
    observe::count("broker.remote_redelivered", 1);
    trace::task_requeue(lease.job.trace_id);
    emit(
        shared,
        RemoteEvent::Redelivered {
            task: lease.job.spec.name.clone(),
            delivery: lease.job.delivery,
            cause: cause.to_owned(),
        },
    );
    let mut job = lease.job;
    job.delivery += 1;
    enqueue_job(shared, st, job);
}

/// Terminal failure classification, mirroring the in-process broker's
/// dead-letter mapping: exhausted redeliveries quarantine, a dead
/// worker with no redelivery budget fails, an expired lease with no
/// budget times out.
fn dead_letter(shared: &Arc<Shared>, _st: &mut CoordState, job: RemoteJob, cause: &str) {
    let cap = shared.config.supervisor.max_redeliveries;
    let redeliveries = job.delivery - 1;
    let (state, error) = if redeliveries > 0 {
        (
            TaskState::Quarantined,
            format!(
                "task quarantined: redelivery cap ({cap}) exhausted after {} deliveries \
                 (last cause: {cause})",
                job.delivery
            ),
        )
    } else if cause == "lease-expired" {
        (
            TaskState::TimedOut,
            format!(
                "task lease expired (timeout {:?} + grace {:?}); no redeliveries allowed",
                job.spec.timeout, shared.config.supervisor.grace
            ),
        )
    } else if cause == "no-workers" {
        (
            TaskState::Failed,
            "no live worker processes remain; task cannot be delivered".to_owned(),
        )
    } else {
        (
            TaskState::Failed,
            format!(
                "worker process died holding the task lease ({cause}); no redeliveries allowed"
            ),
        )
    };
    observe::count("broker.remote_dead_letters", 1);
    trace::task_finish(job.trace_id);
    emit(
        shared,
        RemoteEvent::DeadLettered {
            task: job.spec.name.clone(),
            cause: cause.to_owned(),
        },
    );
    let report = TaskReport {
        name: job.spec.name.clone(),
        state,
        output: None,
        error: Some(error),
        attempts: 0,
        duration: job.first_enqueued.elapsed(),
        detached: false,
        history: Vec::new(),
        redeliveries,
        lease_events: job.lease_events,
    };
    if !job.reported.swap(true, Ordering::SeqCst) {
        let _ = job.report_tx.send(report);
    }
    shared.stats.dead_lettered.fetch_add(1, Ordering::SeqCst);
}

/// Queues a job on the live slot with the shortest queue.
fn enqueue_job(shared: &Arc<Shared>, st: &mut CoordState, job: RemoteJob) {
    trace::enqueue(shared.queue_trace);
    let target = st
        .slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.child.is_some() && !s.exiting)
        .min_by_key(|(_, s)| s.queue.len())
        .map(|(i, _)| i)
        .unwrap_or(0);
    st.slots[target].queue.push_back(job);
    st.backlog += 1;
}

/// Gives every idle, ready worker a job — from its own queue first,
/// else stolen from the longest peer queue.
fn pump(shared: &Arc<Shared>, st: &mut CoordState) {
    for i in 0..st.slots.len() {
        loop {
            let slot = &st.slots[i];
            if slot.child.is_none() || !slot.ready || slot.exiting || slot.busy.is_some() {
                break;
            }
            let job = match st.slots[i].queue.pop_front() {
                Some(job) => job,
                None => {
                    let victim = st
                        .slots
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .max_by_key(|(_, s)| s.queue.len())
                        .filter(|(_, s)| !s.queue.is_empty())
                        .map(|(j, _)| j);
                    match victim {
                        Some(j) => {
                            shared.stats.steals.fetch_add(1, Ordering::SeqCst);
                            observe::count("broker.remote_steals", 1);
                            match st.slots[j].queue.pop_back() {
                                Some(job) => job,
                                None => break,
                            }
                        }
                        None => break,
                    }
                }
            };
            st.backlog -= 1;
            trace::dequeue(shared.queue_trace);
            if !dispatch(shared, st, i, job) {
                break;
            }
        }
    }
}

/// Writes a dispatch frame to slot `i` and registers the lease.
/// Returns `false` when the worker's pipe was broken (the job is
/// requeued and the worker left for the supervisor to recycle).
fn dispatch(shared: &Arc<Shared>, st: &mut CoordState, i: usize, job: RemoteJob) -> bool {
    let generation = st.slots[i].generation;
    let pid = st.slots[i].pid;
    let message = Message::Dispatch {
        job: job.job_id,
        delivery: u64::from(job.delivery),
        generation,
        name: job.spec.name.clone(),
        kind: job.spec.kind.clone(),
        payload: job.spec.payload.clone(),
        timeout_ms: job.spec.timeout.map_or(0, |t| t.as_millis() as u64),
    };
    let written = match st.slots[i].stdin.as_mut() {
        Some(stdin) => stdin
            .write_all(&message.to_frame())
            .and_then(|()| stdin.flush())
            .is_ok(),
        None => false,
    };
    if !written {
        st.slots[i].queue.push_front(job);
        st.backlog += 1;
        if let Some(child) = st.slots[i].child.as_mut() {
            let _ = child.kill(); // supervisor reaps and respawns
        }
        return false;
    }
    observe::count("broker.remote_dispatches", 1);
    observe::observe_us(
        "broker.remote_queue_latency_us",
        job.first_enqueued.elapsed().as_micros() as u64,
    );
    trace::lease_grant(job.trace_id);
    trace::remote_dispatch(job.trace_id);
    emit(
        shared,
        RemoteEvent::Dispatched {
            task: job.spec.name.clone(),
            delivery: job.delivery,
            generation,
            pid,
        },
    );
    let chaos_kill = shared.config.fault.as_ref().is_some_and(|injector| {
        matches!(
            injector.take_worker_fault(&job.spec.name, job.delivery),
            Some(Fault::WorkerKill)
        )
    });
    let deadline = job
        .spec
        .timeout
        .map(|t| Instant::now() + t + shared.config.supervisor.grace);
    let job_id = job.job_id;
    st.slots[i].busy = Some(job_id);
    st.leases.insert(job_id, RemoteLease { job, deadline });
    if chaos_kill {
        shared.stats.chaos_kills.fetch_add(1, Ordering::SeqCst);
        observe::count("broker.remote_kills", 1);
        if let Some(child) = st.slots[i].child.as_mut() {
            let _ = child.kill(); // a real SIGKILL to a real PID
        }
    }
    true
}

/// Drops every queued job and live lease without a report (handles
/// synthesize "scheduler dropped task"). Returns the queued count.
fn discard_pending(shared: &Arc<Shared>, st: &mut CoordState) -> u64 {
    let mut discarded = 0u64;
    for slot in &mut st.slots {
        while let Some(job) = slot.queue.pop_front() {
            discarded += 1;
            drop(job);
        }
    }
    st.backlog = 0;
    for (_, lease) in st.leases.drain() {
        drop(lease);
    }
    shared.stats.dropped.fetch_add(discarded, Ordering::SeqCst);
    discarded
}

/// The supervisor thread: ticks on the configured heartbeat, reaping
/// dead workers, recycling wedged ones, expiring leases, and keeping
/// the dispatch pump primed — the process-level twin of the broker's
/// supervisor.
fn supervise_loop(shared: &Arc<Shared>) {
    let heartbeat = shared
        .config
        .supervisor
        .heartbeat
        .max(Duration::from_millis(1));
    while !shared.stopping.load(Ordering::SeqCst) {
        std::thread::sleep(heartbeat);
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let _span = observe::span(|| "remote.supervise_tick".to_owned());
        let mut st = shared.lock();
        if st.reaped {
            return;
        }
        tick(shared, &mut st);
        drop(st);
        shared.space.notify_all();
    }
}

fn tick(shared: &Arc<Shared>, st: &mut CoordState) {
    let now = Instant::now();
    let stale_after = shared.config.supervisor.remote_stale_after();
    for i in 0..st.slots.len() {
        let exited = match st.slots[i].child.as_mut() {
            Some(child) => matches!(child.try_wait(), Ok(Some(_))),
            None => false,
        };
        if exited {
            // try_wait() already reaped the PID; drop the handle.
            let was_exiting = st.slots[i].exiting;
            st.slots[i].child = None;
            st.slots[i].stdin = None;
            st.slots[i].ready = false;
            let busy = st.slots[i].busy.take();
            if let Some(job_id) = busy {
                if let Some(lease) = st.leases.remove(&job_id) {
                    recover_lease(shared, st, lease, "worker-died");
                }
            }
            if !was_exiting && !st.abandoned {
                respawn_slot(shared, st, i);
            }
            continue;
        }
        let slot = &st.slots[i];
        if slot.child.is_none() || !slot.ready || slot.exiting {
            continue;
        }
        let lease_expired = slot.busy.is_some_and(|job_id| {
            st.leases
                .get(&job_id)
                .and_then(|lease| lease.deadline)
                .is_some_and(|deadline| now >= deadline)
        });
        let heartbeat_lost = now.duration_since(slot.last_seen) >= stale_after;
        if lease_expired {
            recycle_slot(shared, st, i, "lease-expired");
        } else if heartbeat_lost {
            recycle_slot(shared, st, i, "heartbeat-lost");
        }
    }
    if !st.abandoned && st.backlog > 0 && st.slots.iter().all(|s| s.child.is_none()) {
        // Every spawn has failed: fail queued work fast instead of
        // letting submitters hang forever.
        let mut stranded = Vec::new();
        for slot in &mut st.slots {
            while let Some(job) = slot.queue.pop_front() {
                stranded.push(job);
            }
        }
        st.backlog = 0;
        for job in stranded {
            dead_letter(shared, st, job, "no-workers");
        }
    }
    pump(shared, st);
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// A dispatched job as seen by a worker-side handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerJob {
    /// Coordinator-unique job id.
    pub job: u64,
    /// Task name.
    pub name: String,
    /// Handler kind.
    pub kind: String,
    /// Opaque payload from the spec.
    pub payload: String,
    /// 1-based delivery number (`> 1` means this is a redelivery).
    pub delivery: u32,
    /// Generation this worker process was assigned at handshake.
    pub generation: u64,
}

type HandlerFn = Box<dyn Fn(&WorkerJob) -> Result<String, String> + Send + Sync>;

/// Maps handler kinds to worker-side handler functions.
#[derive(Default)]
pub struct HandlerRegistry {
    handlers: HashMap<String, HandlerFn>,
}

impl HandlerRegistry {
    /// An empty registry.
    pub fn new() -> HandlerRegistry {
        HandlerRegistry::default()
    }

    /// Registers the handler for `kind` (replacing any previous one).
    pub fn register(
        &mut self,
        kind: impl Into<String>,
        handler: impl Fn(&WorkerJob) -> Result<String, String> + Send + Sync + 'static,
    ) {
        self.handlers.insert(kind.into(), Box::new(handler));
    }

    /// Runs the matching handler, containing panics as errors. Public
    /// so embedders can exercise their registries without spawning a
    /// worker process; [`worker_main`] calls it per dispatch.
    pub fn run(&self, job: &WorkerJob) -> Result<String, String> {
        let handler = self
            .handlers
            .get(&job.kind)
            .ok_or_else(|| format!("worker has no handler for kind `{}`", job.kind))?;
        match catch_unwind(AssertUnwindSafe(|| handler(job))) {
            Ok(result) => result,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_owned());
                Err(format!("handler panicked: {message}"))
            }
        }
    }
}

impl fmt::Debug for HandlerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandlerRegistry")
            .field("kinds", &self.handlers.keys().collect::<Vec<_>>())
            .finish()
    }
}

struct WireReader {
    decoder: FrameDecoder,
    buf: [u8; 8192],
}

impl WireReader {
    fn new() -> WireReader {
        WireReader {
            decoder: FrameDecoder::new(),
            buf: [0u8; 8192],
        }
    }

    /// `Ok(None)` on EOF, `Err(())` on a corrupt stream.
    fn next(&mut self, input: &mut impl Read) -> Result<Option<Message>, ()> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => return Message::decode(&payload).map(Some).map_err(|_| ()),
                Err(_) => return Err(()),
                Ok(None) => {}
            }
            match input.read(&mut self.buf) {
                Ok(0) => return Ok(None),
                Ok(n) => self.decoder.feed(&self.buf[..n]),
                Err(_) => return Err(()),
            }
        }
    }
}

fn send_frame(stdout: &Mutex<std::io::Stdout>, message: &Message) -> std::io::Result<()> {
    let mut out = stdout.lock().unwrap_or_else(|p| p.into_inner());
    out.write_all(&message.to_frame())?;
    out.flush()
}

/// Runs the worker side of the protocol on this process's
/// stdin/stdout until the coordinator drains it or goes away.
/// Returns the process exit code: `0` for a graceful end (drain or
/// coordinator EOF), non-zero for a corrupt stream or handshake
/// failure.
///
/// The worker says [`Message::Hello`], waits for the
/// [`Message::HelloAck`] carrying its generation and heartbeat
/// cadence, then loops: heartbeats from a background thread, one
/// [`Message::TaskResult`] per [`Message::Dispatch`] (handler panics
/// are contained and reported as errors), and a [`Message::Bye`] in
/// answer to [`Message::Drain`].
///
/// Nothing else in the process may write to stdout — the byte stream
/// *is* the protocol.
pub fn worker_main(registry: &HandlerRegistry) -> i32 {
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    let pid = u64::from(std::process::id());
    if send_frame(
        &stdout,
        &Message::Hello {
            protocol: PROTOCOL_VERSION,
            pid,
        },
    )
    .is_err()
    {
        return 1;
    }
    let mut stdin = std::io::stdin();
    let mut reader = WireReader::new();
    let (generation, heartbeat_ms) = match reader.next(&mut stdin) {
        Ok(Some(Message::HelloAck {
            generation,
            heartbeat_ms,
        })) => (generation, heartbeat_ms),
        Ok(None) => return 0, // coordinator vanished before the handshake
        _ => return 2,
    };
    let busy = Arc::new(AtomicU64::new(0));
    {
        let stdout = Arc::clone(&stdout);
        let busy = Arc::clone(&busy);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(heartbeat_ms.max(1)));
            let beat = Message::Heartbeat {
                pid,
                busy: busy.load(Ordering::SeqCst),
            };
            if send_frame(&stdout, &beat).is_err() {
                return; // coordinator gone; main loop sees EOF
            }
        });
    }
    loop {
        match reader.next(&mut stdin) {
            Ok(None) => return 0,
            Err(()) => return 2,
            Ok(Some(Message::Dispatch {
                job,
                delivery,
                name,
                kind,
                payload,
                ..
            })) => {
                busy.store(job, Ordering::SeqCst);
                let work = WorkerJob {
                    job,
                    name,
                    kind,
                    payload,
                    delivery: delivery as u32,
                    generation,
                };
                let result = registry.run(&work);
                busy.store(0, Ordering::SeqCst);
                let (ok, output, error) = match result {
                    Ok(output) => (true, output, String::new()),
                    Err(error) => (false, String::new(), error),
                };
                let reply = Message::TaskResult {
                    job,
                    delivery,
                    generation,
                    ok,
                    output,
                    error,
                };
                if send_frame(&stdout, &reply).is_err() {
                    return 1;
                }
            }
            Ok(Some(Message::Drain)) => {
                let _ = send_frame(&stdout, &Message::Bye { pid });
                return 0;
            }
            Ok(Some(_)) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_sets_fields() {
        let spec = RemoteTaskSpec::new("run-1", "campaign-boot", "{\"p\":1}")
            .timeout(Duration::from_secs(3));
        assert_eq!(spec.name, "run-1");
        assert_eq!(spec.kind, "campaign-boot");
        assert_eq!(spec.timeout, Some(Duration::from_secs(3)));
    }

    #[test]
    fn submit_error_messages() {
        assert!(SubmitError::Backpressure
            .to_string()
            .contains("backpressure"));
        assert!(SubmitError::Shutdown.to_string().contains("shut down"));
        assert_ne!(SubmitError::Backpressure, SubmitError::Shutdown);
    }

    #[test]
    fn config_defaults_are_sane() {
        let config = RemoteConfig::default();
        assert!(config.queue_capacity > 0);
        assert!(config.submit_deadline > Duration::ZERO);
        assert!(config.drain_deadline > Duration::ZERO);
        assert!(config.fault.is_none());
        assert!(format!("{config:?}").contains("queue_capacity"));
    }

    #[test]
    fn registry_contains_panics_and_unknown_kinds() {
        let mut registry = HandlerRegistry::new();
        registry.register("boom", |_| panic!("kapow"));
        registry.register("echo", |job: &WorkerJob| Ok(job.payload.clone()));
        let job = |kind: &str| WorkerJob {
            job: 1,
            name: "t".to_owned(),
            kind: kind.to_owned(),
            payload: "data".to_owned(),
            delivery: 1,
            generation: 1,
        };
        assert_eq!(registry.run(&job("echo")).unwrap(), "data");
        assert!(registry.run(&job("boom")).unwrap_err().contains("kapow"));
        assert!(registry
            .run(&job("mystery"))
            .unwrap_err()
            .contains("no handler"));
    }

    #[test]
    fn spawn_failure_of_all_workers_errors() {
        let command = WorkerCommand::new("/nonexistent/simart-worker-binary");
        assert!(RemoteScheduler::new(command, 2).is_err());
    }

    #[test]
    fn worker_command_builder_accumulates() {
        let command = WorkerCommand::new("prog").arg("worker").env("K", "V");
        assert_eq!(command.args, vec!["worker".to_owned()]);
        assert_eq!(command.envs, vec![("K".to_owned(), "V".to_owned())]);
    }
}
