//! Crash-isolated multi-process task execution: the remote scheduler.
//!
//! [`RemoteScheduler`] is the process-level sibling of
//! [`BrokerScheduler`](crate::BrokerScheduler). Where the broker runs
//! worker *threads* in the coordinator's address space, the remote
//! scheduler spawns worker *processes* (the hidden `simart worker`
//! subcommand) and speaks the CRC-framed wire protocol of
//! [`crate::wire`] over a [`crate::transport`] byte stream per worker
//! — stdin/stdout pipes by default, or loopback TCP with
//! session-resume reconnects ([`TransportKind::Tcp`]). A segfaulting
//! or SIGKILLed simulation can therefore never take the coordinator
//! down — the deployment shape of the paper's Celery workers.
//!
//! Over TCP the *connection* can die while the *process* lives. The
//! Hello handshake carries a session token; a worker that loses its
//! connection redials with capped exponential backoff and resumes its
//! session. On resume the coordinator reconciles in-flight work: the
//! lease it granted stays granted (the worker may still be computing),
//! an unsent result is re-sent by the worker and deduplicated by
//! first-report-wins, and a dispatch frame lost in flight resolves
//! through ordinary lease expiry and redelivery. When *no* worker is
//! reachable past [`RemoteConfig::unreachable_deadline`] while work is
//! pending, the coordinator fails that work loudly instead of hanging.
//!
//! The delivery contract is the broker's supervision contract,
//! verbatim:
//!
//! * every dispatched job holds a *lease* (task timeout + grace);
//! * a worker whose PID dies, whose heartbeats stop, or whose lease
//!   expires is killed and respawned with a bumped generation;
//! * the job is re-delivered up to
//!   [`SupervisorConfig::max_redeliveries`] times, with
//!   first-report-wins dedup, and dead-lettered as
//!   [`TaskState::Quarantined`] once the cap is exhausted;
//! * lease history rides along in the report as
//!   `"delivery:<n>:<cause>"` events.
//!
//! On top of that contract: bounded-queue backpressure on submit
//! (blocking with a deadline, [`SubmitError`] on shutdown) and
//! work-stealing between idle workers. Chaos is literal here — a
//! [`FaultInjector`] with a kill rate makes the coordinator SIGKILL
//! real worker PIDs at dispatch time.
//!
//! Because a process boundary cannot ship closures, remote tasks are
//! [`RemoteTaskSpec`]s: a handler *kind* resolved by the worker's
//! [`HandlerRegistry`] plus an opaque string payload. The worker side
//! of the protocol is [`worker_main`].

use crate::fault::{Fault, FaultInjector};
use crate::retry::RetryPolicy;
use crate::supervise::SupervisorConfig;
use crate::task::{AttemptDisposition, AttemptRecord, TaskHandle, TaskReport, TaskState};
use crate::trace;
use crate::transport::{
    self, ChaosReader, ChaosWriter, Duplex, Transport, TransportKind, WORKER_SESSION_ENV,
};
use crate::wire::{FrameDecoder, Message, PROTOCOL_VERSION};
use crossbeam::channel::{bounded, Sender};
use simart_observe as observe;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a worker process is launched. The program must run
/// [`worker_main`] and speak the wire protocol on stdin/stdout
/// (stderr is inherited, so worker logs land in the coordinator's
/// stderr).
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A command launching `program` with no arguments.
    pub fn new(program: impl Into<PathBuf>) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
        }
    }

    /// Appends a command-line argument.
    pub fn arg(mut self, arg: impl Into<String>) -> WorkerCommand {
        self.args.push(arg.into());
        self
    }

    /// Sets an environment variable for the worker process.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> WorkerCommand {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// Spawns the worker with its stdin/stdout piped to the
    /// coordinator (the pipe transport).
    pub(crate) fn spawn_piped(&self) -> std::io::Result<Child> {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        for (key, value) in &self.envs {
            cmd.env(key, value);
        }
        cmd.spawn()
    }

    /// Spawns the worker pointed at a TCP coordinator: `--connect
    /// ADDR` is appended and the session token rides in
    /// [`WORKER_SESSION_ENV`]. Stdio is left alone — the socket is
    /// the protocol, stdout is free for logs.
    pub(crate) fn spawn_connected(&self, addr: &str, session: u64) -> std::io::Result<Child> {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args)
            .arg("--connect")
            .arg(addr)
            .env(WORKER_SESSION_ENV, session.to_string())
            .stdin(Stdio::null());
        for (key, value) in &self.envs {
            cmd.env(key, value);
        }
        cmd.spawn()
    }
}

/// Tuning for a [`RemoteScheduler`].
#[derive(Clone)]
pub struct RemoteConfig {
    /// The broker supervision contract: heartbeat cadence, lease
    /// grace, redelivery cap. `max_detached` is unused — remote
    /// workers are killed, never detached.
    pub supervisor: SupervisorConfig,
    /// Bound on queued (not yet dispatched) jobs; submits beyond it
    /// block until space frees or `submit_deadline` passes.
    pub queue_capacity: usize,
    /// How long a backpressured submit may block before returning
    /// [`SubmitError::Backpressure`].
    pub submit_deadline: Duration,
    /// How long a draining shutdown waits for in-flight and queued
    /// work before abandoning the remainder.
    pub drain_deadline: Duration,
    /// Chaos injector consulted once per dispatch; a
    /// [`Fault::WorkerKill`] draw SIGKILLs the worker's real PID.
    /// With network-fault rates configured (and the TCP transport),
    /// worker connections are additionally wrapped in
    /// [`ChaosWriter`]/[`ChaosReader`].
    pub fault: Option<Arc<FaultInjector>>,
    /// Which byte stream workers speak the wire protocol over.
    pub transport: TransportKind,
    /// TCP only: how long the coordinator tolerates queued or
    /// in-flight work with *no* reachable worker before failing that
    /// work loudly (`workers-unreachable`) instead of hanging.
    pub unreachable_deadline: Duration,
}

impl Default for RemoteConfig {
    fn default() -> RemoteConfig {
        RemoteConfig {
            supervisor: SupervisorConfig::default(),
            queue_capacity: 256,
            submit_deadline: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(60),
            fault: None,
            transport: TransportKind::Pipe,
            unreachable_deadline: Duration::from_secs(30),
        }
    }
}

impl fmt::Debug for RemoteConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteConfig")
            .field("supervisor", &self.supervisor)
            .field("queue_capacity", &self.queue_capacity)
            .field("submit_deadline", &self.submit_deadline)
            .field("drain_deadline", &self.drain_deadline)
            .field("fault", &self.fault.is_some())
            .field("transport", &self.transport)
            .field("unreachable_deadline", &self.unreachable_deadline)
            .finish()
    }
}

/// A unit of work submittable across the process boundary: a handler
/// `kind` (resolved in the worker's [`HandlerRegistry`]) plus an
/// opaque payload string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteTaskSpec {
    /// Task name, for reports and provenance.
    pub name: String,
    /// Handler kind the worker resolves.
    pub kind: String,
    /// Opaque serialized input handed to the handler.
    pub payload: String,
    /// Wall-clock timeout enforced by the coordinator's lease (the
    /// worker is SIGKILLed once timeout + grace passes).
    pub timeout: Option<Duration>,
}

impl RemoteTaskSpec {
    /// Creates a spec with no timeout.
    pub fn new(
        name: impl Into<String>,
        kind: impl Into<String>,
        payload: impl Into<String>,
    ) -> RemoteTaskSpec {
        RemoteTaskSpec {
            name: name.into(),
            kind: kind.into(),
            payload: payload.into(),
            timeout: None,
        }
    }

    /// Sets the lease-enforced timeout.
    pub fn timeout(mut self, timeout: Duration) -> RemoteTaskSpec {
        self.timeout = Some(timeout);
        self
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue stayed full past the submit deadline.
    Backpressure,
    /// The scheduler is shutting down and accepts no new work.
    Shutdown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Backpressure => {
                f.write_str("remote queue full: backpressure deadline exceeded")
            }
            SubmitError::Shutdown => f.write_str("remote scheduler is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Lifecycle notifications for dispatch provenance (consumed by the
/// experiment layer to journal `remote-dispatch`/`remote-ack` events
/// onto runs). Hooks run on coordinator threads while internal state
/// is locked: keep them quick and never call back into the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteEvent {
    /// A job was written to a worker's pipe.
    Dispatched {
        /// Task name.
        task: String,
        /// 1-based delivery number.
        delivery: u32,
        /// Generation of the worker it went to.
        generation: u64,
        /// The worker's OS PID.
        pid: u32,
    },
    /// A worker's result was accepted (first report wins).
    Acked {
        /// Task name.
        task: String,
        /// Delivery number that reported.
        delivery: u32,
        /// Generation that reported.
        generation: u64,
    },
    /// A recovered lease was queued for another delivery.
    Redelivered {
        /// Task name.
        task: String,
        /// The delivery whose lease was revoked.
        delivery: u32,
        /// Revocation cause (`worker-died`, `heartbeat-lost`,
        /// `lease-expired`, `torn-frame`, `dispatch-lost`).
        cause: String,
    },
    /// The task was dead-lettered (cap exhausted or unrecoverable).
    DeadLettered {
        /// Task name.
        task: String,
        /// Final revocation cause.
        cause: String,
    },
    /// A worker session reconnected over a fresh TCP connection while
    /// holding this task's lease; the coordinator resumed the session
    /// and kept the lease (emitted once per in-flight task per
    /// reconnect, for `remote-reconnect:<session>:g<gen>` provenance).
    Reconnected {
        /// Task whose lease survived the reconnect.
        task: String,
        /// Session token that resumed.
        session: u64,
        /// Generation of the resuming worker.
        generation: u64,
    },
}

/// Counters snapshot from [`RemoteScheduler::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteStats {
    /// Live worker slots.
    pub workers: usize,
    /// Jobs accepted by `submit`.
    pub submitted: u64,
    /// Results delivered to handles.
    pub completed: u64,
    /// Jobs discarded at shutdown without a report.
    pub dropped: u64,
    /// Jobs dead-lettered (quarantined / failed / timed out by the
    /// supervisor).
    pub dead_lettered: u64,
    /// Lease recoveries that led to another delivery.
    pub redelivered: u64,
    /// Worker processes respawned after death or a wedge.
    pub respawns: u64,
    /// Hard frame/decode errors on worker pipes.
    pub frame_errors: u64,
    /// Real SIGKILLs sent by the chaos injector.
    pub chaos_kills: u64,
    /// Jobs stolen from a busy worker's queue by an idle one.
    pub steals: u64,
    /// TCP sessions that reconnected and resumed after losing their
    /// connection.
    pub reconnects: u64,
    /// Worker connections lost while the process stayed alive
    /// (partitions, resets, broken dispatch writes).
    pub partitions: u64,
    /// In-flight leases reconciled (kept granted) across a session
    /// resume.
    pub resume_reconciled: u64,
    /// Jobs queued but not yet dispatched.
    pub backlog: usize,
    /// Jobs dispatched and awaiting a result (live leases).
    pub in_flight: usize,
}

struct StatCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    dropped: AtomicU64,
    dead_lettered: AtomicU64,
    redelivered: AtomicU64,
    respawns: AtomicU64,
    frame_errors: AtomicU64,
    chaos_kills: AtomicU64,
    steals: AtomicU64,
    reconnects: AtomicU64,
    partitions: AtomicU64,
    resume_reconciled: AtomicU64,
}

impl StatCounters {
    fn new() -> StatCounters {
        StatCounters {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            dead_lettered: AtomicU64::new(0),
            redelivered: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            frame_errors: AtomicU64::new(0),
            chaos_kills: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            partitions: AtomicU64::new(0),
            resume_reconciled: AtomicU64::new(0),
        }
    }
}

type EventHook = Arc<dyn Fn(&RemoteEvent) + Send + Sync>;

struct RemoteJob {
    spec: RemoteTaskSpec,
    report_tx: Sender<TaskReport>,
    reported: Arc<AtomicBool>,
    job_id: u64,
    /// 1-based delivery number (redeliveries = delivery - 1).
    delivery: u32,
    lease_events: Vec<String>,
    first_enqueued: Instant,
    trace_id: u64,
}

struct RemoteLease {
    job: RemoteJob,
    deadline: Option<Instant>,
    /// When the dispatch frame was written, for the lost-dispatch
    /// reconciliation in the heartbeat handler.
    granted: Instant,
}

struct Slot {
    generation: u64,
    child: Option<Child>,
    /// Writer half of the worker's connection (`None` while a TCP
    /// worker is between connections).
    writer: Option<Box<dyn Write + Send>>,
    pid: u32,
    /// Handshake complete (Hello seen, HelloAck sent).
    ready: bool,
    /// Drain sent or Bye received: reap without respawn.
    exiting: bool,
    busy: Option<u64>,
    last_seen: Instant,
    queue: VecDeque<RemoteJob>,
    reader: Option<JoinHandle<()>>,
    /// Session token minted at spawn; a reconnecting TCP worker
    /// presents it in its Hello to resume this slot.
    session: u64,
    /// Trace object for the session's reconnect barrier edges.
    session_trace: u64,
    /// Monotonic id of the currently attached connection (`0` before
    /// the first attach); stale readers carry an older epoch.
    conn_epoch: u64,
    /// A connection has been attached at least once — the next attach
    /// is a *resume*, not the initial join.
    had_conn: bool,
    /// Lifetime chaos-frame counter for this session, shared with the
    /// [`ChaosWriter`] of every connection so reconnects continue the
    /// session's fault stream instead of replaying frame 0.
    net_frames: Arc<AtomicU64>,
}

struct CoordState {
    slots: Vec<Slot>,
    leases: HashMap<u64, RemoteLease>,
    retired_readers: Vec<JoinHandle<()>>,
    next_job: u64,
    next_generation: u64,
    next_session: u64,
    next_epoch: u64,
    /// When pending work first found no reachable worker (drives the
    /// loud `workers-unreachable` degradation).
    unreachable_since: Option<Instant>,
    /// Queued-but-undispatched jobs across all slot queues.
    backlog: usize,
    /// No new submits accepted.
    shutdown: bool,
    /// No more respawns (shutdown is reaping).
    abandoned: bool,
    /// Children reaped and threads joined; terminal.
    reaped: bool,
    drained_clean: bool,
}

struct Shared {
    command: WorkerCommand,
    config: RemoteConfig,
    transport: Box<dyn Transport>,
    state: Mutex<CoordState>,
    /// Signalled when queue space frees, leases resolve, or shutdown
    /// progresses — submitters and the draining shutdown wait here.
    space: Condvar,
    stopping: AtomicBool,
    stats: StatCounters,
    hook: Mutex<Option<EventHook>>,
    queue_trace: u64,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, CoordState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Process-level scheduler: spawns crash-isolated worker processes and
/// delivers [`RemoteTaskSpec`]s to them over the wire protocol under
/// the broker's lease/supervision contract. See the module docs.
pub struct RemoteScheduler {
    shared: Arc<Shared>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
}

impl RemoteScheduler {
    /// Spawns `workers` worker processes with default configuration.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure if no worker process could be
    /// started at all.
    pub fn new(command: WorkerCommand, workers: usize) -> std::io::Result<RemoteScheduler> {
        RemoteScheduler::with_config(command, workers, RemoteConfig::default())
    }

    /// Spawns `workers` worker processes under `config`.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure if no worker process could be
    /// started at all.
    pub fn with_config(
        command: WorkerCommand,
        workers: usize,
        config: RemoteConfig,
    ) -> std::io::Result<RemoteScheduler> {
        let workers = workers.max(1);
        let transport = transport::make_transport(config.transport)?;
        let shared = Arc::new(Shared {
            command,
            config,
            transport,
            state: Mutex::new(CoordState {
                slots: Vec::new(),
                leases: HashMap::new(),
                retired_readers: Vec::new(),
                next_job: 0,
                next_generation: 0,
                next_session: 0,
                next_epoch: 0,
                unreachable_since: None,
                backlog: 0,
                shutdown: false,
                abandoned: false,
                reaped: false,
                drained_clean: true,
            }),
            space: Condvar::new(),
            stopping: AtomicBool::new(false),
            stats: StatCounters::new(),
            hook: Mutex::new(None),
            queue_trace: trace::fresh_id(),
        });
        let mut spawn_error = None;
        {
            let mut st = shared.lock();
            for index in 0..workers {
                st.next_generation += 1;
                let generation = st.next_generation;
                match spawn_worker(&shared, &mut st, index, generation) {
                    Ok(slot) => st.slots.push(slot),
                    Err(err) => {
                        spawn_error = Some(err);
                        st.slots.push(dead_slot(generation));
                    }
                }
            }
        }
        if shared.lock().slots.iter().all(|s| s.child.is_none()) {
            shared.transport.close();
            return Err(
                spawn_error.unwrap_or_else(|| std::io::Error::other("no worker process started"))
            );
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervise_loop(&shared))
        };
        let acceptor = if shared.transport.joins() {
            let shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || accept_loop(&shared)))
        } else {
            None
        };
        Ok(RemoteScheduler {
            shared,
            supervisor: Mutex::new(Some(supervisor)),
            acceptor: Mutex::new(acceptor),
        })
    }

    /// Submits a spec, blocking while the bounded queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Backpressure`] when the queue stays full past
    /// the configured deadline; [`SubmitError::Shutdown`] after
    /// shutdown began.
    pub fn submit(&self, spec: RemoteTaskSpec) -> Result<TaskHandle, SubmitError> {
        let name = spec.name.clone();
        let (report_tx, receiver) = bounded(1);
        let deadline = Instant::now() + self.shared.config.submit_deadline;
        let mut st = self.shared.lock();
        loop {
            if st.shutdown {
                return Err(SubmitError::Shutdown);
            }
            if st.backlog < self.shared.config.queue_capacity {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                observe::count("broker.remote_backpressure_timeouts", 1);
                return Err(SubmitError::Backpressure);
            }
            let (guard, _) = self
                .shared
                .space
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
        st.next_job += 1;
        let job_id = st.next_job;
        let trace_id = trace::fresh_id();
        trace::task_submit(trace_id);
        self.shared.stats.submitted.fetch_add(1, Ordering::SeqCst);
        observe::count("broker.remote_submitted", 1);
        let job = RemoteJob {
            spec,
            report_tx,
            reported: Arc::new(AtomicBool::new(false)),
            job_id,
            delivery: 1,
            lease_events: Vec::new(),
            first_enqueued: Instant::now(),
            trace_id,
        };
        enqueue_job(&self.shared, &mut st, job);
        pump(&self.shared, &mut st);
        Ok(TaskHandle { receiver, name })
    }

    /// Installs the lifecycle event hook (replacing any previous one).
    /// See [`RemoteEvent`] for the constraints hooks must observe.
    pub fn set_event_hook(&self, hook: impl Fn(&RemoteEvent) + Send + Sync + 'static) {
        *self.shared.hook.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::new(hook));
    }

    /// Gracefully drains: refuses new submits, waits (up to the drain
    /// deadline) for queued and in-flight work to finish — the
    /// supervisor keeps respawning and redelivering during the wait —
    /// then sends every worker `Drain`, closes its stdin, and reaps
    /// all child PIDs. Returns `true` when everything completed (no
    /// work was abandoned).
    pub fn shutdown(&self) -> bool {
        let mut st = self.shared.lock();
        if st.reaped {
            return st.drained_clean;
        }
        st.shutdown = true;
        let deadline = Instant::now() + self.shared.config.drain_deadline;
        while (st.backlog > 0 || !st.leases.is_empty()) && Instant::now() < deadline {
            let (guard, _) = self
                .shared
                .space
                .wait_timeout(st, Duration::from_millis(20))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
        let clean = st.backlog == 0 && st.leases.is_empty();
        st.drained_clean = clean;
        st.abandoned = true;
        discard_pending(&self.shared, &mut st);
        let tcp = self.shared.transport.joins();
        for slot in &mut st.slots {
            match slot.writer.as_mut() {
                Some(writer) => {
                    let _ = writer
                        .write_all(&Message::Drain.to_frame())
                        .and_then(|()| writer.flush());
                }
                // A disconnected TCP worker cannot hear the Drain;
                // kill it so the reap below does not wait out its
                // whole grace.
                None if tcp => {
                    if let Some(child) = slot.child.as_mut() {
                        let _ = child.kill();
                    }
                }
                None => {}
            }
            // Dropping the pipe writer closes the worker's stdin, so
            // even a worker that missed the Drain frame exits on EOF.
            slot.writer = None;
            slot.exiting = true;
        }
        drop(st);
        // No further joins: reconnecting workers exhaust their dial
        // budget and exit.
        self.shared.transport.close();
        self.reap_children(Duration::from_secs(5));
        self.stop_supervisor();
        clean
    }

    /// Abandons immediately: discards queued jobs, drops in-flight
    /// leases (their handles synthesize "scheduler dropped task"
    /// reports), SIGKILLs every worker, and reaps all child PIDs.
    /// Returns how many queued jobs were discarded — the side-by-side
    /// contrast to the draining [`RemoteScheduler::shutdown`].
    pub fn shutdown_now(&self) -> u64 {
        let mut st = self.shared.lock();
        if st.reaped {
            return 0;
        }
        st.shutdown = true;
        st.abandoned = true;
        st.drained_clean = st.backlog == 0 && st.leases.is_empty();
        let discarded = discard_pending(&self.shared, &mut st);
        for slot in &mut st.slots {
            if let Some(child) = slot.child.as_mut() {
                let _ = child.kill();
            }
            slot.writer = None;
            slot.exiting = true;
        }
        drop(st);
        self.shared.transport.close();
        self.shared.space.notify_all();
        self.reap_children(Duration::ZERO);
        self.stop_supervisor();
        discarded
    }

    /// Current counters.
    pub fn stats(&self) -> RemoteStats {
        let st = self.shared.lock();
        let s = &self.shared.stats;
        RemoteStats {
            workers: st.slots.iter().filter(|slot| slot.child.is_some()).count(),
            submitted: s.submitted.load(Ordering::SeqCst),
            completed: s.completed.load(Ordering::SeqCst),
            dropped: s.dropped.load(Ordering::SeqCst),
            dead_lettered: s.dead_lettered.load(Ordering::SeqCst),
            redelivered: s.redelivered.load(Ordering::SeqCst),
            respawns: s.respawns.load(Ordering::SeqCst),
            frame_errors: s.frame_errors.load(Ordering::SeqCst),
            chaos_kills: s.chaos_kills.load(Ordering::SeqCst),
            steals: s.steals.load(Ordering::SeqCst),
            reconnects: s.reconnects.load(Ordering::SeqCst),
            partitions: s.partitions.load(Ordering::SeqCst),
            resume_reconciled: s.resume_reconciled.load(Ordering::SeqCst),
            backlog: st.backlog,
            in_flight: st.leases.len(),
        }
    }

    /// The coordinator's bound listener address, when the transport
    /// has one (`--transport tcp`).
    pub fn listen_addr(&self) -> Option<std::net::SocketAddr> {
        self.shared.transport.listen_addr()
    }

    /// OS PIDs of the currently live worker processes (for tests that
    /// kill them or assert they were reaped).
    pub fn worker_pids(&self) -> Vec<u32> {
        let st = self.shared.lock();
        st.slots
            .iter()
            .filter(|s| s.child.is_some())
            .map(|s| s.pid)
            .collect()
    }

    /// Waits for every child PID to exit, force-killing any still
    /// alive after `grace`, then joins reader threads. Leaves no
    /// zombies behind.
    fn reap_children(&self, grace: Duration) {
        let (children, readers) = {
            let mut st = self.shared.lock();
            let children: Vec<Child> = st.slots.iter_mut().filter_map(|s| s.child.take()).collect();
            let mut readers: Vec<JoinHandle<()>> = st
                .slots
                .iter_mut()
                .filter_map(|s| s.reader.take())
                .collect();
            readers.append(&mut st.retired_readers);
            (children, readers)
        };
        for mut child in children {
            let deadline = Instant::now() + grace;
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() >= deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                    Err(_) => break,
                }
            }
        }
        for reader in readers {
            let _ = reader.join();
        }
        self.shared.lock().reaped = true;
        self.shared.space.notify_all();
    }

    fn stop_supervisor(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        let handle = self
            .supervisor
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        let acceptor = self
            .acceptor
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
        if let Some(acceptor) = acceptor {
            let _ = acceptor.join();
        }
    }
}

impl Drop for RemoteScheduler {
    fn drop(&mut self) {
        let reaped = self.shared.lock().reaped;
        if !reaped {
            self.shutdown();
        }
    }
}

impl fmt::Debug for RemoteScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteScheduler")
            .field("stats", &self.stats())
            .finish()
    }
}

fn dead_slot(generation: u64) -> Slot {
    Slot {
        generation,
        child: None,
        writer: None,
        pid: 0,
        ready: false,
        exiting: false,
        busy: None,
        last_seen: Instant::now(),
        queue: VecDeque::new(),
        reader: None,
        session: 0,
        session_trace: 0,
        conn_epoch: 0,
        had_conn: false,
        net_frames: Arc::new(AtomicU64::new(0)),
    }
}

fn emit(shared: &Shared, event: RemoteEvent) {
    let hook = shared
        .hook
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    if let Some(hook) = hook {
        hook(&event);
    }
}

/// Spawns a worker process on the configured transport and builds its
/// slot. Pipe workers come back with their connection attached and a
/// reader thread running; TCP workers dial in later and attach via
/// [`attach_connection`]. Must run under the state lock (the reader
/// thread indexes `st.slots[slot_idx]`, which may not be pushed yet).
fn spawn_worker(
    shared: &Arc<Shared>,
    st: &mut CoordState,
    slot_idx: usize,
    generation: u64,
) -> std::io::Result<Slot> {
    st.next_session += 1;
    let session = st.next_session;
    let (child, duplex) = shared.transport.spawn(&shared.command, session)?;
    let pid = child.id();
    let mut slot = Slot {
        generation,
        child: Some(child),
        writer: None,
        pid,
        ready: false,
        exiting: false,
        busy: None,
        last_seen: Instant::now(),
        queue: VecDeque::new(),
        reader: None,
        session,
        session_trace: trace::fresh_id(),
        conn_epoch: 0,
        had_conn: false,
        net_frames: Arc::new(AtomicU64::new(0)),
    };
    if let Some(duplex) = duplex {
        st.next_epoch += 1;
        let epoch = st.next_epoch;
        slot.writer = Some(duplex.writer);
        slot.conn_epoch = epoch;
        slot.had_conn = true;
        let reader = duplex.reader;
        let shared = Arc::clone(shared);
        slot.reader = Some(std::thread::spawn(move || {
            reader_loop(&shared, slot_idx, generation, epoch, reader)
        }));
    }
    Ok(slot)
}

/// Per-worker reader thread: pumps the worker's byte stream through
/// the frame decoder until EOF or a hard decode error.
fn reader_loop(
    shared: &Arc<Shared>,
    slot_idx: usize,
    generation: u64,
    epoch: u64,
    mut input: Box<dyn Read + Send>,
) {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 8192];
    loop {
        let n = match input.read(&mut buf) {
            Ok(0) | Err(_) => {
                // Pipe EOF means a dead process: the supervisor reaps
                // and respawns. TCP EOF means a dead *connection*: mark
                // it lost so the session can resume on reconnect.
                if shared.transport.joins() {
                    conn_lost(shared, slot_idx, generation, epoch);
                }
                return;
            }
            Ok(n) => n,
        };
        decoder.feed(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(None) => break,
                Ok(Some(payload)) => match Message::decode(&payload) {
                    Ok(message) => handle_message(shared, slot_idx, generation, message),
                    Err(err) => {
                        on_frame_error(shared, slot_idx, generation, epoch, &err.to_string());
                        return;
                    }
                },
                Err(err) => {
                    on_frame_error(shared, slot_idx, generation, epoch, &err.to_string());
                    return;
                }
            }
        }
    }
}

/// A TCP worker's connection died while its process (presumably)
/// lives: drop the writer, keep the lease — the session resumes when
/// the worker redials, and a worker that never does goes stale and is
/// recycled by the heartbeat-lost supervision path.
fn conn_lost(shared: &Arc<Shared>, slot_idx: usize, generation: u64, epoch: u64) {
    let mut st = shared.lock();
    if st.abandoned || st.reaped {
        return;
    }
    let slot = &mut st.slots[slot_idx];
    if slot.generation != generation || slot.conn_epoch != epoch || slot.exiting {
        return; // a stale reader of a replaced connection or worker
    }
    if slot.child.is_none() || (slot.writer.is_none() && !slot.ready) {
        return; // already marked lost (e.g. by a failed dispatch write)
    }
    slot.writer = None;
    slot.ready = false;
    shared.stats.partitions.fetch_add(1, Ordering::SeqCst);
    observe::count("broker.remote_partitions", 1);
    drop(st);
    shared.space.notify_all();
}

/// Acceptor thread (joining transports only): polls for worker
/// connections and attaches each to its session's slot.
fn accept_loop(shared: &Arc<Shared>) {
    while !shared.stopping.load(Ordering::SeqCst) {
        match shared.transport.poll_join() {
            Some(duplex) => attach_connection(shared, duplex),
            None => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Runs the coordinator side of the handshake on a freshly joined
/// connection and wires it into the slot whose session token the
/// worker presented. A second attach for a session is a *resume*:
/// the in-flight lease is reconciled (kept granted), the reconnect is
/// counted, and the race detector gets its join-then-send barrier.
fn attach_connection(shared: &Arc<Shared>, mut duplex: Duplex) {
    // Handshake outside the state lock, under a read timeout so a
    // client that never speaks cannot wedge the acceptor. The worker
    // sends nothing after Hello until it sees the HelloAck, so the
    // throwaway decoder below cannot swallow post-handshake frames.
    if let Some(stream) = duplex.stream.as_ref() {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    }
    let mut handshake = WireReader::new();
    let hello = handshake.next(&mut duplex.reader);
    if let Some(stream) = duplex.stream.as_ref() {
        let _ = stream.set_read_timeout(None);
    }
    let (protocol, pid, session) = match hello {
        Ok(Some(Message::Hello {
            protocol,
            pid,
            session,
        })) => (protocol, pid, session),
        _ => return, // gone or garbled before the handshake: ignore
    };
    let mut st = shared.lock();
    if st.abandoned || st.reaped {
        return;
    }
    let Some(slot_idx) = st
        .slots
        .iter()
        .position(|s| s.session == session && s.session != 0 && s.child.is_some() && !s.exiting)
    else {
        // Unknown or retired session (e.g. recycled while the worker
        // was dialing): drop the connection; the worker exhausts its
        // retry budget and exits.
        return;
    };
    if protocol != PROTOCOL_VERSION {
        eprintln!(
            "simart-tasks: worker pid {pid} speaks protocol {protocol}, \
             coordinator speaks {PROTOCOL_VERSION}; dropping it"
        );
        let slot = &mut st.slots[slot_idx];
        slot.exiting = true; // reap without respawn: same binary would loop
        if let Some(child) = slot.child.as_mut() {
            let _ = child.kill();
        }
        return;
    }
    let generation = st.slots[slot_idx].generation;
    let resumed = st.slots[slot_idx].had_conn;
    let _span = resumed.then(|| observe::span(|| "remote.reconnect".to_owned()));
    let chaos = shared
        .config
        .fault
        .as_ref()
        .filter(|injector| injector.net_faults_enabled())
        .cloned();
    let (reader, mut writer): (Box<dyn Read + Send>, Box<dyn Write + Send>) = match chaos {
        Some(injector) => {
            let sever = duplex.stream.as_ref().and_then(|s| s.try_clone().ok());
            (
                Box::new(ChaosReader::new(
                    duplex.reader,
                    Arc::clone(&injector),
                    session,
                )),
                Box::new(
                    ChaosWriter::new(duplex.writer, sever, injector, session)
                        .share_frames(&st.slots[slot_idx].net_frames),
                ),
            )
        }
        None => (duplex.reader, duplex.writer),
    };
    let heartbeat_ms = (shared.config.supervisor.heartbeat.as_millis() as u64).max(1);
    let ack = Message::HelloAck {
        generation,
        heartbeat_ms,
        session,
    };
    if writer
        .write_all(&ack.to_frame())
        .and_then(|()| writer.flush())
        .is_err()
    {
        return; // connection already dead (or chaos reset it): the worker redials
    }
    st.next_epoch += 1;
    let epoch = st.next_epoch;
    if let Some(old_reader) = st.slots[slot_idx].reader.take() {
        st.retired_readers.push(old_reader);
    }
    let reader_handle = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || reader_loop(&shared, slot_idx, generation, epoch, reader))
    };
    let session_trace = st.slots[slot_idx].session_trace;
    {
        let slot = &mut st.slots[slot_idx];
        slot.writer = Some(writer);
        slot.conn_epoch = epoch;
        slot.ready = true;
        slot.last_seen = Instant::now();
        slot.had_conn = true;
        slot.reader = Some(reader_handle);
    }
    if resumed {
        shared.stats.reconnects.fetch_add(1, Ordering::SeqCst);
        observe::count("broker.remote_reconnects", 1);
        trace::remote_reconnect(session_trace);
        // Reconcile in-flight work: the lease stays granted (the
        // worker may still be computing; its re-sent result dedups
        // under first-report-wins, and a dispatch lost in flight
        // resolves through lease expiry).
        let reconciled = st.slots[slot_idx]
            .busy
            .and_then(|job_id| st.leases.get(&job_id))
            .map(|lease| lease.job.spec.name.clone());
        if let Some(task) = reconciled {
            shared
                .stats
                .resume_reconciled
                .fetch_add(1, Ordering::SeqCst);
            observe::count("broker.remote_resume_reconciled", 1);
            emit(
                shared,
                RemoteEvent::Reconnected {
                    task,
                    session,
                    generation,
                },
            );
        }
    }
    pump(shared, &mut st);
    drop(st);
    shared.space.notify_all();
}

fn handle_message(shared: &Arc<Shared>, slot_idx: usize, generation: u64, message: Message) {
    match message {
        // Pipe transport only: a TCP worker's Hello is consumed by
        // [`attach_connection`] before its reader thread starts.
        Message::Hello { protocol, pid, .. } => {
            let mut st = shared.lock();
            if st.slots[slot_idx].generation != generation {
                return; // stale reader of a replaced worker
            }
            if protocol != PROTOCOL_VERSION {
                eprintln!(
                    "simart-tasks: worker pid {pid} speaks protocol {protocol}, \
                     coordinator speaks {PROTOCOL_VERSION}; dropping it"
                );
                let slot = &mut st.slots[slot_idx];
                slot.exiting = true; // reap without respawn: same binary would loop
                if let Some(child) = slot.child.as_mut() {
                    let _ = child.kill();
                }
                return;
            }
            let heartbeat_ms = (shared.config.supervisor.heartbeat.as_millis() as u64).max(1);
            let ack = Message::HelloAck {
                generation,
                heartbeat_ms,
                session: st.slots[slot_idx].session,
            };
            let slot = &mut st.slots[slot_idx];
            slot.last_seen = Instant::now();
            let sent = match slot.writer.as_mut() {
                Some(writer) => writer
                    .write_all(&ack.to_frame())
                    .and_then(|()| writer.flush())
                    .is_ok(),
                None => false,
            };
            if sent {
                slot.ready = true;
                pump(shared, &mut st);
            }
        }
        Message::Heartbeat { busy, .. } => {
            observe::count("broker.remote_heartbeats", 1);
            let mut st = shared.lock();
            if st.slots[slot_idx].generation != generation {
                return;
            }
            st.slots[slot_idx].last_seen = Instant::now();
            // Lost-dispatch reconciliation: the worker reports which
            // job it is running (0 = idle). Frames on one stream are
            // processed in order, so an *idle* heartbeat arriving a
            // full staleness budget after the lease was granted means
            // the dispatch frame never arrived (a silent one-way
            // partition ate it) — redeliver now instead of waiting
            // out the task's full lease.
            let stale_after = shared.config.supervisor.remote_stale_after();
            let lost = st.slots[slot_idx].busy.filter(|&job_id| {
                busy != job_id
                    && st
                        .leases
                        .get(&job_id)
                        .is_some_and(|lease| lease.granted.elapsed() >= stale_after)
            });
            if let Some(job_id) = lost {
                st.slots[slot_idx].busy = None;
                if let Some(mut lease) = st.leases.remove(&job_id) {
                    observe::count("broker.remote_lost_dispatches", 1);
                    trace::lease_revoke(lease.job.trace_id);
                    lease
                        .job
                        .lease_events
                        .push(format!("delivery:{}:dispatch-lost", lease.job.delivery));
                    // The job never reached a worker, so this is a
                    // re-send of the *same* delivery, not a redelivery
                    // — it spends no budget from the cap (mirroring
                    // the requeue of a failed pipe dispatch write).
                    enqueue_job(shared, &mut st, lease.job);
                }
                pump(shared, &mut st);
                shared.space.notify_all();
            }
        }
        Message::TaskResult {
            job,
            delivery,
            generation: reporter_gen,
            ok,
            output,
            error,
        } => {
            let mut st = shared.lock();
            // First report wins, whatever generation it came from: a
            // stale worker finishing after redelivery still resolves
            // the job; the duplicate later report finds no lease.
            if let Some(lease) = st.leases.remove(&job) {
                deliver_ack(
                    shared,
                    lease,
                    delivery as u32,
                    reporter_gen,
                    ok,
                    output,
                    error,
                );
            }
            if st.slots[slot_idx].generation == generation {
                if st.slots[slot_idx].busy == Some(job) {
                    st.slots[slot_idx].busy = None;
                }
                st.slots[slot_idx].last_seen = Instant::now();
                pump(shared, &mut st);
            }
            shared.space.notify_all();
        }
        Message::Bye { .. } => {
            let mut st = shared.lock();
            if st.slots[slot_idx].generation == generation {
                st.slots[slot_idx].exiting = true;
                st.slots[slot_idx].ready = false;
            }
        }
        // Coordinator-bound streams never carry these legitimately.
        Message::HelloAck { .. } | Message::Dispatch { .. } | Message::Drain => {}
    }
}

/// Accepted result → task report (first-report-wins).
fn deliver_ack(
    shared: &Arc<Shared>,
    lease: RemoteLease,
    delivery: u32,
    reporter_gen: u64,
    ok: bool,
    output: String,
    error: String,
) {
    let job = lease.job;
    observe::count("broker.remote_acks", 1);
    trace::remote_ack(job.trace_id);
    trace::task_finish(job.trace_id);
    emit(
        shared,
        RemoteEvent::Acked {
            task: job.spec.name.clone(),
            delivery,
            generation: reporter_gen,
        },
    );
    let report = TaskReport {
        name: job.spec.name.clone(),
        state: if ok {
            TaskState::Succeeded
        } else {
            TaskState::Failed
        },
        output: if ok { Some(output) } else { None },
        error: if ok { None } else { Some(error) },
        attempts: 1,
        duration: job.first_enqueued.elapsed(),
        detached: false,
        history: vec![AttemptRecord {
            index: job.delivery,
            disposition: if ok {
                AttemptDisposition::Succeeded
            } else {
                AttemptDisposition::Errored
            },
            delay_before: Duration::ZERO,
        }],
        redeliveries: job.delivery - 1,
        lease_events: job.lease_events,
    };
    if !job.reported.swap(true, Ordering::SeqCst) {
        let _ = job.report_tx.send(report);
        shared.stats.completed.fetch_add(1, Ordering::SeqCst);
    }
}

/// Satellite: a torn or corrupt frame must never wedge the
/// coordinator. Log it, kill + reap the worker, revoke its lease
/// (redelivering the task), and respawn — the pipe-level mirror of
/// the journal's torn-tail tolerance.
fn on_frame_error(shared: &Arc<Shared>, slot_idx: usize, generation: u64, epoch: u64, why: &str) {
    shared.stats.frame_errors.fetch_add(1, Ordering::SeqCst);
    observe::count("broker.remote_frame_errors", 1);
    let mut st = shared.lock();
    if st.slots[slot_idx].generation != generation || st.slots[slot_idx].conn_epoch != epoch {
        return;
    }
    eprintln!(
        "simart-tasks: remote worker pid {} wrote a corrupt frame ({why}); \
         killing and respawning it",
        st.slots[slot_idx].pid
    );
    recycle_slot(shared, &mut st, slot_idx, "torn-frame");
    pump(shared, &mut st);
    shared.space.notify_all();
}

/// Kills, reaps, and (unless abandoned) respawns a slot's worker,
/// recovering any lease it held with the given cause.
fn recycle_slot(shared: &Arc<Shared>, st: &mut CoordState, slot_idx: usize, cause: &str) {
    if let Some(child) = st.slots[slot_idx].child.as_mut() {
        let _ = child.kill();
    }
    if let Some(mut child) = st.slots[slot_idx].child.take() {
        let _ = child.wait(); // immediate after SIGKILL; reaps the PID
    }
    st.slots[slot_idx].writer = None;
    st.slots[slot_idx].ready = false;
    let busy = st.slots[slot_idx].busy.take();
    if let Some(job_id) = busy {
        if let Some(lease) = st.leases.remove(&job_id) {
            recover_lease(shared, st, lease, cause);
        }
    }
    if !st.abandoned {
        respawn_slot(shared, st, slot_idx);
    }
}

fn respawn_slot(shared: &Arc<Shared>, st: &mut CoordState, slot_idx: usize) {
    if let Some(old_reader) = st.slots[slot_idx].reader.take() {
        // May be the calling thread itself (frame-error path), so it
        // is joined later from the shutdown path, never here.
        st.retired_readers.push(old_reader);
    }
    st.next_generation += 1;
    let generation = st.next_generation;
    // Queued jobs ride over to the replacement worker; the old
    // session token is retired, so a zombie connection of the killed
    // process can never attach to the new slot.
    let queue = std::mem::take(&mut st.slots[slot_idx].queue);
    match spawn_worker(shared, st, slot_idx, generation) {
        Ok(mut slot) => {
            slot.queue = queue;
            st.slots[slot_idx] = slot;
            shared.stats.respawns.fetch_add(1, Ordering::SeqCst);
            observe::count("broker.remote_respawns", 1);
        }
        Err(err) => {
            eprintln!("simart-tasks: failed to respawn remote worker: {err}");
            let mut dead = dead_slot(generation);
            dead.queue = queue;
            st.slots[slot_idx] = dead;
        }
    }
}

/// Broker-contract lease recovery: record the `delivery:<n>:<cause>`
/// event, then redeliver (cap permitting) or dead-letter.
fn recover_lease(shared: &Arc<Shared>, st: &mut CoordState, mut lease: RemoteLease, cause: &str) {
    trace::lease_revoke(lease.job.trace_id);
    lease
        .job
        .lease_events
        .push(format!("delivery:{}:{}", lease.job.delivery, cause));
    let cap = shared.config.supervisor.max_redeliveries;
    let redeliveries_so_far = lease.job.delivery - 1;
    if redeliveries_so_far >= cap {
        dead_letter(shared, st, lease.job, cause);
        return;
    }
    shared.stats.redelivered.fetch_add(1, Ordering::SeqCst);
    observe::count("broker.remote_redelivered", 1);
    trace::task_requeue(lease.job.trace_id);
    emit(
        shared,
        RemoteEvent::Redelivered {
            task: lease.job.spec.name.clone(),
            delivery: lease.job.delivery,
            cause: cause.to_owned(),
        },
    );
    let mut job = lease.job;
    job.delivery += 1;
    enqueue_job(shared, st, job);
}

/// Terminal failure classification, mirroring the in-process broker's
/// dead-letter mapping: exhausted redeliveries quarantine, a dead
/// worker with no redelivery budget fails, an expired lease with no
/// budget times out.
fn dead_letter(shared: &Arc<Shared>, _st: &mut CoordState, job: RemoteJob, cause: &str) {
    let cap = shared.config.supervisor.max_redeliveries;
    let redeliveries = job.delivery - 1;
    let (state, error) = if redeliveries > 0 {
        (
            TaskState::Quarantined,
            format!(
                "task quarantined: redelivery cap ({cap}) exhausted after {} deliveries \
                 (last cause: {cause})",
                job.delivery
            ),
        )
    } else if cause == "lease-expired" {
        (
            TaskState::TimedOut,
            format!(
                "task lease expired (timeout {:?} + grace {:?}); no redeliveries allowed",
                job.spec.timeout, shared.config.supervisor.grace
            ),
        )
    } else if cause == "no-workers" {
        (
            TaskState::Failed,
            "no live worker processes remain; task cannot be delivered".to_owned(),
        )
    } else if cause == "workers-unreachable" {
        (
            TaskState::Failed,
            format!(
                "no remote worker reachable past the unreachable deadline ({:?}); \
                 the coordinator degraded loudly instead of hanging",
                shared.config.unreachable_deadline
            ),
        )
    } else {
        (
            TaskState::Failed,
            format!(
                "worker process died holding the task lease ({cause}); no redeliveries allowed"
            ),
        )
    };
    observe::count("broker.remote_dead_letters", 1);
    trace::task_finish(job.trace_id);
    emit(
        shared,
        RemoteEvent::DeadLettered {
            task: job.spec.name.clone(),
            cause: cause.to_owned(),
        },
    );
    let report = TaskReport {
        name: job.spec.name.clone(),
        state,
        output: None,
        error: Some(error),
        attempts: 0,
        duration: job.first_enqueued.elapsed(),
        detached: false,
        history: Vec::new(),
        redeliveries,
        lease_events: job.lease_events,
    };
    if !job.reported.swap(true, Ordering::SeqCst) {
        let _ = job.report_tx.send(report);
    }
    shared.stats.dead_lettered.fetch_add(1, Ordering::SeqCst);
}

/// Queues a job on the live slot with the shortest queue.
fn enqueue_job(shared: &Arc<Shared>, st: &mut CoordState, job: RemoteJob) {
    trace::enqueue(shared.queue_trace);
    let target = st
        .slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.child.is_some() && !s.exiting)
        .min_by_key(|(_, s)| s.queue.len())
        .map(|(i, _)| i)
        .unwrap_or(0);
    st.slots[target].queue.push_back(job);
    st.backlog += 1;
}

/// Gives every idle, ready worker a job — from its own queue first,
/// else stolen from the longest peer queue.
fn pump(shared: &Arc<Shared>, st: &mut CoordState) {
    for i in 0..st.slots.len() {
        loop {
            let slot = &st.slots[i];
            if slot.child.is_none() || !slot.ready || slot.exiting || slot.busy.is_some() {
                break;
            }
            let job = match st.slots[i].queue.pop_front() {
                Some(job) => job,
                None => {
                    let victim = st
                        .slots
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .max_by_key(|(_, s)| s.queue.len())
                        .filter(|(_, s)| !s.queue.is_empty())
                        .map(|(j, _)| j);
                    match victim {
                        Some(j) => {
                            shared.stats.steals.fetch_add(1, Ordering::SeqCst);
                            observe::count("broker.remote_steals", 1);
                            match st.slots[j].queue.pop_back() {
                                Some(job) => job,
                                None => break,
                            }
                        }
                        None => break,
                    }
                }
            };
            st.backlog -= 1;
            trace::dequeue(shared.queue_trace);
            if !dispatch(shared, st, i, job) {
                break;
            }
        }
    }
}

/// Writes a dispatch frame to slot `i` and registers the lease.
/// Returns `false` when the worker's pipe was broken (the job is
/// requeued and the worker left for the supervisor to recycle).
fn dispatch(shared: &Arc<Shared>, st: &mut CoordState, i: usize, job: RemoteJob) -> bool {
    let generation = st.slots[i].generation;
    let pid = st.slots[i].pid;
    let message = Message::Dispatch {
        job: job.job_id,
        delivery: u64::from(job.delivery),
        generation,
        name: job.spec.name.clone(),
        kind: job.spec.kind.clone(),
        payload: job.spec.payload.clone(),
        timeout_ms: job.spec.timeout.map_or(0, |t| t.as_millis() as u64),
    };
    let written = match st.slots[i].writer.as_mut() {
        Some(writer) => writer
            .write_all(&message.to_frame())
            .and_then(|()| writer.flush())
            .is_ok(),
        None => false,
    };
    if !written {
        st.slots[i].queue.push_front(job);
        st.backlog += 1;
        if shared.transport.joins() {
            // The connection broke, not (necessarily) the process:
            // drop it and let the session resume on redial.
            if st.slots[i].writer.take().is_some() {
                st.slots[i].ready = false;
                shared.stats.partitions.fetch_add(1, Ordering::SeqCst);
                observe::count("broker.remote_partitions", 1);
            }
        } else if let Some(child) = st.slots[i].child.as_mut() {
            let _ = child.kill(); // supervisor reaps and respawns
        }
        return false;
    }
    observe::count("broker.remote_dispatches", 1);
    observe::observe_us(
        "broker.remote_queue_latency_us",
        job.first_enqueued.elapsed().as_micros() as u64,
    );
    trace::lease_grant(job.trace_id);
    trace::remote_dispatch(job.trace_id);
    emit(
        shared,
        RemoteEvent::Dispatched {
            task: job.spec.name.clone(),
            delivery: job.delivery,
            generation,
            pid,
        },
    );
    let chaos_kill = shared.config.fault.as_ref().is_some_and(|injector| {
        matches!(
            injector.take_worker_fault(&job.spec.name, job.delivery),
            Some(Fault::WorkerKill)
        )
    });
    let deadline = job
        .spec
        .timeout
        .map(|t| Instant::now() + t + shared.config.supervisor.grace);
    let job_id = job.job_id;
    st.slots[i].busy = Some(job_id);
    st.leases.insert(
        job_id,
        RemoteLease {
            job,
            deadline,
            granted: Instant::now(),
        },
    );
    if chaos_kill {
        shared.stats.chaos_kills.fetch_add(1, Ordering::SeqCst);
        observe::count("broker.remote_kills", 1);
        if let Some(child) = st.slots[i].child.as_mut() {
            let _ = child.kill(); // a real SIGKILL to a real PID
        }
    }
    true
}

/// Drops every queued job and live lease without a report (handles
/// synthesize "scheduler dropped task"). Returns the queued count.
fn discard_pending(shared: &Arc<Shared>, st: &mut CoordState) -> u64 {
    let mut discarded = 0u64;
    for slot in &mut st.slots {
        while let Some(job) = slot.queue.pop_front() {
            discarded += 1;
            drop(job);
        }
    }
    st.backlog = 0;
    for (_, lease) in st.leases.drain() {
        drop(lease);
    }
    shared.stats.dropped.fetch_add(discarded, Ordering::SeqCst);
    discarded
}

/// The supervisor thread: ticks on the configured heartbeat, reaping
/// dead workers, recycling wedged ones, expiring leases, and keeping
/// the dispatch pump primed — the process-level twin of the broker's
/// supervisor.
fn supervise_loop(shared: &Arc<Shared>) {
    let heartbeat = shared
        .config
        .supervisor
        .heartbeat
        .max(Duration::from_millis(1));
    while !shared.stopping.load(Ordering::SeqCst) {
        std::thread::sleep(heartbeat);
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let _span = observe::span(|| "remote.supervise_tick".to_owned());
        let mut st = shared.lock();
        if st.reaped {
            return;
        }
        tick(shared, &mut st);
        drop(st);
        shared.space.notify_all();
    }
}

fn tick(shared: &Arc<Shared>, st: &mut CoordState) {
    let now = Instant::now();
    let stale_after = shared.config.supervisor.remote_stale_after();
    for i in 0..st.slots.len() {
        let exited = match st.slots[i].child.as_mut() {
            Some(child) => matches!(child.try_wait(), Ok(Some(_))),
            None => false,
        };
        if exited {
            // try_wait() already reaped the PID; drop the handle.
            let was_exiting = st.slots[i].exiting;
            st.slots[i].child = None;
            st.slots[i].writer = None;
            st.slots[i].ready = false;
            let busy = st.slots[i].busy.take();
            if let Some(job_id) = busy {
                if let Some(lease) = st.leases.remove(&job_id) {
                    recover_lease(shared, st, lease, "worker-died");
                }
            }
            if !was_exiting && !st.abandoned {
                respawn_slot(shared, st, i);
            }
            continue;
        }
        let slot = &st.slots[i];
        if slot.child.is_none() || !slot.ready || slot.exiting {
            continue;
        }
        let lease_expired = slot.busy.is_some_and(|job_id| {
            st.leases
                .get(&job_id)
                .and_then(|lease| lease.deadline)
                .is_some_and(|deadline| now >= deadline)
        });
        let heartbeat_lost = now.duration_since(slot.last_seen) >= stale_after;
        if lease_expired {
            recycle_slot(shared, st, i, "lease-expired");
        } else if heartbeat_lost {
            recycle_slot(shared, st, i, "heartbeat-lost");
        }
    }
    if !st.abandoned && st.backlog > 0 && st.slots.iter().all(|s| s.child.is_none()) {
        // Every spawn has failed: fail queued work fast instead of
        // letting submitters hang forever.
        let mut stranded = Vec::new();
        for slot in &mut st.slots {
            while let Some(job) = slot.queue.pop_front() {
                stranded.push(job);
            }
        }
        st.backlog = 0;
        for job in stranded {
            dead_letter(shared, st, job, "no-workers");
        }
    }
    // Loud degradation: work is pending but no worker is reachable
    // (children may be alive yet disconnected — a total partition).
    // Past the deadline, fail everything queued *and* in flight
    // rather than hanging silently.
    let pending = st.backlog > 0 || !st.leases.is_empty();
    let any_ready = st
        .slots
        .iter()
        .any(|s| s.child.is_some() && s.ready && !s.exiting);
    if !st.abandoned && pending && !any_ready {
        let since = *st.unreachable_since.get_or_insert(now);
        if now.duration_since(since) >= shared.config.unreachable_deadline {
            eprintln!(
                "simart-tasks: no remote worker reachable for {:?} with {} queued and {} \
                 in-flight jobs; failing them (workers-unreachable)",
                shared.config.unreachable_deadline,
                st.backlog,
                st.leases.len()
            );
            let mut stranded = Vec::new();
            for slot in &mut st.slots {
                slot.busy = None;
                while let Some(job) = slot.queue.pop_front() {
                    stranded.push(job);
                }
            }
            st.backlog = 0;
            let in_flight: Vec<u64> = st.leases.keys().copied().collect();
            for job_id in in_flight {
                if let Some(mut lease) = st.leases.remove(&job_id) {
                    trace::lease_revoke(lease.job.trace_id);
                    lease.job.lease_events.push(format!(
                        "delivery:{}:workers-unreachable",
                        lease.job.delivery
                    ));
                    stranded.push(lease.job);
                }
            }
            for job in stranded {
                dead_letter(shared, st, job, "workers-unreachable");
            }
            st.unreachable_since = None;
        }
    } else {
        st.unreachable_since = None;
    }
    pump(shared, st);
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// A dispatched job as seen by a worker-side handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerJob {
    /// Coordinator-unique job id.
    pub job: u64,
    /// Task name.
    pub name: String,
    /// Handler kind.
    pub kind: String,
    /// Opaque payload from the spec.
    pub payload: String,
    /// 1-based delivery number (`> 1` means this is a redelivery).
    pub delivery: u32,
    /// Generation this worker process was assigned at handshake.
    pub generation: u64,
}

type HandlerFn = Box<dyn Fn(&WorkerJob) -> Result<String, String> + Send + Sync>;

/// Maps handler kinds to worker-side handler functions.
#[derive(Default)]
pub struct HandlerRegistry {
    handlers: HashMap<String, HandlerFn>,
}

impl HandlerRegistry {
    /// An empty registry.
    pub fn new() -> HandlerRegistry {
        HandlerRegistry::default()
    }

    /// Registers the handler for `kind` (replacing any previous one).
    pub fn register(
        &mut self,
        kind: impl Into<String>,
        handler: impl Fn(&WorkerJob) -> Result<String, String> + Send + Sync + 'static,
    ) {
        self.handlers.insert(kind.into(), Box::new(handler));
    }

    /// Runs the matching handler, containing panics as errors. Public
    /// so embedders can exercise their registries without spawning a
    /// worker process; [`worker_main`] calls it per dispatch.
    pub fn run(&self, job: &WorkerJob) -> Result<String, String> {
        let handler = self
            .handlers
            .get(&job.kind)
            .ok_or_else(|| format!("worker has no handler for kind `{}`", job.kind))?;
        match catch_unwind(AssertUnwindSafe(|| handler(job))) {
            Ok(result) => result,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_owned());
                Err(format!("handler panicked: {message}"))
            }
        }
    }
}

impl fmt::Debug for HandlerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandlerRegistry")
            .field("kinds", &self.handlers.keys().collect::<Vec<_>>())
            .finish()
    }
}

struct WireReader {
    decoder: FrameDecoder,
    buf: [u8; 8192],
}

impl WireReader {
    fn new() -> WireReader {
        WireReader {
            decoder: FrameDecoder::new(),
            buf: [0u8; 8192],
        }
    }

    /// `Ok(None)` on EOF, `Err(())` on a corrupt stream.
    fn next(&mut self, input: &mut impl Read) -> Result<Option<Message>, ()> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => return Message::decode(&payload).map(Some).map_err(|_| ()),
                Err(_) => return Err(()),
                Ok(None) => {}
            }
            match input.read(&mut self.buf) {
                Ok(0) => return Ok(None),
                Ok(n) => self.decoder.feed(&self.buf[..n]),
                Err(_) => return Err(()),
            }
        }
    }
}

fn send_frame<W: Write>(out: &Mutex<W>, message: &Message) -> std::io::Result<()> {
    let mut out = out.lock().unwrap_or_else(|p| p.into_inner());
    out.write_all(&message.to_frame())?;
    out.flush()
}

/// Runs the worker side of the protocol on this process's
/// stdin/stdout until the coordinator drains it or goes away.
/// Returns the process exit code: `0` for a graceful end (drain or
/// coordinator EOF), non-zero for a corrupt stream or handshake
/// failure.
///
/// The worker says [`Message::Hello`], waits for the
/// [`Message::HelloAck`] carrying its generation and heartbeat
/// cadence, then loops: heartbeats from a background thread, one
/// [`Message::TaskResult`] per [`Message::Dispatch`] (handler panics
/// are contained and reported as errors), and a [`Message::Bye`] in
/// answer to [`Message::Drain`].
///
/// Nothing else in the process may write to stdout — the byte stream
/// *is* the protocol.
pub fn worker_main(registry: &HandlerRegistry) -> i32 {
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    let pid = u64::from(std::process::id());
    if send_frame(
        &stdout,
        &Message::Hello {
            protocol: PROTOCOL_VERSION,
            pid,
            session: 0, // pipes have no reconnect, hence no session
        },
    )
    .is_err()
    {
        return 1;
    }
    let mut stdin = std::io::stdin();
    let mut reader = WireReader::new();
    let (generation, heartbeat_ms) = match reader.next(&mut stdin) {
        Ok(Some(Message::HelloAck {
            generation,
            heartbeat_ms,
            ..
        })) => (generation, heartbeat_ms),
        Ok(None) => return 0, // coordinator vanished before the handshake
        _ => return 2,
    };
    let busy = Arc::new(AtomicU64::new(0));
    {
        let stdout = Arc::clone(&stdout);
        let busy = Arc::clone(&busy);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(heartbeat_ms.max(1)));
            let beat = Message::Heartbeat {
                pid,
                busy: busy.load(Ordering::SeqCst),
            };
            if send_frame(&stdout, &beat).is_err() {
                return; // coordinator gone; main loop sees EOF
            }
        });
    }
    loop {
        match reader.next(&mut stdin) {
            Ok(None) => return 0,
            Err(()) => return 2,
            Ok(Some(Message::Dispatch {
                job,
                delivery,
                name,
                kind,
                payload,
                ..
            })) => {
                busy.store(job, Ordering::SeqCst);
                let work = WorkerJob {
                    job,
                    name,
                    kind,
                    payload,
                    delivery: delivery as u32,
                    generation,
                };
                let result = registry.run(&work);
                let (ok, output, error) = match result {
                    Ok(output) => (true, output, String::new()),
                    Err(error) => (false, String::new(), error),
                };
                let reply = Message::TaskResult {
                    job,
                    delivery,
                    generation,
                    ok,
                    output,
                    error,
                };
                let sent = send_frame(&stdout, &reply);
                // Only report idle once the result is on the wire: an
                // idle heartbeat overtaking the result would read as a
                // lost dispatch to the coordinator.
                busy.store(0, Ordering::SeqCst);
                if sent.is_err() {
                    return 1;
                }
            }
            Ok(Some(Message::Drain)) => {
                let _ = send_frame(&stdout, &Message::Bye { pid });
                return 0;
            }
            Ok(Some(_)) => {}
        }
    }
}

/// How many consecutive failed dials (or failed handshakes) a TCP
/// worker tolerates before giving up and exiting.
const MAX_DIAL_FAILURES: u32 = 8;

enum SessionEnd {
    /// The coordinator drained us: exit gracefully.
    Drained,
    /// The connection died. `handshook` distinguishes a session that
    /// was live (reset the failure budget and redial immediately)
    /// from a dial that never completed the handshake (burn budget).
    Lost { handshook: bool },
}

/// Runs the worker side of the protocol over TCP: dials `addr`,
/// presents the session token from [`WORKER_SESSION_ENV`] in its
/// [`Message::Hello`], and — because over TCP the *connection* can die
/// while the process lives — redials with capped exponential backoff
/// on any connection loss, resuming the same session. A
/// [`Message::TaskResult`] the dead connection failed to carry is
/// re-sent first on the new one; the coordinator's first-report-wins
/// dedup makes any duplicate harmless.
///
/// Returns the process exit code: `0` after a [`Message::Drain`],
/// non-zero once the consecutive-dial-failure budget is exhausted
/// (coordinator gone for good).
pub fn worker_main_connect(registry: &HandlerRegistry, addr: &str) -> i32 {
    let session = std::env::var(WORKER_SESSION_ENV)
        .ok()
        .and_then(|raw| raw.parse::<u64>().ok())
        .unwrap_or(0);
    let backoff = RetryPolicy::exponential(Duration::from_millis(20))
        .cap(Duration::from_millis(400))
        .max_attempts(MAX_DIAL_FAILURES + 1);
    let mut pending: Option<Message> = None;
    let mut failures = 0u32;
    loop {
        if failures >= MAX_DIAL_FAILURES {
            eprintln!(
                "simart-tasks: worker gave up on coordinator {addr} after \
                 {MAX_DIAL_FAILURES} consecutive failed dials"
            );
            return 1;
        }
        // delay_before(1) is zero: the first dial (and the redial
        // right after a live session drops) is immediate.
        std::thread::sleep(backoff.delay_before(failures + 1));
        let stream = match TcpStream::connect(addr) {
            Ok(stream) => stream,
            Err(_) => {
                failures += 1;
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        match run_connected_session(registry, &stream, session, &mut pending) {
            SessionEnd::Drained => return 0,
            SessionEnd::Lost { handshook: true } => failures = 1,
            SessionEnd::Lost { handshook: false } => failures += 1,
        }
    }
}

/// One connection's worth of the TCP worker protocol; see
/// [`worker_main_connect`]. `pending` carries an unsent result across
/// connections.
fn run_connected_session(
    registry: &HandlerRegistry,
    stream: &TcpStream,
    session: u64,
    pending: &mut Option<Message>,
) -> SessionEnd {
    let pid = u64::from(std::process::id());
    let (writer, mut input) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(writer), Ok(input)) => (Arc::new(Mutex::new(writer)), input),
        _ => return SessionEnd::Lost { handshook: false },
    };
    let hello = Message::Hello {
        protocol: PROTOCOL_VERSION,
        pid,
        session,
    };
    if send_frame(&writer, &hello).is_err() {
        return SessionEnd::Lost { handshook: false };
    }
    // Handshake under a read timeout: a HelloAck lost to a chaos
    // partition must not wedge the worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut reader = WireReader::new();
    let (generation, heartbeat_ms) = match reader.next(&mut input) {
        Ok(Some(Message::HelloAck {
            generation,
            heartbeat_ms,
            ..
        })) => (generation, heartbeat_ms),
        _ => return SessionEnd::Lost { handshook: false },
    };
    let _ = stream.set_read_timeout(None);
    // Resume: re-send the result the previous connection failed to
    // deliver before taking new work.
    if let Some(reply) = pending.as_ref() {
        if send_frame(&writer, reply).is_err() {
            return SessionEnd::Lost { handshook: true };
        }
    }
    *pending = None;
    let busy = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeats = {
        let writer = Arc::clone(&writer);
        let busy = Arc::clone(&busy);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(heartbeat_ms.max(1)));
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let beat = Message::Heartbeat {
                pid,
                busy: busy.load(Ordering::SeqCst),
            };
            if send_frame(&writer, &beat).is_err() {
                return; // connection gone; main loop sees EOF
            }
        })
    };
    let end = loop {
        match reader.next(&mut input) {
            // EOF *and* corrupt streams end the connection, not the
            // process: chaos-corrupted coordinator frames are healed
            // by a reconnect.
            Ok(None) | Err(()) => break SessionEnd::Lost { handshook: true },
            Ok(Some(Message::Dispatch {
                job,
                delivery,
                name,
                kind,
                payload,
                ..
            })) => {
                busy.store(job, Ordering::SeqCst);
                let work = WorkerJob {
                    job,
                    name,
                    kind,
                    payload,
                    delivery: delivery as u32,
                    generation,
                };
                let result = registry.run(&work);
                let (ok, output, error) = match result {
                    Ok(output) => (true, output, String::new()),
                    Err(error) => (false, String::new(), error),
                };
                let reply = Message::TaskResult {
                    job,
                    delivery,
                    generation,
                    ok,
                    output,
                    error,
                };
                let sent = send_frame(&writer, &reply);
                // Only report idle once the result is on the wire: an
                // idle heartbeat overtaking the result would read as a
                // lost dispatch to the coordinator.
                busy.store(0, Ordering::SeqCst);
                if sent.is_err() {
                    *pending = Some(reply);
                    break SessionEnd::Lost { handshook: true };
                }
            }
            Ok(Some(Message::Drain)) => {
                let _ = send_frame(&writer, &Message::Bye { pid });
                break SessionEnd::Drained;
            }
            Ok(Some(_)) => {}
        }
    };
    stop.store(true, Ordering::SeqCst);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = heartbeats.join();
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_sets_fields() {
        let spec = RemoteTaskSpec::new("run-1", "campaign-boot", "{\"p\":1}")
            .timeout(Duration::from_secs(3));
        assert_eq!(spec.name, "run-1");
        assert_eq!(spec.kind, "campaign-boot");
        assert_eq!(spec.timeout, Some(Duration::from_secs(3)));
    }

    #[test]
    fn submit_error_messages() {
        assert!(SubmitError::Backpressure
            .to_string()
            .contains("backpressure"));
        assert!(SubmitError::Shutdown.to_string().contains("shut down"));
        assert_ne!(SubmitError::Backpressure, SubmitError::Shutdown);
    }

    #[test]
    fn config_defaults_are_sane() {
        let config = RemoteConfig::default();
        assert!(config.queue_capacity > 0);
        assert!(config.submit_deadline > Duration::ZERO);
        assert!(config.drain_deadline > Duration::ZERO);
        assert!(config.fault.is_none());
        assert_eq!(config.transport, TransportKind::Pipe);
        assert!(config.unreachable_deadline > Duration::ZERO);
        assert!(format!("{config:?}").contains("queue_capacity"));
        assert!(format!("{config:?}").contains("transport"));
    }

    #[test]
    fn registry_contains_panics_and_unknown_kinds() {
        let mut registry = HandlerRegistry::new();
        registry.register("boom", |_| panic!("kapow"));
        registry.register("echo", |job: &WorkerJob| Ok(job.payload.clone()));
        let job = |kind: &str| WorkerJob {
            job: 1,
            name: "t".to_owned(),
            kind: kind.to_owned(),
            payload: "data".to_owned(),
            delivery: 1,
            generation: 1,
        };
        assert_eq!(registry.run(&job("echo")).unwrap(), "data");
        assert!(registry.run(&job("boom")).unwrap_err().contains("kapow"));
        assert!(registry
            .run(&job("mystery"))
            .unwrap_err()
            .contains("no handler"));
    }

    #[test]
    fn spawn_failure_of_all_workers_errors() {
        let command = WorkerCommand::new("/nonexistent/simart-worker-binary");
        assert!(RemoteScheduler::new(command, 2).is_err());
    }

    #[test]
    fn worker_command_builder_accumulates() {
        let command = WorkerCommand::new("prog").arg("worker").env("K", "V");
        assert_eq!(command.args, vec!["worker".to_owned()]);
        assert_eq!(command.envs, vec![("K".to_owned(), "V".to_owned())]);
    }
}
