//! The serial (no-scheduler) executor.

use crate::task::{execute_reporting, Task, TaskHandle};
use crate::{trace, Scheduler};
use crossbeam::channel::bounded;

/// Runs each task inline on the submitting thread — the paper's "no
/// job scheduler at all" mode. Useful for debugging a single run.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialScheduler;

impl SerialScheduler {
    /// Creates the serial scheduler.
    pub fn new() -> SerialScheduler {
        SerialScheduler
    }
}

impl Scheduler for SerialScheduler {
    fn submit(&self, mut task: Task) -> TaskHandle {
        let name = task.name().to_owned();
        let (tx, rx) = bounded(1);
        task.stamp_queued();
        trace::task_submit(task.trace_id);
        execute_reporting(task, tx);
        TaskHandle { receiver: rx, name }
    }

    fn name(&self) -> &'static str {
        "serial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_inline_and_in_order() {
        let scheduler = SerialScheduler::new();
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        for i in 0..5 {
            let log = std::sync::Arc::clone(&log);
            let handle = scheduler.submit(Task::new(format!("t{i}"), move || {
                log.lock().unwrap().push(i);
                Ok(String::new())
            }));
            // Already finished by the time submit returns.
            assert!(handle.try_wait().is_some());
        }
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
