//! The coordinator ↔ worker wire protocol for the remote scheduler.
//!
//! Messages travel over local pipes as length-prefixed, CRC-framed
//! JSON — byte-for-byte the record format of the database journal
//! (`simart-db::journal`), reused here because its torn-tail discipline
//! is exactly what a crash-prone byte stream needs:
//!
//! ```text
//! +----------------+----------------+====================+
//! | len: u32 LE    | crc: u32 LE    | payload (len bytes)|
//! +----------------+----------------+====================+
//! ```
//!
//! `len` is the payload length, `crc` the IEEE CRC-32 of the payload,
//! and the payload one compact JSON object with a `"type"` field.
//! [`FrameDecoder`] buffers an incoming byte stream and yields whole
//! payloads: a *short* frame (stream ends mid-record) is simply "not
//! yet" — never an error — while a frame whose CRC or length field is
//! corrupt is a hard [`WireError`] that the coordinator answers by
//! killing and respawning the worker on the other end. The same
//! prefix-tolerance property the journal proves for crashed writers
//! holds here for torn pipes: every byte-boundary truncation of a
//! valid frame decodes to "incomplete", not garbage (see the fuzz
//! test below).
//!
//! The JSON codec is deliberately tiny and self-contained (flat
//! objects of strings, unsigned integers, and booleans) so the task
//! crate stays free of database-layer dependencies.

use std::collections::HashMap;
use std::fmt;

/// Protocol version spoken by this build. A worker whose
/// [`Message::Hello`] carries a different version is rejected during
/// the handshake — mixed-version coordinator/worker pairs must not
/// exchange task frames.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a frame's payload length. A length field beyond
/// this is treated as corruption (it is far larger than any protocol
/// message), so a bit-flipped length cannot make the decoder buffer
/// gigabytes waiting for a frame that never completes.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Wire-level decode failures. Short frames are *not* errors (the
/// decoder just waits for more bytes); these are genuine corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The CRC-32 over the payload did not match the frame header.
    BadCrc {
        /// CRC stored in the frame header.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// The length field exceeds [`MAX_FRAME_LEN`].
    BadLength(u64),
    /// The payload was not a well-formed protocol message.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "frame crc mismatch (header {expected:#010x}, payload {actual:#010x})"
                )
            }
            WireError::BadLength(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::Malformed(why) => write!(f, "malformed message: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// IEEE CRC-32 (the journal's checksum), computed bitwise — the frame
/// rate is a handful of messages per task, so table-free is plenty.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Wraps a payload in a `[len][crc][payload]` frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Incremental frame decoder over a byte stream.
///
/// Feed arbitrary chunks with [`FrameDecoder::feed`]; pull complete
/// payloads with [`FrameDecoder::next_frame`]. Incomplete trailing
/// bytes are held until more arrive — mirroring the journal reader,
/// which stops cleanly at a torn tail instead of erroring.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends received bytes to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact consumed prefix before it grows unbounded.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Yields the next complete payload, `None` when the buffer holds
    /// only a frame prefix, or an error on corruption. After an error
    /// the stream is unusable — the caller should drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = self.buf.len() - self.pos;
        if avail < 8 {
            return Ok(None);
        }
        let header = &self.buf[self.pos..];
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 header bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 header bytes"));
        if len > MAX_FRAME_LEN {
            return Err(WireError::BadLength(len as u64));
        }
        if avail - 8 < len {
            return Ok(None);
        }
        let payload = self.buf[self.pos + 8..self.pos + 8 + len].to_vec();
        let actual = crc32(&payload);
        if actual != crc {
            return Err(WireError::BadCrc {
                expected: crc,
                actual,
            });
        }
        self.pos += 8 + len;
        Ok(Some(payload))
    }
}

/// A protocol message. The lifecycle of one task delivery is
/// `Dispatch` → (`Heartbeat`…) → `TaskResult`; the session brackets
/// are `Hello`/`HelloAck` at spawn and `Drain`/`Bye` at graceful
/// shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Worker → coordinator, first message after spawn (and, over
    /// reconnecting transports, after every fresh connection).
    Hello {
        /// Protocol version the worker speaks.
        protocol: u64,
        /// The worker's OS process id.
        pid: u64,
        /// Session token. `0` on a worker's first connection (the
        /// coordinator assigns one in [`Message::HelloAck`]); a
        /// reconnecting worker echoes its token so the coordinator
        /// can resume the session instead of treating the connection
        /// as a stranger. Pre-session peers simply omit the field —
        /// it decodes as `0`.
        session: u64,
    },
    /// Coordinator → worker handshake completion.
    HelloAck {
        /// Generation the coordinator assigned this worker process
        /// (bumped on every respawn; stamps results so stale
        /// generations are recognizable).
        generation: u64,
        /// Interval at which the worker must send [`Message::Heartbeat`].
        heartbeat_ms: u64,
        /// Session token the coordinator assigned (stable across
        /// reconnects of the same worker; echoed in the worker's next
        /// [`Message::Hello`]). `0` from pre-session coordinators.
        session: u64,
    },
    /// Coordinator → worker task delivery.
    Dispatch {
        /// Coordinator-unique job id.
        job: u64,
        /// 1-based delivery number (`> 1` means redelivered).
        delivery: u64,
        /// Generation of the worker the job was dispatched to.
        generation: u64,
        /// Task name (for provenance and logs).
        name: String,
        /// Handler kind the worker resolves in its registry.
        kind: String,
        /// Opaque serialized task input.
        payload: String,
        /// Task timeout in milliseconds, `0` for none.
        timeout_ms: u64,
    },
    /// Worker → coordinator liveness beacon.
    Heartbeat {
        /// The worker's OS process id.
        pid: u64,
        /// Job id currently executing, `0` when idle.
        busy: u64,
    },
    /// Worker → coordinator result/ack for a dispatch.
    TaskResult {
        /// Job id from the dispatch.
        job: u64,
        /// Delivery number from the dispatch.
        delivery: u64,
        /// Generation from the handshake (stale-generation detection).
        generation: u64,
        /// Whether the handler succeeded.
        ok: bool,
        /// Handler output on success.
        output: String,
        /// Handler error on failure.
        error: String,
    },
    /// Coordinator → worker: finish the current task (if any), say
    /// [`Message::Bye`], and exit.
    Drain,
    /// Worker → coordinator: graceful exit imminent.
    Bye {
        /// The worker's OS process id.
        pid: u64,
    },
}

impl Message {
    /// Serializes the message to its JSON payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::from("{");
        let mut first = true;
        let mut put = |out: &mut String, key: &str, value: &JsonValue| {
            if !first {
                out.push(',');
            }
            first = false;
            push_json_string(out, key);
            out.push(':');
            match value {
                JsonValue::Str(s) => push_json_string(out, s),
                JsonValue::Num(n) => out.push_str(&n.to_string()),
                JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        };
        let fields = self.fields();
        for (key, value) in &fields {
            put(&mut out, key, value);
        }
        out.push('}');
        out.into_bytes()
    }

    /// The message framed and ready to write to a pipe.
    pub fn to_frame(&self) -> Vec<u8> {
        encode_frame(&self.encode())
    }

    fn fields(&self) -> Vec<(&'static str, JsonValue)> {
        use JsonValue::{Bool, Num, Str};
        match self {
            Message::Hello {
                protocol,
                pid,
                session,
            } => vec![
                ("type", Str("hello".into())),
                ("protocol", Num(*protocol)),
                ("pid", Num(*pid)),
                ("session", Num(*session)),
            ],
            Message::HelloAck {
                generation,
                heartbeat_ms,
                session,
            } => vec![
                ("type", Str("hello-ack".into())),
                ("generation", Num(*generation)),
                ("heartbeatMs", Num(*heartbeat_ms)),
                ("session", Num(*session)),
            ],
            Message::Dispatch {
                job,
                delivery,
                generation,
                name,
                kind,
                payload,
                timeout_ms,
            } => {
                vec![
                    ("type", Str("dispatch".into())),
                    ("job", Num(*job)),
                    ("delivery", Num(*delivery)),
                    ("generation", Num(*generation)),
                    ("name", Str(name.clone())),
                    ("kind", Str(kind.clone())),
                    ("payload", Str(payload.clone())),
                    ("timeoutMs", Num(*timeout_ms)),
                ]
            }
            Message::Heartbeat { pid, busy } => vec![
                ("type", Str("heartbeat".into())),
                ("pid", Num(*pid)),
                ("busy", Num(*busy)),
            ],
            Message::TaskResult {
                job,
                delivery,
                generation,
                ok,
                output,
                error,
            } => vec![
                ("type", Str("result".into())),
                ("job", Num(*job)),
                ("delivery", Num(*delivery)),
                ("generation", Num(*generation)),
                ("ok", Bool(*ok)),
                ("output", Str(output.clone())),
                ("error", Str(error.clone())),
            ],
            Message::Drain => vec![("type", Str("drain".into()))],
            Message::Bye { pid } => {
                vec![("type", Str("bye".into())), ("pid", Num(*pid))]
            }
        }
    }

    /// Parses a JSON payload back into a message.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] when the payload is not valid JSON,
    /// the `type` is unknown, or a required field is missing.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| WireError::Malformed("payload is not utf-8".to_owned()))?;
        let fields = parse_flat_object(text)?;
        let str_field = |name: &str| -> Result<String, WireError> {
            match fields.get(name) {
                Some(JsonValue::Str(s)) => Ok(s.clone()),
                _ => Err(WireError::Malformed(format!(
                    "missing string field `{name}`"
                ))),
            }
        };
        let num_field = |name: &str| -> Result<u64, WireError> {
            match fields.get(name) {
                Some(JsonValue::Num(n)) => Ok(*n),
                _ => Err(WireError::Malformed(format!(
                    "missing numeric field `{name}`"
                ))),
            }
        };
        let bool_field = |name: &str| -> Result<bool, WireError> {
            match fields.get(name) {
                Some(JsonValue::Bool(b)) => Ok(*b),
                _ => Err(WireError::Malformed(format!(
                    "missing boolean field `{name}`"
                ))),
            }
        };
        // `session` arrived with the TCP transport; frames from
        // pre-session peers omit it, which decodes as token 0.
        let opt_num_field = |name: &str| -> u64 {
            match fields.get(name) {
                Some(JsonValue::Num(n)) => *n,
                _ => 0,
            }
        };
        match str_field("type")?.as_str() {
            "hello" => Ok(Message::Hello {
                protocol: num_field("protocol")?,
                pid: num_field("pid")?,
                session: opt_num_field("session"),
            }),
            "hello-ack" => Ok(Message::HelloAck {
                generation: num_field("generation")?,
                heartbeat_ms: num_field("heartbeatMs")?,
                session: opt_num_field("session"),
            }),
            "dispatch" => Ok(Message::Dispatch {
                job: num_field("job")?,
                delivery: num_field("delivery")?,
                generation: num_field("generation")?,
                name: str_field("name")?,
                kind: str_field("kind")?,
                payload: str_field("payload")?,
                timeout_ms: num_field("timeoutMs")?,
            }),
            "heartbeat" => Ok(Message::Heartbeat {
                pid: num_field("pid")?,
                busy: num_field("busy")?,
            }),
            "result" => Ok(Message::TaskResult {
                job: num_field("job")?,
                delivery: num_field("delivery")?,
                generation: num_field("generation")?,
                ok: bool_field("ok")?,
                output: str_field("output")?,
                error: str_field("error")?,
            }),
            "drain" => Ok(Message::Drain),
            "bye" => Ok(Message::Bye {
                pid: num_field("pid")?,
            }),
            other => Err(WireError::Malformed(format!(
                "unknown message type `{other}`"
            ))),
        }
    }
}

/// A value in a flat protocol object.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JsonValue {
    Str(String),
    Num(u64),
    Bool(bool),
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one flat JSON object (`{"k": "v", "n": 1, "b": true}`) —
/// the only shape protocol payloads take. Nested containers are
/// rejected as malformed.
fn parse_flat_object(text: &str) -> Result<HashMap<String, JsonValue>, WireError> {
    let malformed = |why: &str| WireError::Malformed(why.to_owned());
    let mut chars = text.chars().peekable();
    let mut fields = HashMap::new();
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err(malformed("expected `{`"));
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(malformed("expected `:` after key"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some('t') | Some('f') => {
                let word: String =
                    std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    _ => return Err(malformed("expected `true` or `false`")),
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let digits: String =
                    std::iter::from_fn(|| chars.next_if(char::is_ascii_digit)).collect();
                JsonValue::Num(
                    digits
                        .parse()
                        .map_err(|_| malformed("number out of range"))?,
                )
            }
            _ => return Err(malformed("unsupported value (flat objects only)")),
        };
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            _ => return Err(malformed("expected `,` or `}`")),
        }
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.next_if(|c| c.is_whitespace()).is_some() {}
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, WireError> {
    let malformed = |why: &str| WireError::Malformed(why.to_owned());
    if chars.next() != Some('"') {
        return Err(malformed("expected string"));
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err(malformed("unterminated string")),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('u') => {
                    let code = parse_hex4(chars)?;
                    // Combine a surrogate pair when one follows;
                    // otherwise fall back to the replacement char.
                    let ch = if (0xD800..0xDC00).contains(&code) {
                        let low = if chars.peek() == Some(&'\\') {
                            chars.next();
                            if chars.next() == Some('u') {
                                parse_hex4(chars)?
                            } else {
                                0
                            }
                        } else {
                            0
                        };
                        if (0xDC00..0xE000).contains(&low) {
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined).unwrap_or('\u{FFFD}')
                        } else {
                            '\u{FFFD}'
                        }
                    } else {
                        char::from_u32(code).unwrap_or('\u{FFFD}')
                    };
                    out.push(ch);
                }
                _ => return Err(malformed("unknown escape")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn parse_hex4(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<u32, WireError> {
    let mut code = 0u32;
    for _ in 0..4 {
        let digit = chars
            .next()
            .and_then(|c| c.to_digit(16))
            .ok_or_else(|| WireError::Malformed("bad \\u escape".to_owned()))?;
        code = code * 16 + digit;
    }
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                protocol: PROTOCOL_VERSION,
                pid: 4242,
                session: 3,
            },
            Message::HelloAck {
                generation: 7,
                heartbeat_ms: 20,
                session: 3,
            },
            Message::Dispatch {
                job: 9,
                delivery: 2,
                generation: 7,
                name: "campaign/abc123".to_owned(),
                kind: "campaign-boot".to_owned(),
                payload: "{\"params\":[\"kvm\",\"2\"]}".to_owned(),
                timeout_ms: 0,
            },
            Message::Heartbeat { pid: 4242, busy: 9 },
            Message::TaskResult {
                job: 9,
                delivery: 2,
                generation: 7,
                ok: true,
                output: "outcome=booted ticks=100".to_owned(),
                error: String::new(),
            },
            Message::Drain,
            Message::Bye { pid: 4242 },
        ]
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Same vectors the journal's implementation is pinned to.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn messages_round_trip() {
        for msg in sample_messages() {
            let decoded = Message::decode(&msg.encode()).unwrap();
            assert_eq!(decoded, msg, "round trip for {msg:?}");
        }
    }

    #[test]
    fn strings_with_hostile_contents_round_trip() {
        let msg = Message::TaskResult {
            job: 1,
            delivery: 1,
            generation: 1,
            ok: false,
            output: String::new(),
            error: "quotes \" slashes \\ newline \n tab \t nul \u{0} unicode ✓".to_owned(),
        };
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn frames_round_trip_through_the_decoder() {
        let mut decoder = FrameDecoder::new();
        for msg in sample_messages() {
            decoder.feed(&msg.to_frame());
        }
        for msg in sample_messages() {
            let payload = decoder.next_frame().unwrap().expect("frame available");
            assert_eq!(Message::decode(&payload).unwrap(), msg);
        }
        assert_eq!(decoder.next_frame().unwrap(), None);
    }

    #[test]
    fn split_feeds_reassemble() {
        // Deliver one frame a single byte at a time: no prefix may
        // error or produce a message early.
        let msg = &sample_messages()[2];
        let frame = msg.to_frame();
        let mut decoder = FrameDecoder::new();
        for (i, byte) in frame.iter().enumerate() {
            decoder.feed(std::slice::from_ref(byte));
            let step = decoder.next_frame().unwrap();
            if i + 1 < frame.len() {
                assert!(step.is_none(), "no message before byte {}", i + 1);
            } else {
                assert_eq!(Message::decode(&step.unwrap()).unwrap(), *msg);
            }
        }
    }

    /// The satellite fuzz test: every byte-boundary truncation of a
    /// valid frame must decode as "incomplete" — mirroring the
    /// journal's torn-tail tolerance — and never as an error or a
    /// bogus message.
    #[test]
    fn truncation_at_every_byte_boundary_is_incomplete_not_corrupt() {
        let frame = sample_messages()[2].to_frame();
        for cut in 0..frame.len() {
            let mut decoder = FrameDecoder::new();
            decoder.feed(&frame[..cut]);
            assert_eq!(
                decoder.next_frame(),
                Ok(None),
                "truncation after {cut} bytes must read as a torn tail"
            );
            // The remainder arriving later completes the frame.
            decoder.feed(&frame[cut..]);
            let payload = decoder
                .next_frame()
                .unwrap()
                .expect("complete after the rest");
            assert_eq!(Message::decode(&payload).unwrap(), sample_messages()[2]);
        }
    }

    /// Companion fuzz: flipping any single byte of a frame must never
    /// yield a decoded message — only "incomplete" (length grew) or a
    /// hard corruption error (CRC broke).
    #[test]
    fn corruption_at_every_byte_is_never_a_valid_message() {
        let frame = sample_messages()[2].to_frame();
        for i in 0..frame.len() {
            let mut bent = frame.clone();
            bent[i] ^= 0x40;
            let mut decoder = FrameDecoder::new();
            decoder.feed(&bent);
            if let Ok(Some(_)) = decoder.next_frame() {
                panic!("byte {i} corruption decoded as a whole frame");
            }
        }
    }

    #[test]
    fn garbage_prefix_is_a_hard_error() {
        // A stray small-length header with a wrong CRC (e.g. a worker
        // printing to stdout) must surface as corruption, not hang.
        let mut decoder = FrameDecoder::new();
        decoder.feed(&[1, 0, 0, 0, 0, 0, 0, 0, b'Z']);
        assert!(matches!(
            decoder.next_frame(),
            Err(WireError::BadCrc { .. })
        ));
    }

    #[test]
    fn absurd_length_is_rejected_immediately() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&u32::MAX.to_le_bytes());
        decoder.feed(&[0, 0, 0, 0]);
        assert!(matches!(decoder.next_frame(), Err(WireError::BadLength(_))));
    }

    #[test]
    fn unknown_message_type_is_malformed() {
        let err = Message::decode(b"{\"type\":\"warp\"}").unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)));
        assert!(err.to_string().contains("warp"));
    }

    #[test]
    fn nested_json_is_rejected() {
        assert!(Message::decode(b"{\"type\":{\"nested\":1}}").is_err());
        assert!(Message::decode(b"not json at all").is_err());
    }

    #[test]
    fn field_order_does_not_matter() {
        let msg = Message::decode(b"{\"pid\":12,\"protocol\":1,\"type\":\"hello\"}").unwrap();
        assert_eq!(
            msg,
            Message::Hello {
                protocol: 1,
                pid: 12,
                session: 0
            }
        );
    }

    #[test]
    fn pre_session_frames_decode_with_token_zero() {
        // Frames from peers that predate the session field must still
        // parse: the token defaults to 0 (= "no session").
        let hello = Message::decode(b"{\"type\":\"hello\",\"protocol\":1,\"pid\":7}").unwrap();
        assert_eq!(
            hello,
            Message::Hello {
                protocol: 1,
                pid: 7,
                session: 0
            }
        );
        let ack = Message::decode(b"{\"type\":\"hello-ack\",\"generation\":2,\"heartbeatMs\":20}")
            .unwrap();
        assert_eq!(
            ack,
            Message::HelloAck {
                generation: 2,
                heartbeat_ms: 20,
                session: 0
            }
        );
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        let mut decoder = FrameDecoder::new();
        let frame = Message::Drain.to_frame();
        for _ in 0..2048 {
            decoder.feed(&frame);
            assert!(decoder.next_frame().unwrap().is_some());
        }
        // Unbounded accumulation would hold all 2048 frames; the
        // compaction keeps the buffer near its 4 KiB threshold.
        assert!(decoder.buf.len() < 8192, "buffer stays bounded");
        assert_eq!(decoder.pending(), 0);
    }
}
