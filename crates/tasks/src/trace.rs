//! Scheduler tracepoint facade for the simart-analyze race detector.
//!
//! Every hook forwards to the `tracepoint` crate under the
//! `race-trace` feature and compiles to an empty `#[inline(always)]`
//! function without it, so instrumentation call sites stay
//! feature-agnostic and cost nothing in normal builds.

/// Allocates a process-unique trace id for a task or queue (`0` when
/// tracing is compiled out).
#[inline(always)]
pub(crate) fn fresh_id() -> u64 {
    #[cfg(feature = "race-trace")]
    {
        tracepoint::fresh_id()
    }
    #[cfg(not(feature = "race-trace"))]
    {
        0
    }
}

/// A task was handed to a scheduler.
#[inline(always)]
pub(crate) fn task_submit(_id: u64) {
    #[cfg(feature = "race-trace")]
    tracepoint::record(tracepoint::Op::TaskSubmit(_id));
}

/// An execution attempt of a task began (first or retry).
#[inline(always)]
pub(crate) fn task_start(_id: u64) {
    #[cfg(feature = "race-trace")]
    tracepoint::record(tracepoint::Op::TaskStart(_id));
}

/// A task produced its terminal report.
#[inline(always)]
pub(crate) fn task_finish(_id: u64) {
    #[cfg(feature = "race-trace")]
    tracepoint::record(tracepoint::Op::TaskFinish(_id));
}

/// A failed task was scheduled for another attempt.
#[inline(always)]
pub(crate) fn task_requeue(_id: u64) {
    #[cfg(feature = "race-trace")]
    tracepoint::record(tracepoint::Op::TaskRequeue(_id));
}

/// A worker took the lease on a dequeued task (supervision hand-off:
/// everything the worker did before granting happens-before the
/// supervisor's revoke).
#[inline(always)]
pub(crate) fn lease_grant(_id: u64) {
    #[cfg(feature = "race-trace")]
    tracepoint::record(tracepoint::Op::LeaseGrant(_id));
}

/// The supervisor revoked an expired or orphaned lease (redelivery or
/// dead-letter follows).
#[inline(always)]
pub(crate) fn lease_revoke(_id: u64) {
    #[cfg(feature = "race-trace")]
    tracepoint::record(tracepoint::Op::LeaseRevoke(_id));
}

/// The remote coordinator wrote a task dispatch onto a worker
/// process's pipe (cross-process hand-off: everything the coordinator
/// did before dispatching happens-before the worker's ack).
#[inline(always)]
pub(crate) fn remote_dispatch(_id: u64) {
    #[cfg(feature = "race-trace")]
    tracepoint::record(tracepoint::Op::RemoteDispatch(_id));
}

/// The remote coordinator accepted a worker process's result frame
/// for a dispatched task.
#[inline(always)]
pub(crate) fn remote_ack(_id: u64) {
    #[cfg(feature = "race-trace")]
    tracepoint::record(tracepoint::Op::RemoteAck(_id));
}

/// A remote worker session reconnected over a fresh transport
/// connection (join-then-send barrier: the coordinator observes all
/// frames the old connection delivered before any frame it writes on
/// the new one).
#[inline(always)]
pub(crate) fn remote_reconnect(_id: u64) {
    #[cfg(feature = "race-trace")]
    tracepoint::record(tracepoint::Op::RemoteReconnect(_id));
}

/// A job entered a pool/broker work queue.
#[inline(always)]
pub(crate) fn enqueue(_queue: u64) {
    #[cfg(feature = "race-trace")]
    tracepoint::record(tracepoint::Op::Enqueue(_queue));
}

/// A job left a pool/broker work queue.
#[inline(always)]
pub(crate) fn dequeue(_queue: u64) {
    #[cfg(feature = "race-trace")]
    tracepoint::record(tracepoint::Op::Dequeue(_queue));
}
