//! # simart-tasks
//!
//! Task scheduling for simulation runs — the analogue of the paper's
//! `gem5art-tasks` package, which hands run objects to Celery, the
//! Python `multiprocessing` library, or no scheduler at all.
//!
//! Three schedulers share one [`Scheduler`] interface:
//!
//! * [`SerialScheduler`] — runs tasks inline ("no job scheduler at
//!   all");
//! * [`PoolScheduler`] — a fixed thread pool (the `multiprocessing`
//!   analogue);
//! * [`BrokerScheduler`] — a broker queue drained by detached workers,
//!   with retries and per-task timeouts (the Celery analogue).
//!
//! Every submission returns a [`TaskHandle`] whose
//! [`TaskHandle::wait`] yields the final [`TaskReport`]. Like the
//! paper's framework, a task that exceeds its timeout is *terminated*
//! (reported as [`TaskState::TimedOut`]) rather than left to run the
//! cluster dry.
//!
//! Fault tolerance is first-class: a [`RetryPolicy`] gives tasks
//! deterministic backoff schedules (fixed or exponential, seeded
//! jitter, per-attempt and total deadlines), and a seeded
//! [`FaultInjector`] deterministically injects panics, spurious
//! errors, and delays to exercise those paths. Reports carry the full
//! per-attempt history ([`AttemptRecord`]), which is bit-identical
//! across runs with equal seeds.
//!
//! The broker additionally *supervises* its workers: dequeued jobs
//! carry leases, a heartbeat supervisor redelivers work whose lease
//! expired or whose worker died (up to
//! [`SupervisorConfig::max_redeliveries`]), respawns dead workers, and
//! reaps detached threads. Tasks that exhaust redelivery are
//! dead-lettered as [`TaskState::Quarantined`]. See
//! [`BrokerScheduler::with_config`].
//!
//! ```
//! use simart_tasks::{PoolScheduler, Scheduler, Task};
//!
//! let pool = PoolScheduler::new(4);
//! let handles: Vec<_> = (0..8)
//!     .map(|i| pool.submit(Task::new(format!("sim-{i}"), move || Ok(format!("ticks={}", i * 100)))))
//!     .collect();
//! for handle in handles {
//!     assert!(handle.wait().state.is_success());
//! }
//! ```

#![deny(missing_docs)]

mod broker;
mod fault;
mod pool;
pub mod remote;
mod retry;
mod serial;
mod supervise;
mod task;
pub(crate) mod trace;
pub mod transport;
pub mod wire;

pub use broker::BrokerScheduler;
pub use fault::{Fault, FaultInjector, NetFault};
pub use pool::PoolScheduler;
pub use remote::{
    worker_main, worker_main_connect, HandlerRegistry, RemoteConfig, RemoteEvent, RemoteScheduler,
    RemoteStats, RemoteTaskSpec, SubmitError, WorkerCommand, WorkerJob,
};
pub use retry::{Backoff, RetryPolicy};
pub use serial::SerialScheduler;
pub use supervise::SupervisorConfig;
pub use task::{AttemptDisposition, AttemptRecord, Task, TaskHandle, TaskReport, TaskState};
pub use transport::{ChaosReader, ChaosWriter, TransportKind, WORKER_SESSION_ENV};

/// A task scheduler: accepts tasks, returns handles to their results.
pub trait Scheduler {
    /// Submits a task for execution.
    fn submit(&self, task: Task) -> TaskHandle;

    /// A short name for reports ("serial", "pool", "broker").
    fn name(&self) -> &'static str;
}

/// Submits every task and waits for all reports, preserving order.
pub fn run_all<S: Scheduler + ?Sized>(
    scheduler: &S,
    tasks: impl IntoIterator<Item = Task>,
) -> Vec<TaskReport> {
    let handles: Vec<TaskHandle> = tasks.into_iter().map(|t| scheduler.submit(t)).collect();
    handles.into_iter().map(TaskHandle::wait).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn schedulers() -> Vec<Box<dyn Scheduler>> {
        vec![
            Box::new(SerialScheduler::new()),
            Box::new(PoolScheduler::new(4)),
            Box::new(BrokerScheduler::new(4)),
        ]
    }

    #[test]
    fn all_schedulers_run_tasks_to_completion() {
        for scheduler in schedulers() {
            let reports = run_all(
                scheduler.as_ref(),
                (0..10).map(|i| Task::new(format!("t{i}"), move || Ok(format!("out-{i}")))),
            );
            assert_eq!(reports.len(), 10, "{}", scheduler.name());
            for (i, report) in reports.iter().enumerate() {
                assert!(report.state.is_success());
                assert_eq!(report.output.as_deref(), Some(format!("out-{i}").as_str()));
                assert_eq!(report.attempts, 1);
            }
        }
    }

    #[test]
    fn failures_are_reported_not_panicked() {
        for scheduler in schedulers() {
            let report = scheduler
                .submit(Task::new("boom", || Err("simulation exploded".to_owned())))
                .wait();
            assert_eq!(report.state, TaskState::Failed, "{}", scheduler.name());
            assert_eq!(report.error.as_deref(), Some("simulation exploded"));
        }
    }

    #[test]
    fn panicking_tasks_are_contained() {
        for scheduler in schedulers() {
            let report = scheduler
                .submit(Task::new("panic", || panic!("unexpected condition")))
                .wait();
            assert_eq!(report.state, TaskState::Failed, "{}", scheduler.name());
            assert!(report.error.as_deref().unwrap_or("").contains("panic"));
        }
    }

    #[test]
    fn timeouts_terminate_runaway_tasks() {
        for scheduler in schedulers() {
            let task = Task::new("runaway", || {
                std::thread::sleep(Duration::from_secs(30));
                Ok(String::new())
            })
            .timeout(Duration::from_millis(50));
            let report = scheduler.submit(task).wait();
            assert_eq!(report.state, TaskState::TimedOut, "{}", scheduler.name());
            assert!(report.duration < Duration::from_secs(5));
        }
    }

    #[test]
    fn retry_policies_apply_on_every_scheduler() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        for scheduler in schedulers() {
            let counter = Arc::new(AtomicU32::new(0));
            let seen = Arc::clone(&counter);
            let policy = RetryPolicy::fixed(Duration::from_millis(1)).max_attempts(4);
            let report = scheduler
                .submit(
                    Task::new("flaky", move || {
                        if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                            Err("transient".to_owned())
                        } else {
                            Ok("recovered".to_owned())
                        }
                    })
                    .retry_policy(policy),
                )
                .wait();
            assert!(report.state.is_success(), "{}", scheduler.name());
            assert_eq!(report.attempts, 3, "{}", scheduler.name());
            assert_eq!(report.history.len(), 3, "{}", scheduler.name());
            counter.store(0, Ordering::SeqCst);
        }
    }

    #[test]
    fn fault_injection_is_identical_across_schedulers() {
        use std::sync::Arc;
        let history_on = |scheduler: Box<dyn Scheduler>| {
            let injector = Arc::new(FaultInjector::new(77).errors(0.6));
            scheduler
                .submit(
                    Task::new("replayed", || Ok("ok".to_owned()))
                        .fault_injector(injector)
                        .retries(6),
                )
                .wait()
                .history
        };
        let histories: Vec<_> = schedulers().into_iter().map(history_on).collect();
        assert_eq!(histories[0], histories[1]);
        assert_eq!(histories[1], histories[2]);
    }

    #[cfg(feature = "race-trace")]
    #[test]
    fn schedulers_emit_lifecycle_tracepoints() {
        use tracepoint::Op;
        tracepoint::enable();
        let tasks: Vec<Task> = (0..3)
            .map(|i| Task::new(format!("traced-{i}"), || Ok(String::new())))
            .collect();
        let ids: Vec<u64> = tasks.iter().map(|t| t.trace_id).collect();
        let reports = run_all(&PoolScheduler::new(2), tasks);
        let events = tracepoint::drain();
        tracepoint::disable();
        assert!(reports.iter().all(|r| r.state.is_success()));
        // The trace buffer is global and other tests may run (and
        // record) concurrently, so count only events for our task ids.
        let count = |f: fn(&Op) -> bool| {
            events
                .iter()
                .filter(|e| f(&e.op) && ids.contains(&e.op.object()))
                .count()
        };
        assert_eq!(count(|op| matches!(op, Op::TaskSubmit(_))), 3);
        assert_eq!(count(|op| matches!(op, Op::TaskStart(_))), 3);
        assert_eq!(count(|op| matches!(op, Op::TaskFinish(_))), 3);
        let any = |f: fn(&Op) -> bool| events.iter().filter(|e| f(&e.op)).count();
        assert!(any(|op| matches!(op, Op::Enqueue(_))) >= 3);
        assert!(any(|op| matches!(op, Op::Dequeue(_))) >= 3);
        assert!(any(|op| matches!(op, Op::ChanSend(_))) >= 3);
    }

    #[cfg(feature = "observe")]
    #[test]
    fn schedulers_record_profiling_metrics() {
        use simart_observe as observe;
        observe::enable();
        let pool_reports = run_all(
            &PoolScheduler::new(2),
            (0..4).map(|i| Task::new(format!("m{i}"), || Ok(String::new()))),
        );
        let broker = BrokerScheduler::new(2);
        let broker_reports = run_all(
            &broker,
            (0..2).map(|i| Task::new(format!("b{i}"), || Ok(String::new()))),
        );
        observe::disable();
        assert!(pool_reports
            .iter()
            .chain(&broker_reports)
            .all(|r| r.state.is_success()));
        let snap = observe::snapshot();
        for name in [
            "tasks.queue_wait_us",
            "tasks.run_time_us",
            "broker.queue_latency_us",
        ] {
            match snap.metrics.get(name) {
                Some(observe::MetricValue::Histogram(h)) => {
                    assert!(h.count >= 2, "{name} count = {}", h.count)
                }
                other => panic!("{name} missing or wrong kind: {other:?}"),
            }
        }
        assert_eq!(
            snap.metrics.get("pool.enqueued"),
            Some(&observe::MetricValue::Counter(4))
        );
        assert_eq!(
            snap.metrics.get("broker.enqueued"),
            Some(&observe::MetricValue::Counter(2))
        );
        observe::reset();
    }

    #[test]
    fn pool_drop_drains_while_broker_shutdown_discards() {
        // Side-by-side pin of the two shutdown semantics: a dropped
        // pool runs every queued task to completion, while a broker
        // told to shut down discards its queue and synthesizes failure
        // reports. Both use one gated worker so submissions stay
        // queued until we decide their fate.
        use crossbeam::channel::unbounded;
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;

        let pool_ran = Arc::new(AtomicU32::new(0));
        {
            let pool = PoolScheduler::new(1);
            let (gate_tx, gate_rx) = unbounded::<()>();
            let _gated = pool.submit(Task::new("gate", move || {
                let _ = gate_rx.recv();
                Ok(String::new())
            }));
            for i in 0..3 {
                let ran = Arc::clone(&pool_ran);
                let _ = pool.submit(Task::new(format!("pool-{i}"), move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    Ok(String::new())
                }));
            }
            gate_tx.send(()).unwrap();
            // Pool dropped here: queued tasks drain to completion.
        }
        assert_eq!(
            pool_ran.load(Ordering::SeqCst),
            3,
            "pool drop drains the queue"
        );

        let broker_ran = Arc::new(AtomicU32::new(0));
        let broker = BrokerScheduler::new(1);
        let (gate_tx, gate_rx) = unbounded::<()>();
        let gated = broker.submit(Task::new("gate", move || {
            let _ = gate_rx.recv();
            Ok(String::new())
        }));
        let queued: Vec<_> = (0..3)
            .map(|i| {
                let ran = Arc::clone(&broker_ran);
                broker.submit(Task::new(format!("broker-{i}"), move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    Ok(String::new())
                }))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            broker.shutdown_now(),
            3,
            "broker shutdown discards the queue"
        );
        gate_tx.send(()).unwrap();
        assert!(gated.wait().state.is_success());
        for handle in queued {
            assert_eq!(handle.wait().state, TaskState::Failed);
        }
        assert_eq!(
            broker_ran.load(Ordering::SeqCst),
            0,
            "discarded tasks never ran"
        );
    }

    #[test]
    fn scheduler_names() {
        let names: Vec<&str> = schedulers().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["serial", "pool", "broker"]);
    }
}
