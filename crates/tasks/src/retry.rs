//! Retry policies: how many attempts a task gets and how long to wait
//! between them.
//!
//! A [`RetryPolicy`] describes a *deterministic* backoff schedule:
//! fixed or exponential delays, an optional cap, and seeded jitter.
//! Determinism matters for reproducible experiments — two campaigns
//! launched with the same policy (and seed) retry at exactly the same
//! offsets and produce identical attempt histories.
//!
//! The schedule is monotone non-decreasing by construction (each delay
//! is at least the previous one) and never exceeds the cap, so retries
//! can only ever get *less* aggressive.

use std::fmt;
use std::time::Duration;

/// The shape of the delay sequence between attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backoff {
    /// The same delay before every retry.
    Fixed {
        /// Delay before each retry.
        delay: Duration,
    },
    /// Delays grow geometrically: `base * factor^k` before the k-th
    /// retry (k = 0 for the first retry).
    Exponential {
        /// Delay before the first retry.
        base: Duration,
        /// Geometric growth factor (≥ 1.0).
        factor: f64,
    },
}

/// When and how often a task is retried after an error.
///
/// Panics and plain errors are retried; per-attempt timeouts are
/// terminal (a run that outlived its deadline once will do so again).
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    backoff: Backoff,
    max_attempts: u32,
    cap: Option<Duration>,
    jitter: f64,
    seed: u64,
    attempt_deadline: Option<Duration>,
    total_deadline: Option<Duration>,
}

impl RetryPolicy {
    /// No retries: the task gets exactly one attempt.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            backoff: Backoff::Fixed {
                delay: Duration::ZERO,
            },
            max_attempts: 1,
            cap: None,
            jitter: 0.0,
            seed: 0,
            attempt_deadline: None,
            total_deadline: None,
        }
    }

    /// Up to `max_attempts` attempts with no delay between them
    /// (the legacy `Task::retries` behaviour).
    pub fn immediate(max_attempts: u32) -> RetryPolicy {
        RetryPolicy::none().max_attempts(max_attempts)
    }

    /// Fixed `delay` between attempts; 3 attempts by default.
    pub fn fixed(delay: Duration) -> RetryPolicy {
        RetryPolicy {
            backoff: Backoff::Fixed { delay },
            max_attempts: 3,
            ..RetryPolicy::none()
        }
    }

    /// Exponential backoff starting at `base`, doubling each retry,
    /// capped at 60 s; 3 attempts by default.
    pub fn exponential(base: Duration) -> RetryPolicy {
        RetryPolicy {
            backoff: Backoff::Exponential { base, factor: 2.0 },
            max_attempts: 3,
            cap: Some(Duration::from_secs(60)),
            ..RetryPolicy::none()
        }
    }

    /// Sets the total number of attempts (clamped to at least 1).
    pub fn max_attempts(mut self, attempts: u32) -> RetryPolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the exponential growth factor (clamped to at least 1.0);
    /// no effect on fixed backoff.
    pub fn factor(mut self, factor: f64) -> RetryPolicy {
        if let Backoff::Exponential { base, .. } = self.backoff {
            self.backoff = Backoff::Exponential {
                base,
                factor: factor.max(1.0),
            };
        }
        self
    }

    /// Caps every delay (jitter included) at `cap`.
    pub fn cap(mut self, cap: Duration) -> RetryPolicy {
        self.cap = Some(cap);
        self
    }

    /// Adds multiplicative jitter: each delay is stretched by up to
    /// `fraction` (clamped to [0, 1]) of itself, deterministically from
    /// the seed.
    pub fn jitter(mut self, fraction: f64) -> RetryPolicy {
        self.jitter = fraction.clamp(0.0, 1.0);
        self
    }

    /// Seeds the jitter stream. Equal seeds give bit-identical
    /// schedules.
    pub fn seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Deadline for each individual attempt. A task-level timeout, if
    /// set, takes precedence.
    pub fn attempt_deadline(mut self, deadline: Duration) -> RetryPolicy {
        self.attempt_deadline = Some(deadline);
        self
    }

    /// Wall-clock budget across *all* attempts and backoff sleeps; once
    /// exhausted no further retry is scheduled.
    pub fn total_deadline(mut self, deadline: Duration) -> RetryPolicy {
        self.total_deadline = Some(deadline);
        self
    }

    /// Total attempts this policy allows (≥ 1).
    pub fn attempts_allowed(&self) -> u32 {
        self.max_attempts
    }

    /// The per-attempt deadline, if any.
    pub fn per_attempt_deadline(&self) -> Option<Duration> {
        self.attempt_deadline
    }

    /// The all-attempts wall-clock budget, if any.
    pub fn total_budget(&self) -> Option<Duration> {
        self.total_deadline
    }

    /// The jitter fraction in [0, 1].
    pub fn jitter_fraction(&self) -> f64 {
        self.jitter
    }

    /// The jitter seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The delay slept before `attempt` (1-based). Attempt 1 always
    /// starts immediately.
    pub fn delay_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        *self
            .schedule(attempt)
            .last()
            .expect("schedule(n >= 2) is non-empty")
    }

    /// The full backoff schedule: delays before attempts `2..=attempts`
    /// (attempt 1 has no delay, so the vector has `attempts - 1`
    /// entries). Monotone non-decreasing and bounded by the cap.
    pub fn schedule(&self, attempts: u32) -> Vec<Duration> {
        let mut delays = Vec::new();
        let mut prev = Duration::ZERO;
        for attempt in 2..=attempts {
            let retry_index = attempt - 2;
            let raw = match self.backoff {
                Backoff::Fixed { delay } => delay,
                Backoff::Exponential { base, factor } => {
                    let scaled = base.as_secs_f64() * factor.powi(retry_index as i32);
                    // Saturate far past any sensible cap instead of
                    // overflowing Duration::from_secs_f64.
                    Duration::from_secs_f64(scaled.min(1e9))
                }
            };
            let mut delay = if self.jitter > 0.0 {
                let stretch = 1.0 + self.jitter * unit_draw(self.seed, attempt);
                Duration::from_secs_f64(raw.as_secs_f64() * stretch)
            } else {
                raw
            };
            if let Some(cap) = self.cap {
                delay = delay.min(cap);
            }
            // Monotone by construction: never back off less than before.
            delay = delay.max(prev);
            prev = delay;
            delays.push(delay);
        }
        delays
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

impl fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.backoff {
            Backoff::Fixed { delay } => {
                write!(f, "fixed({delay:?}) x{}", self.max_attempts)
            }
            Backoff::Exponential { base, factor } => {
                write!(f, "exponential({base:?}, x{factor}) x{}", self.max_attempts)
            }
        }
    }
}

/// Deterministic draw in [0, 1) from `(seed, attempt)` — the SplitMix64
/// finalizer over a golden-ratio-stepped counter.
fn unit_draw(seed: u64, attempt: u32) -> f64 {
    let mut z = seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_allows_one_attempt_with_no_delay() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.attempts_allowed(), 1);
        assert_eq!(policy.delay_before(1), Duration::ZERO);
        assert_eq!(policy.delay_before(2), Duration::ZERO);
        assert!(policy.schedule(5).iter().all(Duration::is_zero));
    }

    #[test]
    fn fixed_backoff_repeats_the_delay() {
        let policy = RetryPolicy::fixed(Duration::from_millis(250)).max_attempts(4);
        assert_eq!(policy.schedule(4), vec![Duration::from_millis(250); 3]);
    }

    #[test]
    fn exponential_backoff_doubles_until_cap() {
        let policy = RetryPolicy::exponential(Duration::from_millis(100))
            .max_attempts(6)
            .cap(Duration::from_millis(500));
        assert_eq!(
            policy.schedule(6),
            vec![
                Duration::from_millis(100),
                Duration::from_millis(200),
                Duration::from_millis(400),
                Duration::from_millis(500),
                Duration::from_millis(500),
            ]
        );
    }

    #[test]
    fn jittered_schedules_are_deterministic_per_seed() {
        let make = |seed| {
            RetryPolicy::exponential(Duration::from_millis(50))
                .max_attempts(8)
                .jitter(0.5)
                .seed(seed)
                .schedule(8)
        };
        assert_eq!(make(42), make(42));
        assert_ne!(make(42), make(43));
    }

    #[test]
    fn jittered_schedules_stay_monotone_and_capped() {
        let cap = Duration::from_secs(2);
        let schedule = RetryPolicy::exponential(Duration::from_millis(10))
            .max_attempts(12)
            .cap(cap)
            .jitter(1.0)
            .seed(7)
            .schedule(12);
        for pair in schedule.windows(2) {
            assert!(pair[0] <= pair[1], "schedule must be non-decreasing");
        }
        assert!(schedule.iter().all(|d| *d <= cap));
    }

    #[test]
    fn builder_clamps_degenerate_values() {
        let policy = RetryPolicy::fixed(Duration::ZERO)
            .max_attempts(0)
            .jitter(9.0);
        assert_eq!(policy.attempts_allowed(), 1);
        assert_eq!(policy.jitter_fraction(), 1.0);
        let policy = RetryPolicy::exponential(Duration::from_millis(1)).factor(0.25);
        assert_eq!(policy.schedule(3)[0], policy.schedule(3)[1]);
    }

    #[test]
    fn deadlines_are_recorded() {
        let policy = RetryPolicy::fixed(Duration::from_millis(5))
            .attempt_deadline(Duration::from_secs(1))
            .total_deadline(Duration::from_secs(3));
        assert_eq!(policy.per_attempt_deadline(), Some(Duration::from_secs(1)));
        assert_eq!(policy.total_budget(), Some(Duration::from_secs(3)));
    }

    #[test]
    fn display_summarises_the_policy() {
        let fixed = RetryPolicy::fixed(Duration::from_millis(10)).max_attempts(5);
        assert!(fixed.to_string().contains("fixed"));
        let exp = RetryPolicy::exponential(Duration::from_millis(10));
        assert!(exp.to_string().contains("exponential"));
    }
}
