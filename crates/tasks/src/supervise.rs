//! Supervision policy for the broker scheduler.
//!
//! The broker (see [`BrokerScheduler`](crate::BrokerScheduler)) pairs
//! every dequeued job with a *lease* — a deadline of the task's timeout
//! plus a grace period — and runs a supervisor thread that ticks on a
//! heartbeat. Each tick the supervisor reaps finished detached worker
//! threads, respawns workers that died holding a lease, and recovers
//! expired leases by redelivering the task (up to a cap) or
//! dead-lettering it. [`SupervisorConfig`] is the knob set for that
//! loop; the defaults reproduce the classic watchdog semantics (no
//! redelivery, timeouts reported as timed-out) so supervision is
//! strictly opt-in per scheduler instance.

use std::time::Duration;

/// Tuning for the broker's supervisor thread.
///
/// Construct with [`SupervisorConfig::default`] and override fields as
/// needed:
///
/// ```
/// use simart_tasks::SupervisorConfig;
/// let config = SupervisorConfig { max_redeliveries: 2, ..SupervisorConfig::default() };
/// assert_eq!(config.max_redeliveries, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Interval between supervisor ticks. Lease expiry and worker
    /// death are detected within one heartbeat of happening.
    pub heartbeat: Duration,
    /// Slack added to a task's timeout when computing its lease
    /// deadline, so a task finishing *at* its timeout is not falsely
    /// redelivered. Tasks without a timeout hold open-ended leases and
    /// are only recovered if their worker dies.
    pub grace: Duration,
    /// How many times an expired or orphaned lease may be redelivered
    /// before the task is dead-lettered. `0` (the default) disables
    /// redelivery: an expired lease is reported as timed-out
    /// immediately, matching the pre-supervision watchdog behaviour.
    pub max_redeliveries: u32,
    /// Cap on live detached (presumed-wedged) worker threads. Once
    /// reached, further lease expirations fail fast with a clear error
    /// instead of detaching more threads; the cap frees up again as
    /// the supervisor reaps detached threads that finish.
    pub max_detached: usize,
}

impl SupervisorConfig {
    /// How long a remote worker process may go silent before the
    /// coordinator declares it wedged and recycles it: the lease
    /// grace plus four heartbeat intervals, so a worker must miss
    /// several consecutive heartbeats (not just jitter past one)
    /// before being SIGKILLed.
    pub fn remote_stale_after(&self) -> Duration {
        self.grace + self.heartbeat * 4
    }
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            heartbeat: Duration::from_millis(20),
            grace: Duration::from_millis(100),
            max_redeliveries: 0,
            max_detached: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_preserve_watchdog_semantics() {
        let config = SupervisorConfig::default();
        assert_eq!(config.max_redeliveries, 0, "redelivery must be opt-in");
        assert!(config.max_detached > 0);
        assert!(config.heartbeat < config.grace + Duration::from_secs(1));
    }
}
