//! Cross-process tests for the remote scheduler: real worker
//! processes, real PIDs, real SIGKILLs.
//!
//! This test binary is its own worker program: when spawned with
//! `SIMART_REMOTE_WORKER` set it runs [`worker_main`] with the test
//! handler registry instead of the test list (hence `harness = false`
//! in Cargo.toml). The coordinator under test therefore exercises the
//! full pipeline — process spawn, Hello/HelloAck handshake,
//! heartbeats, dispatch, result frames, kill + respawn + redelivery —
//! against genuine OS processes.

use simart_tasks::{
    worker_main, HandlerRegistry, RemoteConfig, RemoteScheduler, RemoteTaskSpec, SubmitError,
    SupervisorConfig, TaskState, WorkerCommand, WorkerJob,
};
use std::io::Write;
use std::time::{Duration, Instant};

/// Handlers the worker side of every test resolves against.
fn registry() -> HandlerRegistry {
    let mut registry = HandlerRegistry::new();
    registry.register("echo", |job: &WorkerJob| Ok(job.payload.clone()));
    registry.register("fail", |job: &WorkerJob| Err(job.payload.clone()));
    registry.register("sleep-ms", |job: &WorkerJob| {
        let ms: u64 = job
            .payload
            .parse()
            .map_err(|_| "bad sleep payload".to_owned())?;
        std::thread::sleep(Duration::from_millis(ms));
        Ok("slept".to_owned())
    });
    // Satellite fixture: on first delivery, write a bogus frame (bad
    // CRC) straight onto the wire — the coordinator must kill us and
    // redeliver; the respawned worker's second delivery succeeds.
    registry.register("garbage-once", |job: &WorkerJob| {
        if job.delivery == 1 {
            let mut out = std::io::stdout();
            let _ = out.write_all(&[1, 0, 0, 0, 0, 0, 0, 0, b'Z']);
            let _ = out.flush();
            std::thread::sleep(Duration::from_millis(100));
            Ok("should never be accepted".to_owned())
        } else {
            Ok("recovered".to_owned())
        }
    });
    // Worker-death fixture: die mid-task. Payload "once" dies only on
    // the first delivery; "always" dies on every delivery (driving
    // the task into quarantine).
    registry.register("exit", |job: &WorkerJob| {
        if job.payload == "always" || job.delivery == 1 {
            std::process::exit(17);
        }
        Ok("survived".to_owned())
    });
    registry
}

fn worker_cmd() -> WorkerCommand {
    WorkerCommand::new(std::env::current_exe().expect("own path")).env("SIMART_REMOTE_WORKER", "1")
}

/// Fast supervision for tests: 15 ms heartbeat, 100 ms grace
/// (staleness window = 160 ms).
fn config(max_redeliveries: u32) -> RemoteConfig {
    RemoteConfig {
        supervisor: SupervisorConfig {
            heartbeat: Duration::from_millis(15),
            grace: Duration::from_millis(100),
            max_redeliveries,
            ..SupervisorConfig::default()
        },
        ..RemoteConfig::default()
    }
}

/// After shutdown the worker PID must be fully reaped: either gone
/// from /proc or (PID since reused) no longer a zombie child of us.
fn assert_reaped(pid: u32) {
    let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
        return; // no such PID: reaped and recycled
    };
    let Some(close) = stat.rfind(')') else { return };
    let mut fields = stat[close + 1..].split_whitespace();
    let state = fields.next().unwrap_or("");
    let ppid = fields.next().unwrap_or("");
    assert!(
        !(state == "Z" && ppid == std::process::id().to_string()),
        "worker pid {pid} left behind as a zombie"
    );
}

fn round_trip_and_failures() {
    let remote = RemoteScheduler::with_config(worker_cmd(), 2, config(0)).unwrap();
    let oks: Vec<_> = (0..8)
        .map(|i| {
            remote
                .submit(RemoteTaskSpec::new(
                    format!("ok-{i}"),
                    "echo",
                    format!("payload-{i}"),
                ))
                .unwrap()
        })
        .collect();
    let err = remote
        .submit(RemoteTaskSpec::new("bad", "fail", "deliberate"))
        .unwrap();
    let unknown = remote
        .submit(RemoteTaskSpec::new("odd", "no-such-kind", ""))
        .unwrap();
    for (i, handle) in oks.into_iter().enumerate() {
        let report = handle.wait();
        assert_eq!(
            report.state,
            TaskState::Succeeded,
            "ok-{i}: {:?}",
            report.error
        );
        assert_eq!(
            report.output.as_deref(),
            Some(format!("payload-{i}").as_str())
        );
        assert_eq!(report.redeliveries, 0);
        assert!(report.lease_events.is_empty());
    }
    let report = err.wait();
    assert_eq!(report.state, TaskState::Failed);
    assert_eq!(report.error.as_deref(), Some("deliberate"));
    let report = unknown.wait();
    assert_eq!(report.state, TaskState::Failed);
    assert!(report.error.unwrap().contains("no handler"));
    let stats = remote.stats();
    assert_eq!(stats.submitted, 10);
    assert_eq!(stats.completed, 10);
    let pids = remote.worker_pids();
    assert!(remote.shutdown(), "drain completes cleanly");
    for pid in pids {
        assert_reaped(pid);
    }
}

/// Satellite: a torn/corrupt frame must not wedge the coordinator —
/// the offending worker is killed and respawned, the lease revoked,
/// and the task redelivered to completion.
fn torn_frame_recovers_via_redelivery() {
    let remote = RemoteScheduler::with_config(worker_cmd(), 1, config(2)).unwrap();
    let before = remote.worker_pids();
    let report = remote
        .submit(RemoteTaskSpec::new("torn", "garbage-once", ""))
        .unwrap()
        .wait();
    assert_eq!(
        report.state,
        TaskState::Succeeded,
        "error: {:?}",
        report.error
    );
    assert_eq!(report.output.as_deref(), Some("recovered"));
    assert!(report.redeliveries >= 1, "recovered via redelivery");
    assert!(
        report.lease_events.iter().any(|e| e.contains("torn-frame")),
        "lease history records the torn frame: {:?}",
        report.lease_events
    );
    let stats = remote.stats();
    assert!(stats.frame_errors >= 1, "frame error counted");
    assert!(stats.respawns >= 1, "worker respawned");
    let after = remote.worker_pids();
    assert_ne!(before, after, "offending worker was replaced");
    remote.shutdown();
    for pid in before.into_iter().chain(after) {
        assert_reaped(pid);
    }
}

/// Worker death mid-task → respawn with bumped generation and
/// redelivery; exhausting the cap quarantines with full lease
/// history.
fn worker_death_redelivers_then_quarantines() {
    let remote = RemoteScheduler::with_config(worker_cmd(), 1, config(1)).unwrap();
    let report = remote
        .submit(RemoteTaskSpec::new("dies-once", "exit", "once"))
        .unwrap()
        .wait();
    assert_eq!(
        report.state,
        TaskState::Succeeded,
        "error: {:?}",
        report.error
    );
    assert_eq!(report.output.as_deref(), Some("survived"));
    assert_eq!(report.redeliveries, 1);
    assert_eq!(
        report.lease_events,
        vec!["delivery:1:worker-died".to_owned()]
    );

    let report = remote
        .submit(RemoteTaskSpec::new("dies-always", "exit", "always"))
        .unwrap()
        .wait();
    assert_eq!(report.state, TaskState::Quarantined);
    assert_eq!(report.redeliveries, 1);
    let error = report.error.unwrap();
    assert!(
        error.contains("redelivery cap (1) exhausted after 2 deliveries"),
        "{error}"
    );
    assert!(error.contains("worker-died"), "{error}");
    assert_eq!(
        report.lease_events,
        vec![
            "delivery:1:worker-died".to_owned(),
            "delivery:2:worker-died".to_owned()
        ]
    );
    let stats = remote.stats();
    assert!(stats.respawns >= 2);
    assert_eq!(stats.dead_lettered, 1);
    remote.shutdown();
}

/// Satellite: drain-vs-abandon side by side, mirroring the
/// `PoolScheduler::shutdown_now()` contrast — and in both modes every
/// child PID must be reaped (no zombies), even mid-task.
fn drain_vs_abandon_reaps_all_pids() {
    // Drain: the in-flight task finishes, the queued one runs too.
    let remote = RemoteScheduler::with_config(worker_cmd(), 1, config(0)).unwrap();
    let pids = remote.worker_pids();
    let busy = remote
        .submit(RemoteTaskSpec::new("busy", "sleep-ms", "200"))
        .unwrap();
    let queued = remote
        .submit(RemoteTaskSpec::new("queued", "sleep-ms", "1"))
        .unwrap();
    assert!(remote.shutdown(), "drain runs all work to completion");
    assert_eq!(busy.wait().state, TaskState::Succeeded);
    assert_eq!(queued.wait().state, TaskState::Succeeded);
    for pid in pids {
        assert_reaped(pid);
    }

    // Abandon: queued work is discarded, the mid-task worker is
    // SIGKILLed, and the PIDs are still reaped.
    let remote = RemoteScheduler::with_config(worker_cmd(), 1, config(0)).unwrap();
    let pids = remote.worker_pids();
    let busy = remote
        .submit(RemoteTaskSpec::new("busy", "sleep-ms", "30000"))
        .unwrap();
    std::thread::sleep(Duration::from_millis(150)); // let it dispatch
    let queued = remote
        .submit(RemoteTaskSpec::new("queued", "sleep-ms", "1"))
        .unwrap();
    let started = Instant::now();
    assert_eq!(remote.shutdown_now(), 1, "one queued job discarded");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "abandon does not drain"
    );
    let busy = busy.wait();
    assert_eq!(busy.state, TaskState::Failed);
    assert!(busy.error.unwrap().contains("scheduler dropped task"));
    assert_eq!(queued.wait().state, TaskState::Failed);
    for pid in pids {
        assert_reaped(pid);
    }
}

/// Bounded-queue backpressure: a full queue blocks up to the submit
/// deadline then errs; shutdown errs immediately.
fn backpressure_deadline_and_shutdown_submit() {
    let mut config = config(0);
    config.queue_capacity = 1;
    config.submit_deadline = Duration::from_millis(120);
    let remote = RemoteScheduler::with_config(worker_cmd(), 1, config).unwrap();
    // Occupy the only worker, then fill the queue to capacity.
    let busy = remote
        .submit(RemoteTaskSpec::new("busy", "sleep-ms", "700"))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100)); // ensure dispatch happened
    let queued = remote
        .submit(RemoteTaskSpec::new("queued", "sleep-ms", "1"))
        .unwrap();
    let started = Instant::now();
    let refused = remote.submit(RemoteTaskSpec::new("overflow", "echo", ""));
    assert_eq!(refused.unwrap_err(), SubmitError::Backpressure);
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(100),
        "blocked before refusing: {waited:?}"
    );
    assert_eq!(busy.wait().state, TaskState::Succeeded);
    assert_eq!(queued.wait().state, TaskState::Succeeded);
    remote.shutdown();
    let refused = remote.submit(RemoteTaskSpec::new("late", "echo", ""));
    assert_eq!(refused.unwrap_err(), SubmitError::Shutdown);
}

/// An idle worker steals queued work from a busy peer's queue.
fn idle_workers_steal_from_busy_peers() {
    let remote = RemoteScheduler::with_config(worker_cmd(), 2, config(0)).unwrap();
    // Pin both workers briefly, then queue a burst: whichever worker
    // frees up first drains its own queue and steals from the other.
    let pins: Vec<_> = (0..2)
        .map(|i| {
            remote
                .submit(RemoteTaskSpec::new(format!("pin-{i}"), "sleep-ms", "250"))
                .unwrap()
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    let burst: Vec<_> = (0..8)
        .map(|i| {
            remote
                .submit(RemoteTaskSpec::new(format!("b-{i}"), "echo", "x"))
                .unwrap()
        })
        .collect();
    for handle in pins.into_iter().chain(burst) {
        assert_eq!(handle.wait().state, TaskState::Succeeded);
    }
    remote.shutdown();
}

fn main() {
    if std::env::var_os("SIMART_REMOTE_WORKER").is_some() {
        std::process::exit(worker_main(&registry()));
    }
    let tests: &[(&str, fn())] = &[
        ("round_trip_and_failures", round_trip_and_failures),
        (
            "torn_frame_recovers_via_redelivery",
            torn_frame_recovers_via_redelivery,
        ),
        (
            "worker_death_redelivers_then_quarantines",
            worker_death_redelivers_then_quarantines,
        ),
        (
            "drain_vs_abandon_reaps_all_pids",
            drain_vs_abandon_reaps_all_pids,
        ),
        (
            "backpressure_deadline_and_shutdown_submit",
            backpressure_deadline_and_shutdown_submit,
        ),
        (
            "idle_workers_steal_from_busy_peers",
            idle_workers_steal_from_busy_peers,
        ),
    ];
    for (name, test) in tests {
        eprintln!("test remote_proc::{name} ...");
        test();
        eprintln!("test remote_proc::{name} ... ok");
    }
    println!("remote_proc: {} tests passed", tests.len());
}
