//! Cross-process tests for the TCP transport: real worker processes
//! joining the coordinator over real sockets, with deterministic
//! chaos (connection resets, one-way partitions) injected on the
//! coordinator side.
//!
//! Like `remote_proc.rs`, this binary is its own worker program: when
//! spawned with `SIMART_REMOTE_WORKER` set it runs the worker loop —
//! [`worker_main_connect`] when the coordinator handed it a
//! `--connect HOST:PORT`, plain [`worker_main`] otherwise (hence
//! `harness = false` in Cargo.toml).

use simart_tasks::{
    worker_main, worker_main_connect, FaultInjector, HandlerRegistry, RemoteConfig,
    RemoteScheduler, RemoteTaskSpec, SupervisorConfig, TaskState, TransportKind, WorkerCommand,
    WorkerJob,
};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn registry() -> HandlerRegistry {
    let mut registry = HandlerRegistry::new();
    registry.register("echo", |job: &WorkerJob| Ok(job.payload.clone()));
    registry.register("fail", |job: &WorkerJob| Err(job.payload.clone()));
    registry.register("sleep-ms", |job: &WorkerJob| {
        let ms: u64 = job
            .payload
            .parse()
            .map_err(|_| "bad sleep payload".to_owned())?;
        std::thread::sleep(Duration::from_millis(ms));
        Ok("slept".to_owned())
    });
    registry
}

fn worker_cmd() -> WorkerCommand {
    WorkerCommand::new(std::env::current_exe().expect("own path")).env("SIMART_REMOTE_WORKER", "1")
}

/// Fast supervision over TCP: 15 ms heartbeat, 100 ms grace.
fn config(max_redeliveries: u32) -> RemoteConfig {
    RemoteConfig {
        supervisor: SupervisorConfig {
            heartbeat: Duration::from_millis(15),
            grace: Duration::from_millis(100),
            max_redeliveries,
            ..SupervisorConfig::default()
        },
        transport: TransportKind::Tcp,
        ..RemoteConfig::default()
    }
}

/// After shutdown the worker PID must be fully reaped: either gone
/// from /proc or (PID since reused) no longer a zombie child of us.
fn assert_reaped(pid: u32) {
    let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
        return; // no such PID: reaped and recycled
    };
    let Some(close) = stat.rfind(')') else { return };
    let mut fields = stat[close + 1..].split_whitespace();
    let state = fields.next().unwrap_or("");
    let ppid = fields.next().unwrap_or("");
    assert!(
        !(state == "Z" && ppid == std::process::id().to_string()),
        "worker pid {pid} left behind as a zombie"
    );
}

/// The listener must be gone after shutdown: a fresh connect to the
/// coordinator's old address is refused (nobody accepts).
fn assert_listener_closed(addr: std::net::SocketAddr) {
    // Give the OS a beat to tear the socket down, then the port must
    // refuse (or at minimum nobody ever completes the TCP handshake
    // from our side with an accept on the other).
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
            Err(_) => return,
            Ok(_) if Instant::now() >= deadline => {
                panic!("listener at {addr} still accepting after shutdown")
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Plain TCP round trip: workers join over sockets, tasks complete,
/// shutdown drains, reaps every PID, and closes the listener.
fn tcp_round_trip_reaps_and_closes_listener() {
    let remote = RemoteScheduler::with_config(worker_cmd(), 2, config(0)).unwrap();
    let addr = remote.listen_addr().expect("tcp transport listens");
    let handles: Vec<_> = (0..8)
        .map(|i| {
            remote
                .submit(RemoteTaskSpec::new(
                    format!("ok-{i}"),
                    "echo",
                    format!("payload-{i}"),
                ))
                .unwrap()
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let report = handle.wait();
        assert_eq!(
            report.state,
            TaskState::Succeeded,
            "ok-{i}: {:?}",
            report.error
        );
        assert_eq!(
            report.output.as_deref(),
            Some(format!("payload-{i}").as_str())
        );
    }
    let pids = remote.worker_pids();
    assert!(remote.shutdown(), "drain completes cleanly over tcp");
    for pid in pids {
        assert_reaped(pid);
    }
    assert_listener_closed(addr);
}

/// Seeded connection resets: the chaos writer severs live sockets, the
/// worker redials with its session token, the coordinator resumes the
/// session, and every task still completes exactly once.
fn reset_storm_reconnects_and_resumes() {
    let mut config = config(8);
    config.fault = Some(Arc::new(FaultInjector::new(11).net_resets(0.45)));
    let remote = RemoteScheduler::with_config(worker_cmd(), 2, config).unwrap();
    let handles: Vec<_> = (0..16)
        .map(|i| {
            remote
                .submit(
                    RemoteTaskSpec::new(format!("t-{i}"), "echo", format!("p-{i}"))
                        .timeout(Duration::from_millis(500)),
                )
                .unwrap()
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let report = handle.wait();
        assert_eq!(
            report.state,
            TaskState::Succeeded,
            "t-{i}: {:?} (lease history {:?})",
            report.error,
            report.lease_events
        );
        assert_eq!(report.output.as_deref(), Some(format!("p-{i}").as_str()));
    }
    let stats = remote.stats();
    assert!(
        stats.reconnects >= 1,
        "severed sessions were resumed: {stats:?}"
    );
    assert!(
        stats.partitions >= 1,
        "lost connections were counted: {stats:?}"
    );
    let pids = remote.worker_pids();
    remote.shutdown();
    for pid in pids {
        assert_reaped(pid);
    }
}

/// Satellite: coordinator shutdown during an *active partition* — the
/// chaos writer drops every coordinator→worker frame, so no worker
/// ever completes a handshake, yet `shutdown_now` must still reap
/// every child PID and close the listener with zero zombies.
fn shutdown_during_partition_reaps_everything() {
    let mut config = config(0);
    config.fault = Some(Arc::new(FaultInjector::new(7).net_partitions(1.0)));
    let remote = RemoteScheduler::with_config(worker_cmd(), 3, config).unwrap();
    let addr = remote.listen_addr().expect("tcp transport listens");
    // Work submitted into the partition: it can never be delivered.
    let stuck = remote
        .submit(RemoteTaskSpec::new("stuck", "echo", "never-delivered"))
        .unwrap();
    // Let workers dial in and lose their HelloAck to the partition.
    std::thread::sleep(Duration::from_millis(300));
    let pids = remote.worker_pids();
    assert_eq!(pids.len(), 3);
    let started = Instant::now();
    remote.shutdown_now();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "abandon does not hang on a partition"
    );
    assert_eq!(stuck.wait().state, TaskState::Failed);
    for pid in pids {
        assert_reaped(pid);
    }
    assert_listener_closed(addr);

    // Same partition, graceful path: drain must also terminate (the
    // Drain frames are dropped by the partition, so the coordinator
    // falls back to killing the unreachable children) and reap.
    let mut config = self::config(0);
    config.fault = Some(Arc::new(FaultInjector::new(7).net_partitions(1.0)));
    let remote = RemoteScheduler::with_config(worker_cmd(), 2, config).unwrap();
    let addr = remote.listen_addr().expect("tcp transport listens");
    std::thread::sleep(Duration::from_millis(200));
    let pids = remote.worker_pids();
    let started = Instant::now();
    remote.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain does not hang on a partition"
    );
    for pid in pids {
        assert_reaped(pid);
    }
    assert_listener_closed(addr);
}

/// When every worker stays unreachable past the configured deadline —
/// here a crash-looping worker binary that dies before ever dialing
/// the coordinator — the coordinator degrades loudly: queued work is
/// dead-lettered with a `workers-unreachable` cause instead of
/// hanging forever.
fn unreachable_deadline_degrades_loudly() {
    let mut config = config(0);
    config.unreachable_deadline = Duration::from_millis(400);
    let broken = WorkerCommand::new(std::env::current_exe().expect("own path"))
        .env("SIMART_REMOTE_WORKER", "1")
        .env("SIMART_TCP_EXIT_EARLY", "1");
    let remote = RemoteScheduler::with_config(broken, 1, config).unwrap();
    let report = remote
        .submit(RemoteTaskSpec::new("doomed", "echo", "x"))
        .unwrap()
        .wait();
    assert_eq!(report.state, TaskState::Failed, "degraded, not hung");
    let error = report.error.unwrap();
    assert!(
        error.contains("unreachable"),
        "failure names the degradation: {error}"
    );
    let pids = remote.worker_pids();
    remote.shutdown_now();
    for pid in pids {
        assert_reaped(pid);
    }
}

fn main() {
    if std::env::var_os("SIMART_REMOTE_WORKER").is_some() {
        if std::env::var_os("SIMART_TCP_EXIT_EARLY").is_some() {
            // Unreachable-worker fixture: die before ever dialing.
            std::process::exit(1);
        }
        let args: Vec<String> = std::env::args().collect();
        let code = match args.iter().position(|a| a == "--connect") {
            Some(i) => worker_main_connect(&registry(), &args[i + 1]),
            None => worker_main(&registry()),
        };
        std::process::exit(code);
    }
    let tests: &[(&str, fn())] = &[
        (
            "tcp_round_trip_reaps_and_closes_listener",
            tcp_round_trip_reaps_and_closes_listener,
        ),
        (
            "reset_storm_reconnects_and_resumes",
            reset_storm_reconnects_and_resumes,
        ),
        (
            "shutdown_during_partition_reaps_everything",
            shutdown_during_partition_reaps_everything,
        ),
        (
            "unreachable_deadline_degrades_loudly",
            unreachable_deadline_degrades_loudly,
        ),
    ];
    for (name, test) in tests {
        eprintln!("test remote_tcp_proc::{name} ...");
        test();
        eprintln!("test remote_tcp_proc::{name} ... ok");
    }
    println!("remote_tcp_proc: {} tests passed", tests.len());
}
