//! Property-based tests for [`RetryPolicy`] backoff schedules: monotone
//! non-decreasing, bounded by the cap, and bit-identical for equal
//! seeds.

use proptest::prelude::*;
use simart_tasks::RetryPolicy;
use std::time::Duration;

/// An arbitrary exponential policy from small integer parts (durations
/// in milliseconds, factor and jitter in thousandths).
fn policy(
    base_ms: u64,
    factor_milli: u64,
    cap_ms: u64,
    jitter_milli: u64,
    seed: u64,
    attempts: u32,
) -> RetryPolicy {
    RetryPolicy::exponential(Duration::from_millis(base_ms))
        .factor(factor_milli as f64 / 1000.0)
        .cap(Duration::from_millis(cap_ms))
        .jitter(jitter_milli as f64 / 1000.0)
        .seed(seed)
        .max_attempts(attempts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delays never shrink: each retry waits at least as long as the
    /// one before, for any base/factor/cap/jitter/seed combination.
    #[test]
    fn schedules_are_monotone_nondecreasing(
        base_ms in 1u64..500,
        factor_milli in 1000u64..4000,
        cap_ms in 1u64..5000,
        jitter_milli in 0u64..1000,
        seed in any::<u64>(),
        attempts in 2u32..16,
    ) {
        let schedule =
            policy(base_ms, factor_milli, cap_ms, jitter_milli, seed, attempts)
                .schedule(attempts);
        prop_assert_eq!(schedule.len(), (attempts - 1) as usize);
        for pair in schedule.windows(2) {
            prop_assert!(pair[0] <= pair[1], "delay shrank: {:?} -> {:?}", pair[0], pair[1]);
        }
    }

    /// No delay — jitter included — ever exceeds the cap.
    #[test]
    fn schedules_are_bounded_by_the_cap(
        base_ms in 1u64..500,
        factor_milli in 1000u64..4000,
        cap_ms in 1u64..5000,
        jitter_milli in 0u64..1000,
        seed in any::<u64>(),
        attempts in 2u32..16,
    ) {
        let cap = Duration::from_millis(cap_ms);
        let schedule =
            policy(base_ms, factor_milli, cap_ms, jitter_milli, seed, attempts)
                .schedule(attempts);
        for delay in &schedule {
            prop_assert!(*delay <= cap, "{delay:?} exceeds cap {cap:?}");
        }
    }

    /// Equal seeds give bit-identical schedules; `delay_before` agrees
    /// with the full schedule entry for entry.
    #[test]
    fn equal_seeds_are_bit_identical(
        base_ms in 1u64..500,
        factor_milli in 1000u64..4000,
        cap_ms in 1u64..5000,
        jitter_milli in 1u64..1000,
        seed in any::<u64>(),
        attempts in 2u32..16,
    ) {
        let a = policy(base_ms, factor_milli, cap_ms, jitter_milli, seed, attempts);
        let b = policy(base_ms, factor_milli, cap_ms, jitter_milli, seed, attempts);
        let schedule = a.schedule(attempts);
        prop_assert_eq!(&schedule, &b.schedule(attempts));
        for (i, delay) in schedule.iter().enumerate() {
            prop_assert_eq!(*delay, b.delay_before(i as u32 + 2));
        }
    }

    /// Fixed policies without jitter wait exactly the configured delay
    /// before every retry, and the first attempt is never delayed.
    #[test]
    fn fixed_policies_repeat_the_delay(
        delay_ms in 0u64..1000,
        attempts in 2u32..16,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy::fixed(Duration::from_millis(delay_ms))
            .seed(seed)
            .max_attempts(attempts);
        prop_assert_eq!(policy.delay_before(1), Duration::ZERO);
        let schedule = policy.schedule(attempts);
        for delay in schedule {
            prop_assert_eq!(delay, Duration::from_millis(delay_ms));
        }
    }
}
