//! Property-based tests: every scheduler delivers exactly one report
//! per task under arbitrary workloads of successes, failures, and
//! panics — and the wire frame layer decodes identically under any
//! stream re-chunking (TCP does not preserve write boundaries).

use proptest::prelude::*;
use simart_tasks::wire::{FrameDecoder, Message};
use simart_tasks::{run_all, BrokerScheduler, PoolScheduler, SerialScheduler, Task, TaskState};

#[derive(Debug, Clone, Copy)]
enum Behavior {
    Succeed,
    Fail,
    Panic,
}

fn behavior_strategy() -> impl Strategy<Value = Behavior> {
    prop_oneof![
        Just(Behavior::Succeed),
        Just(Behavior::Fail),
        Just(Behavior::Panic)
    ]
}

fn make_task(index: usize, behavior: Behavior) -> Task {
    Task::new(format!("t{index}"), move || match behavior {
        Behavior::Succeed => Ok(format!("out-{index}")),
        Behavior::Fail => Err(format!("err-{index}")),
        Behavior::Panic => panic!("panic-{index}"),
    })
}

/// Arbitrary protocol messages spanning every variant, with free-form
/// (including empty and non-ASCII) strings in the string-bearing
/// fields — the JSON escaping must round-trip them too.
fn message_strategy() -> impl Strategy<Value = Message> {
    let text = || {
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(|bytes| {
            const PALETTE: [char; 12] = [
                'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\t', 'é', '→', '🦀',
            ];
            bytes
                .iter()
                .map(|&b| PALETTE[b as usize % PALETTE.len()])
                .collect::<String>()
        })
    };
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(protocol, pid, session)| {
            Message::Hello {
                protocol,
                pid,
                session,
            }
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(generation, heartbeat_ms, session)| Message::HelloAck {
                generation,
                heartbeat_ms,
                session,
            }
        ),
        (
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (text(), text(), text(), any::<u64>()),
        )
            .prop_map(
                |((job, delivery, generation), (name, kind, payload, timeout_ms))| {
                    Message::Dispatch {
                        job,
                        delivery,
                        generation,
                        name,
                        kind,
                        payload,
                        timeout_ms,
                    }
                }
            ),
        (any::<u64>(), any::<u64>()).prop_map(|(pid, busy)| Message::Heartbeat { pid, busy }),
        (
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()),
            (text(), text()),
        )
            .prop_map(|((job, delivery, generation, ok), (output, error))| {
                Message::TaskResult {
                    job,
                    delivery,
                    generation,
                    ok,
                    output,
                    error,
                }
            }),
        Just(Message::Drain),
        any::<u64>().prop_map(|pid| Message::Bye { pid }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Order, states, and outputs are preserved one-to-one for every
    /// scheduler.
    #[test]
    fn every_task_gets_exactly_one_faithful_report(
        behaviors in proptest::collection::vec(behavior_strategy(), 0..24),
        scheduler_kind in 0u8..3,
    ) {
        let tasks: Vec<Task> =
            behaviors.iter().enumerate().map(|(i, b)| make_task(i, *b)).collect();
        let reports = match scheduler_kind {
            0 => run_all(&SerialScheduler::new(), tasks),
            1 => run_all(&PoolScheduler::new(3), tasks),
            _ => run_all(&BrokerScheduler::new(3), tasks),
        };
        prop_assert_eq!(reports.len(), behaviors.len());
        for (i, (report, behavior)) in reports.iter().zip(&behaviors).enumerate() {
            prop_assert_eq!(&report.name, &format!("t{i}"));
            match behavior {
                Behavior::Succeed => {
                    prop_assert_eq!(report.state, TaskState::Succeeded);
                    let expected = format!("out-{i}");
                    prop_assert_eq!(report.output.as_deref(), Some(expected.as_str()));
                }
                Behavior::Fail => {
                    prop_assert_eq!(report.state, TaskState::Failed);
                    let expected = format!("err-{i}");
                    prop_assert_eq!(report.error.as_deref(), Some(expected.as_str()));
                }
                Behavior::Panic => {
                    prop_assert_eq!(report.state, TaskState::Failed);
                    prop_assert!(report.error.as_deref().unwrap_or("").contains("panic"));
                }
            }
        }
    }

    /// Stream re-chunking invariance: however a valid frame sequence
    /// is split into read chunks — byte by byte or at arbitrary
    /// proptest-chosen boundaries — the decoder yields the identical
    /// message sequence. This is the property the TCP transport leans
    /// on: a socket may deliver any re-segmentation of the writer's
    /// frames (and the chaos [`ChaosReader`] deliberately does).
    ///
    /// [`ChaosReader`]: simart_tasks::ChaosReader
    #[test]
    fn any_rechunking_decodes_the_same_message_sequence(
        messages in proptest::collection::vec(message_strategy(), 1..8),
        cuts in proptest::collection::vec(any::<u16>(), 0..32),
    ) {
        let stream: Vec<u8> = messages.iter().flat_map(Message::to_frame).collect();

        // Byte-by-byte: the worst re-segmentation TCP can produce.
        let mut decoder = FrameDecoder::new();
        let mut one_by_one = Vec::new();
        for &byte in &stream {
            decoder.feed(&[byte]);
            while let Some(payload) = decoder.next_frame().expect("valid stream") {
                one_by_one.push(Message::decode(&payload).expect("valid payload"));
            }
        }
        prop_assert_eq!(decoder.pending(), 0);
        prop_assert_eq!(&one_by_one, &messages);

        // Arbitrary split points drawn by proptest.
        let mut bounds: Vec<usize> =
            cuts.iter().map(|&c| c as usize % (stream.len() + 1)).collect();
        bounds.push(0);
        bounds.push(stream.len());
        bounds.sort_unstable();
        let mut decoder = FrameDecoder::new();
        let mut rechunked = Vec::new();
        for window in bounds.windows(2) {
            decoder.feed(&stream[window[0]..window[1]]);
            while let Some(payload) = decoder.next_frame().expect("valid stream") {
                rechunked.push(Message::decode(&payload).expect("valid payload"));
            }
        }
        prop_assert_eq!(decoder.pending(), 0);
        prop_assert_eq!(&rechunked, &messages);
    }

    /// Retries always converge: a task that succeeds on attempt k ≤
    /// retries reports success with exactly k attempts.
    #[test]
    fn retry_counts_are_exact(fail_first in 0u32..4, extra_retries in 0u32..3) {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&counter);
        let task = Task::new("flaky", move || {
            if seen.fetch_add(1, Ordering::SeqCst) < fail_first {
                Err("transient".to_owned())
            } else {
                Ok("done".to_owned())
            }
        })
        .retries(fail_first + extra_retries);
        let reports = run_all(&SerialScheduler::new(), [task]);
        prop_assert_eq!(reports[0].state, TaskState::Succeeded);
        prop_assert_eq!(reports[0].attempts, fail_first + 1);
    }
}
