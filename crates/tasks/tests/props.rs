//! Property-based tests: every scheduler delivers exactly one report
//! per task under arbitrary workloads of successes, failures, and
//! panics.

use proptest::prelude::*;
use simart_tasks::{run_all, BrokerScheduler, PoolScheduler, SerialScheduler, Task, TaskState};

#[derive(Debug, Clone, Copy)]
enum Behavior {
    Succeed,
    Fail,
    Panic,
}

fn behavior_strategy() -> impl Strategy<Value = Behavior> {
    prop_oneof![
        Just(Behavior::Succeed),
        Just(Behavior::Fail),
        Just(Behavior::Panic)
    ]
}

fn make_task(index: usize, behavior: Behavior) -> Task {
    Task::new(format!("t{index}"), move || match behavior {
        Behavior::Succeed => Ok(format!("out-{index}")),
        Behavior::Fail => Err(format!("err-{index}")),
        Behavior::Panic => panic!("panic-{index}"),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Order, states, and outputs are preserved one-to-one for every
    /// scheduler.
    #[test]
    fn every_task_gets_exactly_one_faithful_report(
        behaviors in proptest::collection::vec(behavior_strategy(), 0..24),
        scheduler_kind in 0u8..3,
    ) {
        let tasks: Vec<Task> =
            behaviors.iter().enumerate().map(|(i, b)| make_task(i, *b)).collect();
        let reports = match scheduler_kind {
            0 => run_all(&SerialScheduler::new(), tasks),
            1 => run_all(&PoolScheduler::new(3), tasks),
            _ => run_all(&BrokerScheduler::new(3), tasks),
        };
        prop_assert_eq!(reports.len(), behaviors.len());
        for (i, (report, behavior)) in reports.iter().zip(&behaviors).enumerate() {
            prop_assert_eq!(&report.name, &format!("t{i}"));
            match behavior {
                Behavior::Succeed => {
                    prop_assert_eq!(report.state, TaskState::Succeeded);
                    let expected = format!("out-{i}");
                    prop_assert_eq!(report.output.as_deref(), Some(expected.as_str()));
                }
                Behavior::Fail => {
                    prop_assert_eq!(report.state, TaskState::Failed);
                    let expected = format!("err-{i}");
                    prop_assert_eq!(report.error.as_deref(), Some(expected.as_str()));
                }
                Behavior::Panic => {
                    prop_assert_eq!(report.state, TaskState::Failed);
                    prop_assert!(report.error.as_deref().unwrap_or("").contains("panic"));
                }
            }
        }
    }

    /// Retries always converge: a task that succeeds on attempt k ≤
    /// retries reports success with exactly k attempts.
    #[test]
    fn retry_counts_are_exact(fail_first in 0u32..4, extra_retries in 0u32..3) {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&counter);
        let task = Task::new("flaky", move || {
            if seen.fetch_add(1, Ordering::SeqCst) < fail_first {
                Err("transient".to_owned())
            } else {
                Ok("done".to_owned())
            }
        })
        .retries(fail_first + extra_retries);
        let reports = run_all(&SerialScheduler::new(), [task]);
        prop_assert_eq!(reports[0].state, TaskState::Succeeded);
        prop_assert_eq!(reports[0].attempts, fail_first + 1);
    }
}
