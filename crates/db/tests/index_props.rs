//! Property-based tests for secondary indexes.
//!
//! The maintenance invariant: after *any* sequence of mutations —
//! inserts, upserts, deletes, and bulk updates, in any order — every
//! declared index renders byte-identical to a scratch rebuild over the
//! surviving documents, and `verify_indexes` finds nothing to complain
//! about. The journaled variant proves the same holds across a
//! crash-replay: dropping an attached database without a checkpoint
//! and reloading rebuilds the exact same index state.

use proptest::prelude::*;
use simart_db::{json, Collection, Database, Filter, IndexSpec, Value};
use std::fs;

/// The three index shapes under test: a scalar hash key, a multikey
/// hash over an array field, and an ordered numeric key.
fn declare_indexes(collection: &Collection) {
    collection
        .ensure_index(IndexSpec::hash("tag"))
        .expect("hash index");
    collection
        .ensure_index(IndexSpec::hash("refs"))
        .expect("multikey index");
    collection
        .ensure_index(IndexSpec::ordered("n"))
        .expect("ordered index");
}

/// One random mutation. Encoded as plain tuples so proptest shrinks
/// well: (selector, document slot, tag + ref count packed, n).
type Op = (u8, u8, u8, i64);

fn apply(collection: &Collection, ops: &[Op]) {
    for &(selector, slot, packed, n) in ops {
        let (tag, refs) = (packed % 5, (packed / 5) % 4);
        let id = format!("d{}", slot % 24);
        let doc = || {
            let mut doc = Value::map([
                ("_id", Value::from(id.as_str())),
                ("tag", Value::from(format!("t{tag}"))),
                ("n", Value::from(n % 100)),
            ]);
            doc.set_at(
                "refs",
                Value::array((0..refs).map(|r| Value::from(format!("a{r}")))),
            );
            doc
        };
        match selector % 4 {
            // Insert: rejected on a duplicate _id, which must leave
            // every index untouched.
            0 => {
                let _ = collection.insert(doc());
            }
            1 => {
                let _ = collection.upsert(doc());
            }
            2 => {
                collection.delete(&id);
            }
            // Bulk rewrite of every indexed field on a tag group
            // (no unique index declared here, so it cannot reject).
            _ => {
                collection
                    .update_many(&Filter::eq("tag", format!("t{tag}")), |d| {
                        d.set_at("n", Value::from(n % 7));
                        d.set_at("refs", Value::array([Value::from("rewritten")]));
                    })
                    .expect("no unique index to violate");
            }
        }
    }
}

/// Scratch rebuild: a fresh collection with the same index specs,
/// fed the surviving documents.
fn rebuild(collection: &Collection) -> Value {
    let fresh = Database::in_memory().collection(collection.name());
    for spec in collection.index_specs() {
        fresh.ensure_index(spec).expect("redeclare index");
    }
    for doc in collection.all() {
        fresh.insert(doc).expect("reinsert");
    }
    fresh.index_state()
}

fn rand_suffix() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    COUNTER.fetch_add(1, Ordering::SeqCst)
}

proptest! {
    /// In-memory: any mutation sequence leaves every index
    /// byte-identical to a scratch rebuild, with nothing for
    /// `verify_indexes` to find — and indexed queries agree with a
    /// filter scan over the same collection.
    #[test]
    fn indexes_match_scratch_rebuild_after_any_mutations(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<i64>()), 0..64),
    ) {
        let collection = Database::in_memory().collection("props");
        declare_indexes(&collection);
        apply(&collection, &ops);

        prop_assert!(collection.verify_indexes().is_empty());
        prop_assert_eq!(
            json::to_json(&collection.index_state()),
            json::to_json(&rebuild(&collection))
        );
        // Index-planned queries and brute-force filtering agree.
        for tag in 0..5u8 {
            let filter = Filter::eq("tag", format!("t{tag}"));
            let by_scan = collection.all().iter().filter(|d| filter.matches(d)).count();
            prop_assert_eq!(collection.count(&filter), by_scan);
        }
        let range = Filter::lt("n", 50i64);
        let by_scan = collection.all().iter().filter(|d| range.matches(d)).count();
        prop_assert_eq!(collection.count(&range), by_scan);
    }
}

proptest! {
    /// Commit-time unique enforcement: a bulk rewrite that would land
    /// two documents on one unique key — whether colliding with a
    /// bystander outside the batch or with another rewrite inside it —
    /// is rejected whole, and the collection (documents *and* index
    /// state) renders byte-identical to the moment before the call.
    /// Accepted batches still match a scratch rebuild.
    #[test]
    fn rejected_update_many_batches_leave_state_unchanged(
        docs in proptest::collection::btree_map(0u8..12, (0u8..6, 0u8..4), 1..12),
        target in 0u8..6,
        group in 0u8..4,
    ) {
        let collection = Database::in_memory().collection("uniq");
        collection.ensure_unique("u").expect("unique index");
        for (&slot, &(u, g)) in &docs {
            // Seed at most one owner per unique key.
            let _ = collection.insert(Value::map([
                ("_id", Value::from(format!("d{slot}"))),
                ("u", Value::from(format!("u{u}"))),
                ("g", Value::from(i64::from(g))),
            ]));
        }
        let before_docs = json::to_json(&Value::array(collection.all()));
        let before_index = json::to_json(&collection.index_state());

        let result = collection.update_many(&Filter::eq("g", i64::from(group)), |d| {
            d.set_at("u", Value::from(format!("u{target}")));
            d.set_at("touched", Value::from(true));
        });

        match result {
            Err(_) => {
                // Rejected: nothing moved.
                prop_assert_eq!(
                    json::to_json(&Value::array(collection.all())),
                    before_docs
                );
                prop_assert_eq!(
                    json::to_json(&collection.index_state()),
                    before_index
                );
            }
            Ok(n) => {
                // Accepted: every rewrite targeted the same key, so an
                // accepted batch can hold at most one document — and
                // afterwards at most one document owns that key.
                prop_assert!(n <= 1);
                prop_assert!(collection.count(&Filter::eq("u", format!("u{target}"))) <= 1);
            }
        }
        prop_assert!(collection.verify_indexes().is_empty());
        prop_assert_eq!(
            json::to_json(&collection.index_state()),
            json::to_json(&rebuild(&collection))
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Journal replay: an attached database dropped without a
    /// checkpoint (the crash model) reloads with the exact same index
    /// state the live process held — the declaration travels as an
    /// `idx` journal record and the entries rebuild from the replayed
    /// documents.
    #[test]
    fn crash_replay_rebuilds_identical_index_state(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<i64>()), 0..24),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "simart-index-props-{}-{}",
            std::process::id(),
            rand_suffix()
        ));
        let _ = fs::remove_dir_all(&dir);
        let live_state;
        {
            let db = Database::open(&dir).expect("open attached");
            let collection = db.collection("props");
            declare_indexes(&collection);
            apply(&collection, &ops);
            live_state = json::to_json(&collection.index_state());
            // Crash: drop with no checkpoint, journal only.
        }
        let restored = Database::load(&dir).expect("replay");
        let collection = restored.collection("props");
        prop_assert_eq!(json::to_json(&collection.index_state()), live_state);
        prop_assert!(collection.verify_indexes().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
