//! Crash-recovery property tests for the write-ahead journal.
//!
//! The central durability claim: truncating the journal at *every*
//! possible byte offset — i.e. crashing at any instant during an
//! append — loses at most the record being written, and replay
//! recovers exactly the records wholly before the cut. The first test
//! proves that exhaustively at the `Database` level; the proptest
//! variant fuzzes arbitrary garbage tails on top of arbitrary op
//! sequences.

use proptest::prelude::*;
use simart_db::{read_journal, Database, LoadOptions, Value, JOURNAL_FILE};
use std::fs;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("simart-journal-props-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn doc(i: usize) -> Value {
    Value::map([
        ("_id", Value::from(format!("d{i}"))),
        ("seq", Value::from(i as i64)),
        ("payload", Value::from(format!("run payload {i}"))),
    ])
}

/// Crash-at-every-byte: an attached database appends N insert records;
/// for every truncation point of the journal file, a fresh load
/// recovers exactly the documents whose records are wholly before the
/// cut — no more, no less, and never an error.
#[test]
fn truncation_at_every_byte_recovers_the_exact_prefix() {
    let origin = temp_dir("origin");
    const DOCS: usize = 6;
    {
        let db = Database::open(&origin).expect("open attached db");
        for i in 0..DOCS {
            db.collection("runs").insert(doc(i)).expect("insert");
        }
        // No checkpoint: the journal alone carries all state.
    }
    let full = fs::read(origin.join(JOURNAL_FILE)).expect("journal exists");

    // Frame boundaries: [u32 len][u32 crc][payload]; boundaries[k] is
    // the byte offset right after record k's frame.
    let mut boundaries = vec![0usize];
    let mut pos = 0usize;
    while pos < full.len() {
        let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        boundaries.push(pos);
    }
    assert_eq!(boundaries.len(), DOCS + 1, "one frame per insert");
    assert_eq!(*boundaries.last().unwrap(), full.len());

    let crash = temp_dir("crash");
    fs::create_dir_all(&crash).unwrap();
    for cut in 0..=full.len() {
        fs::write(crash.join(JOURNAL_FILE), &full[..cut]).unwrap();
        let complete = boundaries.iter().filter(|b| **b <= cut).count() - 1;

        let (db, report) =
            Database::load_with(&crash, &LoadOptions::default()).expect("replay never errors");
        assert_eq!(report.journal_records, complete, "cut at byte {cut}");
        assert_eq!(report.journal_valid_bytes as usize, boundaries[complete]);
        assert_eq!(
            report.journal_torn_bytes as usize,
            cut - boundaries[complete]
        );
        let runs = db.collection("runs");
        assert_eq!(runs.len(), complete, "cut at byte {cut}");
        for i in 0..complete {
            let got = runs.get(&format!("d{i}")).expect("prefix doc recovered");
            assert_eq!(got, doc(i), "cut at byte {cut}: record {i} must be exact");
        }
        // Torn cuts are also strict-load clean: a torn *tail* is crash
        // evidence, not corruption of committed records.
        let (strict_db, _) =
            Database::load_with(&crash, &LoadOptions::strict()).expect("strict replay");
        assert_eq!(strict_db.collection("runs").len(), complete);
    }

    fs::remove_dir_all(&origin).unwrap();
    fs::remove_dir_all(&crash).unwrap();
}

/// After a simulated crash, re-opening the directory truncates the torn
/// tail and continues appending; nothing previously committed is lost
/// and the new records replay cleanly.
#[test]
fn reopen_after_crash_preserves_prefix_and_appends_cleanly() {
    let origin = temp_dir("reopen-origin");
    {
        let db = Database::open(&origin).expect("open");
        for i in 0..4 {
            db.collection("runs").insert(doc(i)).expect("insert");
        }
    }
    let full = fs::read(origin.join(JOURNAL_FILE)).unwrap();
    // Cut mid-way through the last record.
    let cut = full.len() - 5;
    fs::write(origin.join(JOURNAL_FILE), &full[..cut]).unwrap();

    {
        let db = Database::open(&origin).expect("reopen after crash");
        assert_eq!(db.collection("runs").len(), 3, "last record was torn away");
        db.collection("runs")
            .insert(doc(9))
            .expect("append after recovery");
    }
    let restored = Database::load(&origin).expect("final load");
    assert_eq!(restored.collection("runs").len(), 4);
    assert!(restored.collection("runs").get("d9").is_some());
    assert!(restored.collection("runs").get("d3").is_none());
    fs::remove_dir_all(&origin).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary mutation sequences survive arbitrary torn tails: for a
    /// random mix of inserts/deletes/blob puts followed by random
    /// garbage appended to the journal, replay recovers a valid record
    /// prefix and the garbage is reported as the torn tail.
    #[test]
    fn random_ops_with_garbage_tail_recover_a_valid_prefix(
        ops in proptest::collection::vec(0usize..10, 1..20),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let tag: usize = ops.iter().enumerate().map(|(i, v)| (i + 1) * (v + 1)).sum();
        let dir = std::env::temp_dir().join(format!(
            "simart-journal-props-fuzz-{}-{}-{tag}-{}",
            std::process::id(),
            ops.len(),
            garbage.len()
        ));
        let _ = fs::remove_dir_all(&dir);
        {
            let db = Database::open(&dir).expect("open");
            for (step, op) in ops.iter().enumerate() {
                match op % 3 {
                    0 => { db.collection("runs").insert(doc(100 + step)).expect("insert"); }
                    1 => { db.blobs().put(format!("blob {step}").into_bytes()); }
                    _ => { db.collection("runs").delete(&format!("d{}", 100 + step.saturating_sub(1))); }
                }
            }
        }
        let clean = read_journal(&dir).expect("scan");
        prop_assert_eq!(clean.torn_bytes, 0);

        let mut bytes = fs::read(dir.join(JOURNAL_FILE)).unwrap();
        bytes.extend_from_slice(&garbage);
        fs::write(dir.join(JOURNAL_FILE), &bytes).unwrap();

        let replay = read_journal(&dir).expect("scan with garbage tail");
        // The valid prefix never shrinks below the clean journal unless
        // the garbage happens to extend a valid frame — it can only
        // grow if the garbage itself forms valid records.
        prop_assert!(replay.ops.len() >= clean.ops.len());
        prop_assert!(replay.valid_bytes >= clean.valid_bytes);
        prop_assert_eq!(replay.valid_bytes + replay.torn_bytes, bytes.len() as u64);
        // And the database still loads without error.
        let (db, report) = Database::load_with(&dir, &LoadOptions::default()).expect("load");
        prop_assert_eq!(report.journal_records, replay.ops.len());
        let _ = db;
        fs::remove_dir_all(&dir).unwrap();
    }
}
