//! Backward compatibility with the pre-journal on-disk layout.
//!
//! `tests/fixtures/pre-journal/` is a database directory committed
//! exactly as the snapshot-only `Database::save` wrote it before the
//! write-ahead journal existed: per-collection `.jsonl` files plus
//! content-addressed `blobs/`, and **no** `journal.log`. These tests
//! pin that such directories keep loading with identical query results,
//! and that opening one attached upgrades it in place without
//! disturbing the old records.

use simart_db::{BlobKey, Database, Filter, LoadOptions, Value, JOURNAL_FILE};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/pre-journal")
}

/// Every query a pre-journal database answered must answer identically
/// after the journal refactor.
#[test]
fn old_layout_loads_with_identical_query_results() {
    let (db, report) =
        Database::load_with(fixture_dir(), &LoadOptions::strict()).expect("strict load");
    // No journal: nothing replayed, nothing skipped.
    assert_eq!(report.journal_records, 0);
    assert_eq!(report.journal_torn_bytes, 0);
    assert_eq!(report.skipped(), 0);

    // Collections and document counts.
    assert_eq!(
        db.collection_names(),
        vec!["artifacts".to_owned(), "runs".to_owned()]
    );
    assert_eq!(db.collection("artifacts").len(), 2);
    assert_eq!(db.collection("runs").len(), 2);

    // Point lookups.
    let run = db.collection("runs").get("run-0001").expect("run-0001");
    assert_eq!(run.at("status").and_then(Value::as_str), Some("done"));
    assert_eq!(
        run.at("results.sim_ticks").and_then(Value::as_int),
        Some(91_000_000)
    );

    // Filter queries.
    assert_eq!(
        db.collection("runs").count(&Filter::eq("status", "done")),
        1
    );
    assert_eq!(
        db.collection("runs").count(&Filter::eq("status", "failed")),
        1
    );
    assert_eq!(
        db.collection("artifacts")
            .count(&Filter::eq("kind", "disk-image")),
        1
    );

    // Blob round trips through the content-addressed store.
    let disk_key = BlobKey::from_hex("daec535f20f00301ded9e80f3c8a932c").unwrap();
    assert_eq!(
        db.blobs().get(disk_key).unwrap().as_ref(),
        b"parsec disk image bytes"
    );
    let results_key = BlobKey::from_hex("eac1754cbbf37c5a6943242e76fed522").unwrap();
    assert_eq!(
        db.blobs().get(results_key).unwrap().as_ref(),
        b"outcome=success ticks=91000000"
    );
    assert_eq!(db.blobs().len(), 2);
}

/// Lenient and strict loads agree on a healthy old-layout database.
#[test]
fn old_layout_loads_identically_in_both_modes() {
    let (strict, _) = Database::load_with(fixture_dir(), &LoadOptions::strict()).unwrap();
    let (lenient, _) = Database::load_with(fixture_dir(), &LoadOptions::default()).unwrap();
    assert_eq!(strict.collection_names(), lenient.collection_names());
    for name in strict.collection_names() {
        assert_eq!(
            strict.collection(&name).all(),
            lenient.collection(&name).all()
        );
    }
    assert_eq!(strict.blobs().keys(), lenient.blobs().keys());
}

/// `Database::open` on a copy of the old layout upgrades it in place:
/// old records stay untouched, new writes land in a fresh journal, and
/// a reload sees both.
#[test]
fn old_layout_opens_attached_and_upgrades_in_place() {
    let work = std::env::temp_dir().join(format!("simart-backward-compat-{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);
    fs::create_dir_all(work.join("blobs")).unwrap();
    for file in ["artifacts.jsonl", "runs.jsonl"] {
        fs::copy(fixture_dir().join(file), work.join(file)).unwrap();
    }
    for entry in fs::read_dir(fixture_dir().join("blobs")).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), work.join("blobs").join(entry.file_name())).unwrap();
    }

    {
        let db = Database::open(&work).expect("open old layout attached");
        assert_eq!(db.collection("runs").len(), 2, "old records visible");
        db.collection("runs")
            .insert(Value::map([
                ("_id", Value::from("run-0003")),
                ("hash", Value::from("rh-0003")),
                ("status", Value::from("created")),
            ]))
            .expect("insert on upgraded db");
        // The new write went to the journal, not the old files.
        assert!(fs::metadata(work.join(JOURNAL_FILE)).unwrap().len() > 0);
        let old_runs = fs::read_to_string(work.join("runs.jsonl")).unwrap();
        assert!(
            !old_runs.contains("run-0003"),
            "checkpoint files untouched before checkpoint"
        );
    }

    let reloaded = Database::load(&work).expect("reload");
    assert_eq!(reloaded.collection("runs").len(), 3);
    assert!(reloaded.collection("runs").get("run-0001").is_some());
    assert!(reloaded.collection("runs").get("run-0003").is_some());
    fs::remove_dir_all(&work).unwrap();
}
