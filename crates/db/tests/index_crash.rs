//! Hard-crash test for index durability: `SIGKILL` a process that is
//! journaling indexed writes, then prove the replayed database rebuilds
//! every index consistent with the recovered documents.
//!
//! Index entries are never load-bearing on disk — only the declaration
//! travels through the journal (`idx` record) and manifest; the entries
//! themselves are always rebuilt from whatever documents survive. So a
//! kill at *any* byte of the journal must leave: (a) a clean lenient
//! load, (b) `verify_indexes` silent, (c) an index state byte-identical
//! to a scratch rebuild over the recovered prefix, and (d) the unique
//! constraint still enforced.
//!
//! The test re-executes its own binary (libtest `--exact` on the
//! env-gated writer below) so the kill hits a real separate process
//! mid-append, not a simulated truncation.

use simart_db::{json, Database, Filter, IndexSpec, Value, JOURNAL_FILE};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const ENV_DIR: &str = "SIMART_INDEX_CRASH_DIR";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simart-index-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Child process body: open the directory attached, declare the index
/// suite, and append indexed documents until the parent kills us. Runs
/// only when re-executed with `SIMART_INDEX_CRASH_DIR` set; as a normal
/// test it is a no-op.
#[test]
fn crash_writer_child() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let db = Database::open(PathBuf::from(dir)).expect("child opens db");
    let runs = db.collection("runs");
    runs.ensure_unique("hash").expect("unique index");
    runs.ensure_index(IndexSpec::hash("status"))
        .expect("hash index");
    runs.ensure_index(IndexSpec::hash("inputs"))
        .expect("multikey index");
    runs.ensure_index(IndexSpec::ordered("ticks"))
        .expect("ordered index");
    for i in 0u64.. {
        runs.insert(Value::map([
            ("_id", Value::from(format!("run-{i}"))),
            ("hash", Value::from(format!("h{i}"))),
            (
                "status",
                Value::from(if i % 3 == 0 { "done" } else { "running" }),
            ),
            (
                "inputs",
                Value::array([
                    Value::from(format!("art-{}", i % 5)),
                    Value::from(format!("art-{}", i % 7)),
                ]),
            ),
            ("ticks", Value::from((i * 31 % 1000) as i64)),
        ]))
        .expect("child insert");
        if i % 16 == 0 {
            runs.delete(&format!("run-{}", i / 2));
        }
    }
}

#[test]
fn sigkill_mid_write_replays_to_consistent_indexes() {
    let dir = temp_dir("kill");
    std::fs::create_dir_all(&dir).expect("create dir");

    let mut child = Command::new(std::env::current_exe().expect("own binary"))
        .args(["--exact", "crash_writer_child", "--nocapture"])
        .env(ENV_DIR, &dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("child spawns");

    // Let the writer commit a healthy stream of records, then kill it
    // cold mid-append. The invariants below hold wherever the kill
    // lands, including inside a torn frame.
    let journal = dir.join(JOURNAL_FILE);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let bytes = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
        if bytes > 8_192 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "child never produced a journal ({bytes} bytes)"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // (a) The lenient load replays the valid prefix without error.
    let db = Database::load(&dir).expect("journal replays after SIGKILL");
    let runs = db.collection("runs");
    assert!(!runs.is_empty(), "some committed records survived");
    assert_eq!(runs.index_specs().len(), 4, "declarations replayed");

    // (b) The rebuilt indexes agree with the recovered documents.
    assert!(
        runs.verify_indexes().is_empty(),
        "{:?}",
        runs.verify_indexes()
    );

    // (c) Byte-identical to a scratch rebuild over the same documents.
    let fresh = Database::in_memory().collection("runs");
    for spec in runs.index_specs() {
        fresh.ensure_index(spec).expect("redeclare");
    }
    for doc in runs.all() {
        fresh.insert(doc).expect("reinsert");
    }
    assert_eq!(
        json::to_json(&runs.index_state()),
        json::to_json(&fresh.index_state())
    );

    // (d) The unique constraint came back with the declaration.
    let existing = runs.all().into_iter().next().expect("one survivor");
    let hash = existing
        .at("hash")
        .and_then(Value::as_str)
        .expect("hash field");
    let dup = runs.insert(Value::map([
        ("_id", Value::from("dup-after-crash")),
        ("hash", Value::from(hash)),
    ]));
    assert!(dup.is_err(), "unique index survives the crash");

    // And indexed queries agree with a brute-force scan.
    for status in ["done", "running"] {
        let filter = Filter::eq("status", status);
        let by_scan = runs.all().iter().filter(|d| filter.matches(d)).count();
        assert_eq!(runs.count(&filter), by_scan, "status {status}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
