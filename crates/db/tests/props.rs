//! Property-based tests for the document model, JSON codec, query
//! engine, and blob store.

use proptest::prelude::*;
use simart_db::{json, BlobStore, Database, Filter, Value};

/// Strategy for arbitrary document values (bounded depth).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: JSON cannot carry NaN/Inf.
        (-1e15f64..1e15).prop_map(Value::Float),
        "[a-zA-Z0-9 _\\-\\.\u{e9}\u{4e16}]{0,12}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..6).prop_map(Value::Map),
        ]
    })
}

proptest! {
    /// Every document value round-trips through the JSON codec.
    #[test]
    fn json_round_trip(value in value_strategy()) {
        let text = json::to_json(&value);
        let back = json::from_json(&text).expect("own output parses");
        prop_assert_eq!(back, value);
    }

    /// compare() is a total order: antisymmetric and transitive over
    /// sampled triples.
    #[test]
    fn value_ordering_is_consistent(a in value_strategy(),
                                    b in value_strategy(),
                                    c in value_strategy()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.compare(&b), b.compare(&a).reverse());
        if a.compare(&b) != Ordering::Greater && b.compare(&c) != Ordering::Greater {
            prop_assert_ne!(a.compare(&c), Ordering::Greater);
        }
    }

    /// Double negation of a filter never changes what matches.
    #[test]
    fn filter_not_is_involutive(doc in value_strategy(), needle in any::<i64>()) {
        let filters = [
            Filter::eq("a", needle),
            Filter::gt("a", needle),
            Filter::exists("a"),
            Filter::contains("a", "x"),
        ];
        for f in filters {
            let double = f.clone().not().not();
            prop_assert_eq!(f.matches(&doc), double.matches(&doc));
        }
    }

    /// Collection length equals inserts minus deletes; get() agrees
    /// with membership.
    #[test]
    fn collection_bookkeeping(ops in proptest::collection::vec((0u8..2, 0u32..16), 0..64)) {
        let collection = Database::in_memory().collection("props");
        let mut model: std::collections::BTreeSet<u32> = Default::default();
        for (op, key) in ops {
            let id = format!("doc-{key}");
            if op == 0 {
                let doc = Value::map([("_id", Value::from(id.as_str()))]);
                match collection.insert(doc) {
                    Ok(()) => prop_assert!(model.insert(key), "insert succeeded only if absent"),
                    Err(_) => prop_assert!(model.contains(&key), "duplicate rejected"),
                }
            } else {
                let removed = collection.delete(&id).is_some();
                prop_assert_eq!(removed, model.remove(&key));
            }
        }
        prop_assert_eq!(collection.len(), model.len());
        for key in model {
            let id = format!("doc-{key}");
            prop_assert!(collection.get(&id).is_some());
        }
    }

    /// Blob store: content-addressed round trip and dedup.
    #[test]
    fn blobstore_round_trip(blobs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..128), 0..16)) {
        let store = BlobStore::new();
        let distinct: std::collections::BTreeSet<Vec<u8>> = blobs.iter().cloned().collect();
        for blob in &blobs {
            let key = store.put(blob.clone());
            let fetched = store.get(key).unwrap();
            prop_assert_eq!(fetched.as_ref(), blob.as_slice());
        }
        prop_assert_eq!(store.len(), distinct.len(), "identical content stored once");
    }

    /// Database save/load round-trips arbitrary documents.
    #[test]
    fn database_persistence_round_trip(docs in proptest::collection::vec(value_strategy(), 0..8)) {
        let db = Database::in_memory();
        let collection = db.collection("props");
        let mut stored = 0;
        for (i, body) in docs.into_iter().enumerate() {
            let mut doc = Value::map([("_id", Value::from(format!("d{i}")))]);
            doc.set_at("body", body);
            collection.insert(doc).unwrap();
            stored += 1;
        }
        let dir = std::env::temp_dir().join(format!(
            "simart-db-props-{}-{stored}-{}",
            std::process::id(),
            rand_suffix()
        ));
        db.save(&dir).unwrap();
        let restored = Database::load(&dir).unwrap();
        prop_assert_eq!(restored.collection("props").len(), stored);
        for doc in collection.all() {
            let id = doc.at("_id").and_then(Value::as_str).unwrap();
            prop_assert_eq!(restored.collection("props").get(id).unwrap(), doc);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

fn rand_suffix() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    COUNTER.fetch_add(1, Ordering::SeqCst)
}
