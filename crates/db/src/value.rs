//! The JSON-like document model.

use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed document value.
///
/// Documents stored in a [`crate::Collection`] are `Value::Map`s; nested
/// values are addressed with dotted paths (`"config.cpu.count"`).
///
/// ```
/// use simart_db::Value;
///
/// let doc = Value::map([
///     ("name", Value::from("blackscholes")),
///     ("cores", Value::from(8i64)),
///     ("config", Value::map([("mem", Value::from("DDR3_1600_8x8"))])),
/// ]);
/// assert_eq!(doc.at("config.mem").and_then(Value::as_str), Some("DDR3_1600_8x8"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// Absence of a value.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed 64-bit integer.
    Int(i64),
    /// IEEE-754 double.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list.
    Array(Vec<Value>),
    /// String-keyed map with deterministic (sorted) iteration order.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a map value from `(key, value)` pairs.
    pub fn map<K: Into<String>>(entries: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Map(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array value.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// Navigates a dotted path (`"a.b.c"`) through nested maps.
    /// Returns `None` when any segment is missing or a non-map is
    /// traversed. An empty path returns `self`.
    pub fn at(&self, path: &str) -> Option<&Value> {
        if path.is_empty() {
            return Some(self);
        }
        let mut current = self;
        for segment in path.split('.') {
            match current {
                Value::Map(map) => current = map.get(segment)?,
                Value::Array(items) => current = items.get(segment.parse::<usize>().ok()?)?,
                _ => return None,
            }
        }
        Some(current)
    }

    /// Sets a dotted path, creating intermediate maps as needed.
    ///
    /// Returns `false` (leaving the value unchanged beyond any maps
    /// created along the way) when a non-map intermediate blocks the path.
    pub fn set_at(&mut self, path: &str, value: Value) -> bool {
        let mut current = self;
        let segments: Vec<&str> = path.split('.').collect();
        for (i, segment) in segments.iter().enumerate() {
            let is_last = i + 1 == segments.len();
            match current {
                Value::Map(map) => {
                    if is_last {
                        map.insert((*segment).to_owned(), value);
                        return true;
                    }
                    current = map
                        .entry((*segment).to_owned())
                        .or_insert_with(|| Value::Map(BTreeMap::new()));
                }
                _ => return false,
            }
        }
        false
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, when this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A numeric view: integers widen to `f64`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean payload, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The map payload, when this is a map.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(map) => Some(map),
            _ => None,
        }
    }

    /// Whether this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total ordering used by query comparison operators.
    ///
    /// Values of different types order by type rank (null < bool < number
    /// < string < array < map); numbers compare numerically across
    /// Int/Float. NaN floats order above all other numbers.
    pub fn compare(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Array(_) => 4,
                Value::Map(_) => 5,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let fa = a.as_float().expect("rank 2 is numeric");
                let fb = b.as_float().expect("rank 2 is numeric");
                fa.partial_cmp(&fb)
                    .unwrap_or_else(|| match (fa.is_nan(), fb.is_nan()) {
                        (true, false) => Ordering::Greater,
                        (false, true) => Ordering::Less,
                        _ => Ordering::Equal,
                    })
            }
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.compare(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Map(a), Value::Map(b)) => {
                let mut ai = a.iter();
                let mut bi = b.iter();
                loop {
                    match (ai.next(), bi.next()) {
                        (None, None) => return Ordering::Equal,
                        (None, Some(_)) => return Ordering::Less,
                        (Some(_), None) => return Ordering::Greater,
                        (Some((ka, va)), Some((kb, vb))) => {
                            let ord = ka.cmp(kb).then_with(|| va.compare(vb));
                            if ord != Ordering::Equal {
                                return ord;
                            }
                        }
                    }
                }
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

impl FromIterator<(String, Value)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Value {
        Value::Map(iter.into_iter().collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_json(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_navigation_handles_maps_and_arrays() {
        let doc = Value::map([(
            "a",
            Value::map([("b", Value::array([Value::from(10i64), Value::from(20i64)]))]),
        )]);
        assert_eq!(doc.at("a.b.1").and_then(Value::as_int), Some(20));
        assert_eq!(doc.at("a.b.2"), None);
        assert_eq!(doc.at("a.x"), None);
        assert_eq!(doc.at(""), Some(&doc));
    }

    #[test]
    fn set_at_creates_intermediate_maps() {
        let mut doc = Value::map([("x", Value::from(1i64))] as [(&str, Value); 1]);
        assert!(doc.set_at("a.b.c", Value::from("deep")));
        assert_eq!(doc.at("a.b.c").and_then(Value::as_str), Some("deep"));
        // A scalar blocks further descent.
        assert!(!doc.set_at("x.y", Value::Null));
    }

    #[test]
    fn numeric_comparison_crosses_int_float() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::from(1i64).compare(&Value::from(1.0)), Equal);
        assert_eq!(Value::from(1i64).compare(&Value::from(1.5)), Less);
        assert_eq!(Value::from(2.5).compare(&Value::from(2i64)), Greater);
    }

    #[test]
    fn type_rank_ordering_is_total() {
        use std::cmp::Ordering::Less;
        let ladder = [
            Value::Null,
            Value::from(false),
            Value::from(0i64),
            Value::from("a"),
            Value::array([]),
            Value::map([] as [(&str, Value); 0]),
        ];
        for pair in ladder.windows(2) {
            assert_eq!(pair[0].compare(&pair[1]), Less);
        }
    }

    #[test]
    fn array_and_map_compare_lexicographically() {
        use std::cmp::Ordering::*;
        let a = Value::array([Value::from(1i64), Value::from(2i64)]);
        let b = Value::array([Value::from(1i64), Value::from(3i64)]);
        let c = Value::array([Value::from(1i64)]);
        assert_eq!(a.compare(&b), Less);
        assert_eq!(c.compare(&a), Less);
        assert_eq!(a.compare(&a), Equal);

        let m1 = Value::map([("a", Value::from(1i64))]);
        let m2 = Value::map([("a", Value::from(2i64))]);
        assert_eq!(m1.compare(&m2), Less);
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(
            Value::from(vec![1i64, 2]),
            Value::array([Value::Int(1), Value::Int(2)])
        );
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some("x")), Value::from("x"));
    }
}
