//! The append-only write-ahead journal behind [`Database::open`].
//!
//! Snapshot saves ([`Database::save`]) re-serialize every collection on
//! each call, so persistence cost grows with the whole database and a
//! crash loses everything since the last explicit save. The journal
//! inverts that: a directory-attached database appends one CRC-framed
//! record per mutation *as it happens*, so persistence cost is O(delta)
//! and killing the process at any instant loses at most the record
//! being written. [`Database::checkpoint`] periodically folds the
//! journal into the per-collection `.jsonl` snapshot files and
//! compacts it.
//!
//! ## Durability scope
//!
//! Appends are *not* individually fsynced — each record reaches the OS
//! page cache synchronously but the disk at the kernel's discretion.
//! The per-record guarantee therefore covers **process crashes** (kill
//! -9, panic, OOM): the moment `append` returns, the record survives
//! the death of this process. Against an **OS crash or power loss** an
//! arbitrary suffix of un-synced records may be lost or reordered;
//! what is guaranteed durable then is everything up to the last
//! [`Database::checkpoint`] or [`Database::save`], both of which sync
//! every file they write (the checkpoint splice syncs the compacted
//! journal too, so a checkpoint is an fsync barrier for the records it
//! folds). Torn-tail replay makes either outcome recoverable: replay
//! stops at the first bad frame and never loads a partial record.
//!
//! ## On-disk format
//!
//! `<dir>/journal.log` is a sequence of records, each framed as
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is the IEEE CRC-32 of the payload and the payload is the
//! compact JSON rendering of one [`JournalOp`]. Replay
//! ([`read_journal`]) walks records from the start and stops at the
//! first frame that is incomplete, fails its CRC, or does not parse —
//! the *torn tail* a crash mid-append leaves behind. Everything before
//! the tear is recovered exactly; the tear itself is reported, never
//! fatal.
//!
//! [`Database::open`]: crate::Database::open
//! [`Database::save`]: crate::Database::save
//! [`Database::checkpoint`]: crate::Database::checkpoint

use crate::error::DbError;
use crate::json;
use crate::value::Value;
use parking_lot::{Mutex, RwLock};
use simart_observe as observe;
use std::fs;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the journal inside a database directory.
pub const JOURNAL_FILE: &str = "journal.log";

/// One journaled mutation, in the order it was applied in memory.
///
/// Replay of a journal is idempotent: re-applying a suffix whose
/// effects already landed in a checkpoint (possible when a crash
/// interrupts checkpoint compaction) converges to the same state.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A document was inserted into a collection.
    Insert {
        /// Collection name.
        collection: String,
        /// The inserted document.
        doc: Value,
    },
    /// A document was inserted or replaced (upsert).
    Upsert {
        /// Collection name.
        collection: String,
        /// The new document.
        doc: Value,
    },
    /// A document was deleted.
    Delete {
        /// Collection name.
        collection: String,
        /// The deleted document's `_id`.
        id: String,
    },
    /// A whole collection was dropped.
    DropCollection {
        /// Collection name.
        collection: String,
    },
    /// A blob was stored (content-addressed; the key is the content
    /// hash, so it is not recorded separately).
    BlobPut {
        /// The blob's bytes.
        data: Vec<u8>,
    },
    /// A blob was removed by key.
    BlobRemove {
        /// Hex form of the removed blob's key.
        key: String,
    },
    /// A secondary index was declared on a collection. Journaling the
    /// definition (not the entries — indexes are rebuilt from the
    /// documents) lets declarations survive checkpoint compaction.
    EnsureIndex {
        /// Collection name.
        collection: String,
        /// The declared index.
        spec: crate::collection::IndexSpec,
    },
}

impl JournalOp {
    /// Compact JSON payload for one record.
    fn to_payload(&self) -> String {
        let value = match self {
            JournalOp::Insert { collection, doc } => Value::map([
                ("op", Value::from("ins")),
                ("c", Value::from(collection.clone())),
                ("d", doc.clone()),
            ]),
            JournalOp::Upsert { collection, doc } => Value::map([
                ("op", Value::from("ups")),
                ("c", Value::from(collection.clone())),
                ("d", doc.clone()),
            ]),
            JournalOp::Delete { collection, id } => Value::map([
                ("op", Value::from("del")),
                ("c", Value::from(collection.clone())),
                ("id", Value::from(id.clone())),
            ]),
            JournalOp::DropCollection { collection } => Value::map([
                ("op", Value::from("drop")),
                ("c", Value::from(collection.clone())),
            ]),
            JournalOp::BlobPut { data } => Value::map([
                ("op", Value::from("blob")),
                ("hex", Value::from(to_hex(data))),
            ]),
            JournalOp::BlobRemove { key } => Value::map([
                ("op", Value::from("blobrm")),
                ("key", Value::from(key.clone())),
            ]),
            JournalOp::EnsureIndex { collection, spec } => Value::map([
                ("op", Value::from("idx")),
                ("c", Value::from(collection.clone())),
                ("p", Value::from(spec.path.clone())),
                ("k", Value::from(spec.kind.as_str())),
                ("u", Value::from(spec.unique)),
            ]),
        };
        json::to_json(&value)
    }

    /// Parses one record payload back into an op.
    fn from_payload(text: &str) -> Result<JournalOp, String> {
        let value = json::from_json(text).map_err(|e| e.to_string())?;
        let field = |name: &str| -> Result<String, String> {
            value
                .at(name)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("journal record lacks `{name}`"))
        };
        let doc = || -> Result<Value, String> {
            value
                .at("d")
                .cloned()
                .ok_or_else(|| "journal record lacks `d`".to_owned())
        };
        match field("op")?.as_str() {
            "ins" => Ok(JournalOp::Insert {
                collection: field("c")?,
                doc: doc()?,
            }),
            "ups" => Ok(JournalOp::Upsert {
                collection: field("c")?,
                doc: doc()?,
            }),
            "del" => Ok(JournalOp::Delete {
                collection: field("c")?,
                id: field("id")?,
            }),
            "drop" => Ok(JournalOp::DropCollection {
                collection: field("c")?,
            }),
            "blob" => {
                let data = from_hex(&field("hex")?)
                    .ok_or_else(|| "journal blob record has bad hex".to_owned())?;
                Ok(JournalOp::BlobPut { data })
            }
            "blobrm" => Ok(JournalOp::BlobRemove { key: field("key")? }),
            "idx" => Ok(JournalOp::EnsureIndex {
                collection: field("c")?,
                spec: crate::collection::IndexSpec {
                    path: field("p")?,
                    kind: crate::collection::IndexKind::parse(&field("k")?)
                        .ok_or_else(|| "journal index record has unknown kind".to_owned())?,
                    unique: value
                        .at("u")
                        .and_then(Value::as_bool)
                        .ok_or_else(|| "journal record lacks `u`".to_owned())?,
                },
            }),
            other => Err(format!("unknown journal op `{other}`")),
        }
    }
}

/// The result of scanning a journal file: the decoded record prefix
/// plus how much of the file (if anything) was torn.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalReplay {
    /// Records recovered, in append order.
    pub ops: Vec<JournalOp>,
    /// Bytes of the file covered by intact records.
    pub valid_bytes: u64,
    /// Trailing bytes after the last intact record — the torn tail a
    /// crash mid-append leaves behind (0 for a cleanly closed journal).
    pub torn_bytes: u64,
}

/// Reads and decodes `<dir>/journal.log`.
///
/// A missing journal (pre-journal layout, or a freshly checkpointed
/// database) yields an empty replay. A torn tail stops the scan at the
/// last intact record; it is reported via
/// [`torn_bytes`](JournalReplay::torn_bytes), never an error.
///
/// # Errors
///
/// Propagates filesystem failures other than the file being absent.
pub fn read_journal(dir: &Path) -> Result<JournalReplay, DbError> {
    read_journal_from(dir, 0)
}

/// Like [`read_journal`], but resumes decoding at byte `offset` — the
/// incremental-analysis entry point: a consumer that recorded a
/// [`JournalCursor`] replays only the records appended since, paying
/// O(delta) instead of O(journal).
///
/// `offset` must be a frame boundary previously obtained from
/// [`Database::journal_cursor`](crate::Database::journal_cursor) or
/// [`JournalReplay::valid_bytes`] *and* still valid for the current
/// file — callers are expected to check [`JournalCursor::is_valid`]
/// first, because compaction renumbers offsets. The returned
/// [`valid_bytes`](JournalReplay::valid_bytes) is absolute (measured
/// from the start of the file), so it can seed the next cursor.
///
/// # Errors
///
/// * [`DbError::CorruptRecord`] — the journal is shorter than
///   `offset` (compacted, truncated, or rewritten since the offset was
///   recorded).
/// * [`DbError::Io`] — other filesystem failures.
pub fn read_journal_from(dir: &Path, offset: u64) -> Result<JournalReplay, DbError> {
    let path = dir.join(JOURNAL_FILE);
    let mut file = match fs::File::open(&path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && offset == 0 => {
            return Ok(JournalReplay::default())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(DbError::CorruptRecord {
                path: path.display().to_string(),
                detail: format!("journal missing but resume offset is {offset}"),
            })
        }
        Err(e) => return Err(e.into()),
    };
    if file.metadata()?.len() < offset {
        return Err(DbError::CorruptRecord {
            path: path.display().to_string(),
            detail: format!("journal shorter than resume offset {offset}"),
        });
    }
    file.seek(SeekFrom::Start(offset))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if bytes.len() - pos - 8 < len {
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(op) = JournalOp::from_payload(text) else {
            break;
        };
        ops.push(op);
        pos += 8 + len;
    }
    Ok(JournalReplay {
        ops,
        valid_bytes: offset + pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
    })
}

/// A stable position in a journal: a byte offset on a frame boundary
/// plus the CRC-32 of every byte before it.
///
/// The offset alone is not a stable identity — checkpoint compaction
/// splices the folded prefix off the file, so the same offset can name
/// different records before and after a checkpoint (or after a
/// [`save`](crate::Database::save), which truncates the journal). The
/// prefix checksum pins the cursor to the exact bytes it was taken
/// over: [`JournalCursor::is_valid`] accepts the cursor only if the
/// current file still starts with that same prefix, which is exactly
/// the condition under which [`read_journal_from`] resumes where the
/// cursor left off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalCursor {
    /// Byte offset of the next frame (bytes `[0, offset)` are intact
    /// records the cursor's owner has already consumed).
    pub offset: u64,
    /// IEEE CRC-32 of the file's first `offset` bytes.
    pub crc: u32,
}

impl JournalCursor {
    /// Captures a cursor at `offset` by checksumming the journal's
    /// current prefix. Returns `None` if the file is shorter than
    /// `offset` (or absent with `offset > 0`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures other than the file being absent.
    pub fn capture(dir: &Path, offset: u64) -> Result<Option<JournalCursor>, DbError> {
        Ok(prefix_crc(dir, offset)?.map(|crc| JournalCursor { offset, crc }))
    }

    /// Whether this cursor still names a position in `dir`'s journal:
    /// the file is at least `offset` bytes long and its first `offset`
    /// bytes still hash to the recorded checksum. `false` means the
    /// journal was compacted, truncated, or rewritten past the cursor.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures other than the file being absent.
    pub fn is_valid(&self, dir: &Path) -> Result<bool, DbError> {
        Ok(prefix_crc(dir, self.offset)? == Some(self.crc))
    }
}

/// IEEE CRC-32 of the first `upto` bytes of `<dir>/journal.log`, or
/// `None` if the file is shorter than `upto` (a missing file counts as
/// zero-length, so `upto == 0` always yields the empty checksum).
///
/// # Errors
///
/// Propagates filesystem failures other than the file being absent.
pub fn prefix_crc(dir: &Path, upto: u64) -> Result<Option<u32>, DbError> {
    if upto == 0 {
        return Ok(Some(crc32(b"")));
    }
    let file = match fs::File::open(dir.join(JOURNAL_FILE)) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if file.metadata()?.len() < upto {
        return Ok(None);
    }
    let mut reader = file.take(upto);
    let mut state = 0xFFFF_FFFFu32;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = reader.read(&mut buf)?;
        if n == 0 {
            break;
        }
        for &b in &buf[..n] {
            state = CRC_TABLE[((state ^ u32::from(b)) & 0xFF) as usize] ^ (state >> 8);
        }
    }
    Ok(Some(state ^ 0xFFFF_FFFF))
}

/// The shared slot holding a database's journal writer. Every
/// [`Collection`](crate::Collection) handle and the blob store share
/// one cell with their owning `Database`, so attaching a journal after
/// load makes all existing handles write through it immediately.
pub(crate) type JournalCell = Arc<RwLock<Option<Journal>>>;

/// Appends an op if the cell currently holds an attached journal.
pub(crate) fn append_if_attached(cell: &JournalCell, op: &JournalOp) -> Result<(), DbError> {
    match cell.read().as_ref() {
        Some(journal) => journal.append(op),
        None => Ok(()),
    }
}

/// Like [`append_if_attached`] for write paths that cannot propagate
/// errors (`delete`, `update_many`, blob puts): an append failure is
/// counted on the `db.journal_append_errors` metric and the in-memory
/// mutation proceeds — durability of that one record is then deferred
/// to the next checkpoint.
pub(crate) fn append_best_effort(cell: &JournalCell, op: &JournalOp) {
    if append_if_attached(cell, op).is_err() {
        observe::count("db.journal_append_errors", 1);
    }
}

/// The append-side journal writer of a directory-attached database.
#[derive(Debug)]
pub(crate) struct Journal {
    dir: PathBuf,
    path: PathBuf,
    writer: Mutex<Writer>,
}

/// Mutable writer state, all guarded by one lock so the tracked length
/// can never disagree with the file contents.
#[derive(Debug)]
struct Writer {
    file: fs::File,
    /// Bytes covered by intact records — where the next append lands.
    /// Tracked explicitly so a failed partial append can be rolled back
    /// to a frame boundary without trusting the (now torn) file length.
    len: u64,
    /// Set when a failed append could not be rolled back: the file ends
    /// in a torn frame, and any further append would land *after* it,
    /// orphaned — replay stops at the first bad frame. A poisoned
    /// journal refuses appends until a compaction rewrites the file.
    poisoned: bool,
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, discarding any
    /// torn tail beyond `valid_bytes` so new appends continue from the
    /// last intact record.
    pub(crate) fn attach(dir: &Path, valid_bytes: u64) -> Result<Journal, DbError> {
        let path = dir.join(JOURNAL_FILE);
        // truncate(false): existing records before `valid_bytes` are
        // the database — set_len below trims only the torn tail.
        let mut file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        file.set_len(valid_bytes)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Journal {
            dir: dir.to_owned(),
            path,
            writer: Mutex::new(Writer {
                file,
                len: valid_bytes,
                poisoned: false,
            }),
        })
    }

    /// The database directory this journal belongs to.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one framed record.
    ///
    /// A failed write is rolled back to the previous frame boundary so
    /// a torn frame can never sit *between* intact records (replay
    /// would silently discard everything after it). If the rollback
    /// itself fails the journal is poisoned: every further append
    /// returns [`DbError::JournalPoisoned`] instead of appending after
    /// the tear, until a checkpoint compaction rewrites the file.
    pub(crate) fn append(&self, op: &JournalOp) -> Result<(), DbError> {
        let _timer = observe::timer("db.journal_append_us");
        let payload = op.to_payload();
        let bytes = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        let mut writer = self.writer.lock();
        if writer.poisoned {
            return Err(DbError::JournalPoisoned);
        }
        let start = writer.len;
        if let Err(err) = writer.file.write_all(&frame) {
            let rolled_back = writer.file.set_len(start).is_ok()
                && writer.file.seek(SeekFrom::Start(start)).is_ok();
            if !rolled_back {
                writer.poisoned = true;
                observe::count("db.journal_poisoned", 1);
            }
            return Err(err.into());
        }
        writer.len = start + frame.len() as u64;
        Ok(())
    }

    /// Bytes covered by intact records (excludes any torn frame a
    /// failed, unrollbackable append left at the tail).
    pub(crate) fn len(&self) -> Result<u64, DbError> {
        Ok(self.writer.lock().len)
    }

    /// Drops the first `upto` bytes (the prefix a checkpoint just
    /// folded into the snapshot), keeping any records appended since.
    ///
    /// The splice is atomic: the suffix is written to a sibling `.tmp`
    /// file, synced, and renamed over the journal, so a crash leaves
    /// either the old journal (replay is idempotent over the folded
    /// prefix) or the compacted one. Only intact records are copied, so
    /// compaction also heals a poisoned journal (drops its torn tail
    /// and re-enables appends).
    pub(crate) fn compact_prefix(&self, upto: u64) -> Result<(), DbError> {
        let mut writer = self.writer.lock();
        let total = writer.len;
        let upto = upto.min(total);
        writer.file.seek(SeekFrom::Start(upto))?;
        // Read exactly the intact suffix — a torn frame past `len`
        // (failed append that could not be rolled back) is left behind.
        let mut rest = vec![0u8; (total - upto) as usize];
        writer.file.read_exact(&mut rest)?;
        let tmp = self.dir.join(format!("{JOURNAL_FILE}.tmp"));
        {
            let mut out = fs::File::create(&tmp)?;
            out.write_all(&rest)?;
            out.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        let mut reopened = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&self.path)?;
        reopened.seek(SeekFrom::End(0))?;
        writer.file = reopened;
        writer.len = rest.len() as u64;
        writer.poisoned = false;
        Ok(())
    }
}

/// IEEE CRC-32 lookup table, generated at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `data` (the frame checksum).
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn to_hex(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn from_hex(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(hex.get(i..i + 2)?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn ops_round_trip_through_payload_encoding() {
        let ops = [
            JournalOp::Insert {
                collection: "runs".into(),
                doc: Value::map([("_id", Value::from("r1")), ("n", Value::from(3i64))]),
            },
            JournalOp::Upsert {
                collection: "runs".into(),
                doc: Value::map([("_id", Value::from("r1")), ("n", Value::from(4i64))]),
            },
            JournalOp::Delete {
                collection: "runs".into(),
                id: "r1".into(),
            },
            JournalOp::DropCollection {
                collection: "metrics".into(),
            },
            JournalOp::BlobPut {
                data: vec![0, 1, 2, 0xff],
            },
            JournalOp::BlobRemove { key: "00ff".into() },
            JournalOp::EnsureIndex {
                collection: "artifacts".into(),
                spec: crate::collection::IndexSpec::hash("hash").unique(),
            },
            JournalOp::EnsureIndex {
                collection: "runs".into(),
                spec: crate::collection::IndexSpec::ordered("ticks"),
            },
        ];
        for op in ops {
            let text = op.to_payload();
            assert_eq!(JournalOp::from_payload(&text).expect("parse"), op);
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        assert_eq!(
            from_hex(&to_hex(&[0u8, 255, 16])).unwrap(),
            vec![0u8, 255, 16]
        );
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
    }

    #[test]
    fn torn_tail_is_tolerated_at_any_byte() {
        let dir = std::env::temp_dir().join(format!("simart-journal-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal = Journal::attach(&dir, 0).unwrap();
        let ops: Vec<JournalOp> = (0..4)
            .map(|i| JournalOp::Insert {
                collection: "c".into(),
                doc: Value::map([("_id", Value::from(format!("d{i}")))]),
            })
            .collect();
        for op in &ops {
            journal.append(op).unwrap();
        }
        let full = fs::read(dir.join(JOURNAL_FILE)).unwrap();
        // Record boundaries: replay of any truncation recovers exactly
        // the records wholly before the cut.
        let mut boundaries = vec![0usize];
        {
            let replay = read_journal(&dir).unwrap();
            assert_eq!(replay.ops, ops);
            assert_eq!(replay.torn_bytes, 0);
            assert_eq!(replay.valid_bytes as usize, full.len());
        }
        let mut pos = 0;
        while pos < full.len() {
            let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 8 + len;
            boundaries.push(pos);
        }
        for cut in 0..=full.len() {
            fs::write(dir.join(JOURNAL_FILE), &full[..cut]).unwrap();
            let replay = read_journal(&dir).unwrap();
            let complete = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(replay.ops, ops[..complete], "cut at byte {cut}");
            assert_eq!(replay.valid_bytes as usize, boundaries[complete]);
            assert_eq!(replay.torn_bytes as usize, cut - boundaries[complete]);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let dir = std::env::temp_dir().join(format!("simart-journal-crc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal = Journal::attach(&dir, 0).unwrap();
        for i in 0..3 {
            journal
                .append(&JournalOp::Delete {
                    collection: "c".into(),
                    id: format!("d{i}"),
                })
                .unwrap();
        }
        let mut bytes = fs::read(dir.join(JOURNAL_FILE)).unwrap();
        // Flip a payload byte of the second record.
        let len0 = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload = 8 + len0 + 8;
        bytes[second_payload] ^= 0x40;
        fs::write(dir.join(JOURNAL_FILE), &bytes).unwrap();
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.ops.len(), 1, "replay stops at the corrupt record");
        assert!(replay.torn_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_poisons_instead_of_orphaning_later_records() {
        let dir =
            std::env::temp_dir().join(format!("simart-journal-poison-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal = Journal::attach(&dir, 0).unwrap();
        let good = JournalOp::Delete {
            collection: "c".into(),
            id: "good".into(),
        };
        journal.append(&good).unwrap();
        // Swap in a read-only handle: the next write fails, and the
        // rollback (set_len on a read-only fd) fails too — the journal
        // must poison itself rather than let a later append land after
        // a torn frame.
        {
            let mut writer = journal.writer.lock();
            writer.file = fs::OpenOptions::new()
                .read(true)
                .open(dir.join(JOURNAL_FILE))
                .unwrap();
        }
        let lost = JournalOp::Delete {
            collection: "c".into(),
            id: "lost".into(),
        };
        assert!(matches!(journal.append(&lost).unwrap_err(), DbError::Io(_)));
        assert!(journal.writer.lock().poisoned);
        assert!(matches!(
            journal.append(&lost).unwrap_err(),
            DbError::JournalPoisoned
        ));
        // Compaction rewrites the file from intact records only, which
        // heals the poison and re-enables appends.
        journal.compact_prefix(0).unwrap();
        let post = JournalOp::Delete {
            collection: "c".into(),
            id: "post".into(),
        };
        journal.append(&post).unwrap();
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.ops, vec![good, post]);
        assert_eq!(replay.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_prefix_drops_bytes_past_the_tracked_length() {
        // A torn frame past the tracked length (a failed append that
        // could not be rolled back) must not survive compaction.
        let dir = std::env::temp_dir().join(format!("simart-journal-heal-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal = Journal::attach(&dir, 0).unwrap();
        let op = JournalOp::Delete {
            collection: "c".into(),
            id: "keep".into(),
        };
        journal.append(&op).unwrap();
        let mut tail = fs::OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .unwrap();
        tail.write_all(&[0xde, 0xad, 0x01]).unwrap();
        drop(tail);
        assert!(read_journal(&dir).unwrap().torn_bytes > 0);
        journal.compact_prefix(0).unwrap();
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.ops, vec![op]);
        assert_eq!(replay.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_journal_from_resumes_at_a_cursor() {
        let dir =
            std::env::temp_dir().join(format!("simart-journal-cursor-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // Before any journal exists: offset 0 reads empty, a cursor at
        // 0 is valid, and a nonzero offset is unreachable.
        assert_eq!(
            read_journal_from(&dir, 0).unwrap(),
            JournalReplay::default()
        );
        let zero = JournalCursor::capture(&dir, 0).unwrap().unwrap();
        assert!(zero.is_valid(&dir).unwrap());
        assert!(JournalCursor::capture(&dir, 9).unwrap().is_none());
        assert!(matches!(
            read_journal_from(&dir, 9),
            Err(DbError::CorruptRecord { .. })
        ));

        let journal = Journal::attach(&dir, 0).unwrap();
        let ops: Vec<JournalOp> = (0..4)
            .map(|i| JournalOp::Delete {
                collection: "c".into(),
                id: format!("d{i}"),
            })
            .collect();
        journal.append(&ops[0]).unwrap();
        journal.append(&ops[1]).unwrap();
        let mid = journal.len().unwrap();
        let cursor = JournalCursor::capture(&dir, mid).unwrap().unwrap();
        journal.append(&ops[2]).unwrap();
        journal.append(&ops[3]).unwrap();

        // The cursor stays valid as the file grows, and replaying from
        // it yields exactly the records appended since — with absolute
        // valid_bytes so the next cursor chains on.
        assert!(cursor.is_valid(&dir).unwrap());
        let replay = read_journal_from(&dir, cursor.offset).unwrap();
        assert_eq!(replay.ops, ops[2..]);
        assert_eq!(replay.valid_bytes, journal.len().unwrap());
        assert_eq!(replay.torn_bytes, 0);
        let next = JournalCursor::capture(&dir, replay.valid_bytes)
            .unwrap()
            .unwrap();
        assert!(next.is_valid(&dir).unwrap());
        assert!(read_journal_from(&dir, next.offset).unwrap().ops.is_empty());

        // An offset that is not a frame boundary decodes nothing: the
        // bytes there fail CRC framing and count as torn.
        let skewed = read_journal_from(&dir, cursor.offset + 1).unwrap();
        assert!(skewed.ops.is_empty());
        assert!(skewed.torn_bytes > 0);

        // Compaction splices the prefix away: the old cursor's offset
        // now points past (or at differently-checksummed) bytes, so
        // validation fails instead of silently replaying wrong records.
        journal.compact_prefix(journal.len().unwrap()).unwrap();
        assert!(!cursor.is_valid(&dir).unwrap());
        assert!(!next.is_valid(&dir).unwrap());
        assert!(JournalCursor::capture(&dir, 0)
            .unwrap()
            .unwrap()
            .is_valid(&dir)
            .unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_rejects_a_rewritten_prefix_of_equal_length() {
        // Same length, different bytes: only the checksum catches it.
        let dir =
            std::env::temp_dir().join(format!("simart-journal-rewrite-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal = Journal::attach(&dir, 0).unwrap();
        journal
            .append(&JournalOp::Delete {
                collection: "c".into(),
                id: "aa".into(),
            })
            .unwrap();
        let cursor = JournalCursor::capture(&dir, journal.len().unwrap())
            .unwrap()
            .unwrap();
        drop(journal);
        let rewritten = Journal::attach(&dir, 0).unwrap();
        rewritten
            .append(&JournalOp::Delete {
                collection: "c".into(),
                id: "bb".into(),
            })
            .unwrap();
        // attach(dir, 0) truncated to zero, then an equal-length record
        // with different payload landed.
        assert!(!cursor.is_valid(&dir).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_prefix_keeps_the_suffix() {
        let dir =
            std::env::temp_dir().join(format!("simart-journal-compact-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal = Journal::attach(&dir, 0).unwrap();
        journal
            .append(&JournalOp::Delete {
                collection: "c".into(),
                id: "old".into(),
            })
            .unwrap();
        let folded = journal.len().unwrap();
        journal
            .append(&JournalOp::Delete {
                collection: "c".into(),
                id: "new".into(),
            })
            .unwrap();
        journal.compact_prefix(folded).unwrap();
        let replay = read_journal(&dir).unwrap();
        assert_eq!(
            replay.ops,
            vec![JournalOp::Delete {
                collection: "c".into(),
                id: "new".into()
            }]
        );
        // Appends keep working through the reopened handle.
        journal
            .append(&JournalOp::Delete {
                collection: "c".into(),
                id: "post".into(),
            })
            .unwrap();
        assert_eq!(read_journal(&dir).unwrap().ops.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
