//! Typed persistence of [`simart_artifact::Artifact`] records.
//!
//! The paper's workflow step ①/② is "register all artifacts; associated
//! files are stored in the database as well". [`ArtifactStore`] maps
//! artifact records to documents in an `artifacts` collection (with a
//! unique constraint on the content hash, mirroring the paper's "no
//! duplicate artifacts" rule) and optional payload bytes to the blob
//! store.

use crate::blobstore::BlobKey;
use crate::database::Database;
use crate::error::DbError;
use crate::query::Filter;
use crate::value::Value;
use simart_artifact::{Artifact, ArtifactId, ArtifactKind, GitInfo};
use std::str::FromStr;

/// Artifact ↔ document mapping over a [`Database`].
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    db: Database,
}

impl ArtifactStore {
    /// Collection name used for artifact documents.
    pub const COLLECTION: &'static str = "artifacts";

    /// Wraps a database, installing the hash-uniqueness constraint, the
    /// lookup indexes behind [`find_by_name`](Self::find_by_name) and
    /// [`find_by_kind`](Self::find_by_kind), and the multikey `inputs`
    /// index the provenance-DAG walks ([`dependents`](Self::dependents),
    /// [`dependent_closure`](Self::dependent_closure)) probe instead of
    /// scanning the collection.
    ///
    /// # Errors
    ///
    /// Fails if the database already contains duplicate artifact hashes.
    pub fn new(db: &Database) -> Result<ArtifactStore, DbError> {
        let store = ArtifactStore { db: db.clone() };
        let collection = store.collection();
        collection.ensure_unique("hash")?;
        collection.ensure_index(crate::IndexSpec::hash("name"))?;
        collection.ensure_index(crate::IndexSpec::hash("kind"))?;
        collection.ensure_index(crate::IndexSpec::hash("inputs"))?;
        Ok(store)
    }

    fn collection(&self) -> crate::Collection {
        self.db.collection(Self::COLLECTION)
    }

    /// Persists an artifact record, optionally with its payload bytes.
    ///
    /// Re-saving the identical artifact is a no-op (the paper stores a
    /// file "unless it already exists there").
    ///
    /// # Errors
    ///
    /// Propagates uniqueness violations for distinct artifacts whose
    /// content hashes collide.
    pub fn save(&self, artifact: &Artifact, payload: Option<&[u8]>) -> Result<(), DbError> {
        let doc = artifact_to_doc(artifact, payload.map(|p| self.db.blobs().put(p.to_vec())));
        match self.collection().insert(doc) {
            Ok(()) => Ok(()),
            Err(DbError::DuplicateId { .. }) => Ok(()), // identical record already saved
            Err(other) => Err(other),
        }
    }

    /// Loads an artifact by id.
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] when absent; [`DbError::InvalidDocument`]
    /// when the stored document is malformed.
    pub fn load(&self, id: ArtifactId) -> Result<Artifact, DbError> {
        let doc = self
            .collection()
            .get(&id.to_string())
            .ok_or_else(|| DbError::NotFound {
                query: id.to_string(),
            })?;
        doc_to_artifact(&doc)
    }

    /// Loads the payload bytes stored with an artifact, if any.
    pub fn load_payload(&self, id: ArtifactId) -> Option<bytes::Bytes> {
        let doc = self.collection().get(&id.to_string())?;
        let key = BlobKey::from_hex(doc.at("payload").and_then(Value::as_str)?)?;
        self.db.blobs().get(key)
    }

    /// All stored artifacts with the given name.
    pub fn find_by_name(&self, name: &str) -> Result<Vec<Artifact>, DbError> {
        self.collection()
            .find(&Filter::eq("name", name))
            .iter()
            .map(doc_to_artifact)
            .collect()
    }

    /// All stored artifacts of the given kind.
    pub fn find_by_kind(&self, kind: &ArtifactKind) -> Result<Vec<Artifact>, DbError> {
        self.collection()
            .find(&Filter::eq("kind", kind_str(kind)))
            .iter()
            .map(doc_to_artifact)
            .collect()
    }

    /// Direct dependents of an artifact: every stored artifact that
    /// lists `id` among its `inputs`. One probe of the multikey
    /// `inputs` index (`db.query_planned_index`), never a collection
    /// scan.
    ///
    /// # Errors
    ///
    /// [`DbError::InvalidDocument`] when a stored document is malformed.
    pub fn dependents(&self, id: ArtifactId) -> Result<Vec<Artifact>, DbError> {
        self.collection()
            .find(&Filter::elem_match("inputs", id.to_string()))
            .iter()
            .map(doc_to_artifact)
            .collect()
    }

    /// Transitive dependents of an artifact (the impact set: everything
    /// whose provenance includes `id`), breadth-first, nearest layer
    /// first and `_id`-ordered within a layer. Each frontier step is an
    /// indexed `inputs` probe, so the walk touches only the reachable
    /// region of the DAG — not the whole collection.
    ///
    /// # Errors
    ///
    /// [`DbError::InvalidDocument`] when a stored document is malformed.
    pub fn dependent_closure(&self, id: ArtifactId) -> Result<Vec<Artifact>, DbError> {
        let mut seen = std::collections::BTreeSet::new();
        let mut frontier = std::collections::VecDeque::from([id]);
        let mut out = Vec::new();
        while let Some(node) = frontier.pop_front() {
            let mut layer = self.dependents(node)?;
            layer.sort_by_key(Artifact::id);
            for artifact in layer {
                if seen.insert(artifact.id()) {
                    frontier.push_back(artifact.id());
                    out.push(artifact);
                }
            }
        }
        Ok(out)
    }

    /// Transitive inputs of an artifact (its reproduction closure as
    /// stored), breadth-first from `id` itself. Each step is a primary
    /// key lookup; inputs referencing unstored artifacts are skipped —
    /// the linter (SA0003) reports them, a walk should not fail on
    /// them.
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] when `id` itself is not stored;
    /// [`DbError::InvalidDocument`] when a stored document is malformed.
    pub fn input_closure(&self, id: ArtifactId) -> Result<Vec<Artifact>, DbError> {
        let mut seen = std::collections::BTreeSet::from([id]);
        let mut frontier = vec![self.load(id)?];
        let mut out = Vec::new();
        while let Some(artifact) = frontier.pop() {
            for &input in artifact.inputs() {
                if seen.insert(input) {
                    match self.load(input) {
                        Ok(found) => frontier.push(found),
                        Err(DbError::NotFound { .. }) => {}
                        Err(other) => return Err(other),
                    }
                }
            }
            out.push(artifact);
        }
        Ok(out)
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.collection().len()
    }

    /// Whether no artifacts are stored.
    pub fn is_empty(&self) -> bool {
        self.collection().is_empty()
    }
}

fn kind_str(kind: &ArtifactKind) -> String {
    kind.to_string()
}

fn kind_from_str(s: &str) -> ArtifactKind {
    match s {
        "git repo" => ArtifactKind::GitRepo,
        "binary" => ArtifactKind::Binary,
        "kernel" => ArtifactKind::Kernel,
        "disk image" => ArtifactKind::DiskImage,
        "run script" => ArtifactKind::RunScript,
        "benchmark suite" => ArtifactKind::BenchmarkSuite,
        "environment" => ArtifactKind::Environment,
        "results" => ArtifactKind::Results,
        "run" => ArtifactKind::Run,
        other => {
            let label = other
                .strip_prefix("other(")
                .and_then(|s| s.strip_suffix(')'))
                .unwrap_or(other);
            ArtifactKind::Other(label.to_owned())
        }
    }
}

/// Converts an artifact into its document form.
pub(crate) fn artifact_to_doc(artifact: &Artifact, payload: Option<BlobKey>) -> Value {
    let mut doc = Value::map([
        ("_id", Value::from(artifact.id().to_string())),
        ("name", Value::from(artifact.name())),
        ("kind", Value::from(kind_str(artifact.kind()))),
        ("command", Value::from(artifact.command())),
        ("cwd", Value::from(artifact.cwd())),
        ("path", Value::from(artifact.path())),
        ("documentation", Value::from(artifact.documentation())),
        ("hash", Value::from(artifact.hash())),
        (
            "inputs",
            Value::array(artifact.inputs().iter().map(|i| Value::from(i.to_string()))),
        ),
    ]);
    if let Some(git) = artifact.git() {
        doc.set_at(
            "git",
            Value::map([
                ("url", Value::from(git.url.as_str())),
                ("hash", Value::from(git.revision.as_str())),
            ]),
        );
    }
    if let Some(key) = payload {
        doc.set_at("payload", Value::from(key.to_hex()));
    }
    doc
}

/// Reconstructs an artifact from its document form.
pub(crate) fn doc_to_artifact(doc: &Value) -> Result<Artifact, DbError> {
    let invalid = |why: &str| DbError::InvalidDocument {
        reason: why.to_owned(),
    };
    let str_field = |path: &str| -> Result<String, DbError> {
        doc.at(path)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| invalid(&format!("missing string field `{path}`")))
    };
    let id = ArtifactId::from_str(&str_field("_id")?).map_err(|_| invalid("bad _id"))?;
    let inputs: Result<Vec<ArtifactId>, DbError> = doc
        .at("inputs")
        .and_then(Value::as_array)
        .ok_or_else(|| invalid("missing inputs"))?
        .iter()
        .map(|v| {
            v.as_str()
                .and_then(|s| ArtifactId::from_str(s).ok())
                .ok_or_else(|| invalid("bad input id"))
        })
        .collect();
    let git = doc.at("git").map(|g| -> Result<GitInfo, DbError> {
        Ok(GitInfo {
            url: g
                .at("url")
                .and_then(Value::as_str)
                .ok_or_else(|| invalid("bad git.url"))?
                .to_owned(),
            revision: g
                .at("hash")
                .and_then(Value::as_str)
                .ok_or_else(|| invalid("bad git.hash"))?
                .to_owned(),
        })
    });
    let git = match git {
        Some(result) => Some(result?),
        None => None,
    };
    Ok(Artifact::from_stored(
        id,
        str_field("name")?,
        kind_from_str(&str_field("kind")?),
        str_field("command")?,
        str_field("cwd")?,
        str_field("path")?,
        str_field("documentation")?,
        inputs?,
        str_field("hash")?,
        git,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simart_artifact::{ArtifactRegistry, ContentSource};

    fn sample_registry() -> (ArtifactRegistry, Artifact) {
        let mut registry = ArtifactRegistry::new();
        let repo = registry
            .register(
                Artifact::builder("sim-repo", ArtifactKind::GitRepo)
                    .command("git clone https://example.org/sim.git")
                    .documentation("simulator sources")
                    .content(ContentSource::git("https://example.org/sim.git", "abc123")),
            )
            .unwrap();
        let binary = registry
            .register(
                Artifact::builder("sim-binary", ArtifactKind::Binary)
                    .command("scons build/X86/sim.opt -j8")
                    .cwd("sim/")
                    .path("sim/build/X86/sim.opt")
                    .documentation("optimized simulator binary")
                    .content(ContentSource::bytes(b"\x7fELF".to_vec()))
                    .input(repo.id()),
            )
            .unwrap();
        ((registry), (*binary).clone())
    }

    #[test]
    fn save_load_round_trip_preserves_all_fields() {
        let (_registry, artifact) = sample_registry();
        let db = Database::in_memory();
        let store = ArtifactStore::new(&db).unwrap();
        store.save(&artifact, Some(b"payload-bytes")).unwrap();

        let loaded = store.load(artifact.id()).unwrap();
        assert_eq!(loaded, artifact);
        assert_eq!(
            store.load_payload(artifact.id()).unwrap().as_ref(),
            b"payload-bytes"
        );
    }

    #[test]
    fn resaving_identical_artifact_is_noop() {
        let (_registry, artifact) = sample_registry();
        let db = Database::in_memory();
        let store = ArtifactStore::new(&db).unwrap();
        store.save(&artifact, None).unwrap();
        store.save(&artifact, None).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn git_provenance_round_trips() {
        let mut registry = ArtifactRegistry::new();
        let repo = registry
            .register(
                Artifact::builder("repo", ArtifactKind::GitRepo)
                    .documentation("sources")
                    .content(ContentSource::git("https://example.org/x.git", "rev9")),
            )
            .unwrap();
        let db = Database::in_memory();
        let store = ArtifactStore::new(&db).unwrap();
        store.save(&repo, None).unwrap();
        let loaded = store.load(repo.id()).unwrap();
        assert_eq!(loaded.git().unwrap().revision, "rev9");
    }

    #[test]
    fn find_by_name_and_kind() {
        let (_registry, artifact) = sample_registry();
        let db = Database::in_memory();
        let store = ArtifactStore::new(&db).unwrap();
        store.save(&artifact, None).unwrap();
        assert_eq!(store.find_by_name("sim-binary").unwrap().len(), 1);
        assert_eq!(store.find_by_kind(&ArtifactKind::Binary).unwrap().len(), 1);
        assert!(store
            .find_by_kind(&ArtifactKind::Kernel)
            .unwrap()
            .is_empty());
    }

    /// A diamond provenance DAG: repo → {bin, script} → results.
    fn diamond() -> (ArtifactStore, [Artifact; 4]) {
        let mut registry = ArtifactRegistry::new();
        let repo = registry
            .register(
                Artifact::builder("repo", ArtifactKind::GitRepo)
                    .documentation("sources")
                    .content(ContentSource::git("https://example.org/x.git", "rev1")),
            )
            .unwrap();
        let bin = registry
            .register(
                Artifact::builder("bin", ArtifactKind::Binary)
                    .documentation("binary")
                    .content(ContentSource::bytes(b"elf".to_vec()))
                    .input(repo.id()),
            )
            .unwrap();
        let script = registry
            .register(
                Artifact::builder("script", ArtifactKind::RunScript)
                    .documentation("script")
                    .content(ContentSource::bytes(b"#!/bin/sh".to_vec()))
                    .input(repo.id()),
            )
            .unwrap();
        let results = registry
            .register(
                Artifact::builder("results", ArtifactKind::Results)
                    .documentation("stats")
                    .content(ContentSource::bytes(b"stats".to_vec()))
                    .input(bin.id())
                    .input(script.id()),
            )
            .unwrap();
        let db = Database::in_memory();
        let store = ArtifactStore::new(&db).unwrap();
        let arts = [
            (*repo).clone(),
            (*bin).clone(),
            (*script).clone(),
            (*results).clone(),
        ];
        for artifact in &arts {
            store.save(artifact, None).unwrap();
        }
        (store, arts)
    }

    #[test]
    fn dependency_walks_cover_the_reachable_region() {
        let (store, [repo, bin, script, results]) = diamond();
        // Direct dependents of the root: the middle layer only.
        let direct: Vec<_> = store
            .dependents(repo.id())
            .unwrap()
            .iter()
            .map(|a| a.name().to_owned())
            .collect();
        assert_eq!(direct.len(), 2);
        assert!(direct.contains(&"bin".to_owned()));
        assert!(direct.contains(&"script".to_owned()));
        // Transitive dependents of the root: everything else, each
        // exactly once despite the diamond.
        let impact = store.dependent_closure(repo.id()).unwrap();
        assert_eq!(impact.len(), 3);
        assert!(impact.iter().any(|a| a.id() == results.id()));
        // A leaf has no dependents.
        assert!(store.dependents(results.id()).unwrap().is_empty());
        // Input closure from the sink reaches the whole diamond once.
        let closure = store.input_closure(results.id()).unwrap();
        assert_eq!(closure.len(), 4);
        assert!(closure.iter().any(|a| a.id() == repo.id()));
        assert!(closure.iter().any(|a| a.id() == bin.id()));
        assert!(closure.iter().any(|a| a.id() == script.id()));
    }

    /// The DAG walks must ride the multikey `inputs` index: with
    /// observability compiled in, a dependent-closure walk bumps
    /// `db.query_planned_index` on every frontier step and never falls
    /// back to a `db.query_scans` collection scan.
    #[cfg(feature = "observe")]
    #[test]
    fn dependency_walks_ride_the_inputs_index() {
        use simart_observe as observe;
        let (store, [repo, _, _, results]) = diamond();
        observe::reset();
        observe::enable();
        let impact = store.dependent_closure(repo.id()).unwrap();
        let closure = store.input_closure(results.id()).unwrap();
        observe::disable();
        assert_eq!(impact.len(), 3);
        assert_eq!(closure.len(), 4);
        let snapshot = observe::snapshot();
        let counter = |name: &str| match snapshot.metrics.get(name) {
            Some(observe::MetricValue::Counter(n)) => *n,
            _ => 0,
        };
        // Frontier probes: repo, bin, script, results — one indexed
        // `inputs` probe each (the input walk uses primary-key gets,
        // which are neither planned nor scans).
        assert_eq!(counter("db.query_planned_index"), 4);
        assert_eq!(counter("db.query_scans"), 0);
        observe::reset();
    }

    #[test]
    fn other_kind_round_trips() {
        assert_eq!(
            kind_from_str(&kind_str(&ArtifactKind::Other("trace".into()))),
            ArtifactKind::Other("trace".into())
        );
        assert_eq!(kind_from_str("kernel"), ArtifactKind::Kernel);
    }

    #[test]
    fn load_missing_artifact_errors() {
        let db = Database::in_memory();
        let store = ArtifactStore::new(&db).unwrap();
        assert!(matches!(
            store.load(ArtifactId::NIL),
            Err(DbError::NotFound { .. })
        ));
    }
}
